"""Per-relation shard with RCU-style immutable epoch snapshots.

The paper's :class:`~repro.core.predicate_index.PredicateIndex` is a
single-threaded structure: a stab descending an IBS-tree while another
thread splices a node out of it can observe a half-mutated tree.  The
shard fixes this without read-side locking by never mutating published
state:

* A :class:`RelationShard` owns one relation's predicates and a single
  reference to an immutable :class:`EpochSnapshot`.
* Readers load ``shard.snapshot`` — one attribute read, atomic under
  the CPython GIL — and match against it for as long as they like; the
  snapshot can never change underneath them.
* Writers serialise on the shard's write lock, build the **next**
  snapshot privately (using the existing ``bulk_load``/``tree_epoch``
  machinery), then publish it with a single reference assignment.

A snapshot is a three-part structure so that writes stay cheap:

``base``
    A frozen :class:`PredicateIndex` holding the compacted bulk of the
    relation's predicates.  Built with ``adaptive=False`` (the feedback
    counters mutate on the read path without synchronisation), then
    :meth:`~repro.core.predicate_index.PredicateIndex.freeze`-d so any
    accidental mutation raises instead of corrupting readers.  Freezing
    also demotes the stab cache to an append-only, GIL-safe discipline,
    and because frozen trees never bump epochs the cache stays warm for
    the snapshot's whole life — writes land in the overlay and never
    strand the base's cached stabs.
``overlay``
    A *small* frozen PredicateIndex over the predicates added since the
    base was compacted.  Rebuilt copy-on-write on every write — O(size
    of overlay), bounded by the compaction threshold — so a write never
    touches the big base trees and never invalidates their decode or
    stab caches.
``removed``
    A frozenset of identifiers deleted from the base since compaction.
    Matching filters base results through it.

When the overlay or the tombstone set outgrows ``compaction_threshold``
the writer folds everything into a fresh base via ``add_many`` (which
bulk-loads each attribute tree) and starts over with an empty overlay.
Readers holding the old snapshot keep using it; they simply see the
state as of their epoch.
"""

from __future__ import annotations

import threading
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core.predicate_index import PredicateIndex
from ..errors import ConcurrencyError, PredicateError, UnknownIntervalError
from ..match.pipeline import (
    snapshot_match,
    snapshot_match_batch,
    snapshot_match_idents,
)
from ..predicates.predicate import Predicate

__all__ = ["EpochSnapshot", "RelationShard"]

#: Default number of overlay entries (or tombstones) that triggers
#: folding the overlay into a fresh compacted base.
DEFAULT_COMPACTION_THRESHOLD = 64

#: Overlay size at or below which :meth:`EpochSnapshot.match_batch`
#: tests the overlay predicates directly per tuple rather than running
#: the overlay index's full batched pipeline.
OVERLAY_SCAN_LIMIT = 8

#: Publication hook signature: ``(relation, epoch, kind, payload)``
#: where *kind* is one of ``"add"`` / ``"remove"`` / ``"compact"`` /
#: ``"rebuild"``.
PublishHook = Callable[[str, int, str, Any], None]


class EpochSnapshot:
    """One immutable published state of a relation shard.

    Everything reachable from a snapshot is frozen: the base and
    overlay indexes refuse mutation, ``removed`` and ``overlay_preds``
    are immutable containers.  All match methods are therefore safe to
    call from any number of threads with no synchronisation.
    """

    __slots__ = (
        "relation",
        "epoch",
        "base",
        "overlay",
        "removed",
        "overlay_preds",
        "_rank",
    )

    def __init__(
        self,
        relation: str,
        epoch: int,
        base: PredicateIndex,
        overlay: Optional[PredicateIndex],
        removed: frozenset,
        overlay_preds: Tuple[Predicate, ...],
    ):
        self.relation = relation
        #: shard-local monotone publication counter; epoch N+1's state
        #: differs from epoch N by exactly one published operation
        #: (compaction publishes an epoch with identical contents).
        self.epoch = epoch
        self.base = base
        self.overlay = overlay
        self.removed = removed
        #: the overlay's predicates in insertion order (the overlay
        #: index loses ordering; rebuilds and iteration need it).
        self.overlay_preds = overlay_preds

    # -- contents ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.base) - len(self.removed) + len(self.overlay_preds)

    def __contains__(self, ident: Hashable) -> bool:
        if any(pred.ident == ident for pred in self.overlay_preds):
            return True
        return ident in self.base and ident not in self.removed

    def get(self, ident: Hashable) -> Predicate:
        """Return the live predicate under *ident* at this epoch."""
        for pred in self.overlay_preds:
            if pred.ident == ident:
                return pred
        if ident in self.base and ident not in self.removed:
            return self.base.get(ident)
        raise UnknownIntervalError(ident)

    def predicates(self) -> Iterator[Predicate]:
        """Iterate the live predicates (base order, then overlay order)."""
        removed = self.removed
        for pred in self.base.predicates_for(self.relation):
            if pred.ident not in removed:
                yield pred
        yield from self.overlay_preds

    def canonical_rank(self) -> Dict[Hashable, int]:
        """``ident -> position`` in this snapshot's enumeration order.

        A *value-deterministic* total order over the live predicates —
        base publication order, then overlay insertion order — unlike
        the per-row match order, which falls out of set iteration inside
        the trees and therefore depends on process memory layout and
        hash seed.  The process tier sorts every row it returns into
        this order so results are reproducible across processes.

        Cached on first use; the lazy single-assignment publish of an
        immutable dict is GIL-safe on this otherwise frozen object
        (racing builders compute identical maps).
        """
        rank = getattr(self, "_rank", None)
        if rank is None:
            rank = {
                pred.ident: position
                for position, pred in enumerate(self.predicates())
            }
            self._rank = rank
        return rank

    def canonical_rows(
        self, rows: List[List[Predicate]]
    ) -> List[List[Predicate]]:
        """Sort each match row into :meth:`canonical_rank` order."""
        rank = self.canonical_rank()
        return [sorted(row, key=lambda pred: rank[pred.ident]) for row in rows]

    # -- matching (lock-free) ------------------------------------------

    def match(self, tup: Mapping[str, Any]) -> List[Predicate]:
        """All live predicates matching *tup*, deterministically ordered.

        Base matches come first (in the base index's order), overlay
        matches after (in insertion order) — a fixed order per snapshot,
        so concurrent and repeated calls agree exactly.  The merge
        itself lives in :func:`repro.match.pipeline.snapshot_match`, so
        the snapshot read path runs the same pipeline code as every
        other entry point.
        """
        return snapshot_match(self, tup)

    def match_idents(self, tup: Mapping[str, Any]) -> Set[Hashable]:
        """Identifiers of all live predicates matching *tup*."""
        return snapshot_match_idents(self, tup)

    def match_batch(
        self, tuples: Iterable[Mapping[str, Any]]
    ) -> List[List[Predicate]]:
        """Match several tuples against this one epoch.

        Uses the underlying batched fast path on the base.  An overlay
        of at most :data:`OVERLAY_SCAN_LIMIT` predicates is evaluated by
        a direct per-tuple scan instead — running the full batched
        pipeline (stab tables plus per-tuple assembly) over a second
        index costs more than testing a handful of predicates outright.
        Results are per-tuple lists in the same deterministic order as
        :meth:`match`.
        """
        return snapshot_match_batch(self, tuples, OVERLAY_SCAN_LIMIT)

    def __repr__(self) -> str:
        return (
            f"<EpochSnapshot {self.relation!r} epoch={self.epoch} "
            f"base={len(self.base)} overlay={len(self.overlay_preds)} "
            f"removed={len(self.removed)}>"
        )


class RelationShard:
    """Thread-safe matching state for one relation.

    Lock ordering: the shard's write lock is a **leaf** lock — while
    holding it the shard only builds private structures and invokes the
    publication hooks; it never acquires another shard's lock or the
    facade's catalog lock.  Publication hooks run *inside* the write
    lock so the hook stream is totally ordered by epoch per shard; a
    hook must therefore never call back into this shard's write API.
    """

    def __init__(
        self,
        relation: str,
        index_factory: Callable[[], PredicateIndex],
        compaction_threshold: int = DEFAULT_COMPACTION_THRESHOLD,
        publish_hooks: Optional[List[PublishHook]] = None,
        initial_base: Optional[PredicateIndex] = None,
        initial_epoch: int = 0,
    ):
        self.relation = relation
        self._index_factory = index_factory
        self._compaction_threshold = max(1, int(compaction_threshold))
        #: shared list owned by the facade; may grow concurrently
        #: (append is atomic) but is only iterated under the write lock.
        self._publish_hooks = publish_hooks if publish_hooks is not None else []
        self._lock = threading.Lock()
        # ``initial_base``/``initial_epoch`` are the disk tier's recovery
        # seam: a cold start attaches a base recovered from segment
        # files at the epoch its checkpoint manifest recorded, so the
        # journal tail replays on top of exactly the state it follows.
        if initial_base is None:
            base = index_factory()
            base.freeze()
        else:
            base = initial_base
            if not base.frozen:
                base.freeze()
        self._snapshot = EpochSnapshot(
            relation, int(initial_epoch), base, None, frozenset(), ()
        )
        self.compactions = 0

    # -- read side (lock-free) -----------------------------------------

    @property
    def snapshot(self) -> EpochSnapshot:
        """The current published epoch (a single atomic attribute read)."""
        return self._snapshot

    # -- write side ----------------------------------------------------

    def add(self, predicate: Predicate) -> Hashable:
        """Register *predicate* and publish the successor epoch."""
        normalized = predicate.normalized()
        if normalized is None:
            raise PredicateError(
                f"predicate {predicate} is unsatisfiable and cannot be indexed"
            )
        if normalized.relation != self.relation:
            raise ConcurrencyError(
                f"shard {self.relation!r} cannot index a predicate of "
                f"relation {normalized.relation!r}"
            )
        ident = normalized.ident
        with self._lock:
            snap = self._snapshot
            if ident in snap:
                raise PredicateError(f"predicate ident {ident!r} already indexed")
            overlay_preds = snap.overlay_preds + (normalized,)
            if (
                len(overlay_preds) >= self._compaction_threshold
                or len(snap.removed) >= self._compaction_threshold
            ):
                successor = self._compacted(snap, overlay_preds, snap.removed)
            else:
                successor = EpochSnapshot(
                    self.relation,
                    snap.epoch + 1,
                    snap.base,
                    self._build_overlay(overlay_preds),
                    snap.removed,
                    overlay_preds,
                )
            self._publish(successor, "add", normalized)
        return ident

    def add_many(self, predicates: Sequence[Predicate]) -> List[Hashable]:
        """Register a batch and publish once, pre-compacted.

        Equivalent to calling :meth:`add` for each predicate, but the
        whole batch is folded straight into a fresh bulk-loaded base —
        one build instead of ``len(batch)`` copy-on-write overlay
        rebuilds, and the steady state starts with an *empty* overlay
        rather than whatever the last compaction left behind.  One
        ``"add"`` hook fires per predicate, each on its own epoch (the
        op log stays strictly monotone); readers only ever observe the
        final epoch — the intermediate ones are never published.
        """
        normalized_group: List[Predicate] = []
        for predicate in predicates:
            normalized = predicate.normalized()
            if normalized is None:
                raise PredicateError(
                    f"predicate {predicate} is unsatisfiable and cannot be indexed"
                )
            if normalized.relation != self.relation:
                raise ConcurrencyError(
                    f"shard {self.relation!r} cannot index a predicate of "
                    f"relation {normalized.relation!r}"
                )
            normalized_group.append(normalized)
        if not normalized_group:
            return []
        with self._lock:
            snap = self._snapshot
            seen: set = set()
            for normalized in normalized_group:
                ident = normalized.ident
                if ident in snap or ident in seen:
                    raise PredicateError(
                        f"predicate ident {ident!r} already indexed"
                    )
                seen.add(ident)
            base = self._index_factory()
            live: List[Predicate] = [
                pred
                for pred in snap.base.predicates_for(self.relation)
                if pred.ident not in snap.removed
            ]
            live.extend(snap.overlay_preds)
            live.extend(normalized_group)
            base.add_many(live)
            base.freeze()
            self.compactions += 1
            successor = EpochSnapshot(
                self.relation,
                snap.epoch + len(normalized_group),
                base,
                None,
                frozenset(),
                (),
            )
            self._snapshot = successor
            for offset, normalized in enumerate(normalized_group, start=1):
                for hook in self._publish_hooks:
                    hook(self.relation, snap.epoch + offset, "add", normalized)
        return [normalized.ident for normalized in normalized_group]

    def remove(self, ident: Hashable) -> Predicate:
        """Unregister *ident* and publish the successor epoch."""
        with self._lock:
            snap = self._snapshot
            if any(pred.ident == ident for pred in snap.overlay_preds):
                removed_pred = next(
                    pred for pred in snap.overlay_preds if pred.ident == ident
                )
                overlay_preds = tuple(
                    pred for pred in snap.overlay_preds if pred.ident != ident
                )
                successor = EpochSnapshot(
                    self.relation,
                    snap.epoch + 1,
                    snap.base,
                    self._build_overlay(overlay_preds),
                    snap.removed,
                    overlay_preds,
                )
            elif ident in snap.base and ident not in snap.removed:
                removed_pred = snap.base.get(ident)
                removed = snap.removed | {ident}
                if len(removed) >= self._compaction_threshold:
                    successor = self._compacted(snap, snap.overlay_preds, removed)
                else:
                    successor = EpochSnapshot(
                        self.relation,
                        snap.epoch + 1,
                        snap.base,
                        snap.overlay,
                        removed,
                        snap.overlay_preds,
                    )
            else:
                raise UnknownIntervalError(ident)
            self._publish(successor, "remove", ident)
        return removed_pred

    def compact(self) -> int:
        """Fold the overlay and tombstones into a fresh base now.

        Publishes a new epoch with identical contents (the checker's
        replay treats ``"compact"`` as a no-op).  Returns the new epoch.
        """
        with self._lock:
            snap = self._snapshot
            successor = self._compacted(snap, snap.overlay_preds, snap.removed)
            self._publish(successor, "compact", None)
            return successor.epoch

    def rebuild(self) -> int:
        """Rebuild the base from the live predicate set and re-audit it.

        The concurrent counterpart of
        :meth:`~repro.core.predicate_index.PredicateIndex.verify_and_rebuild`:
        readers keep matching against the old epoch while the fresh
        base is built and checked; only a *verified* snapshot is ever
        published.  Returns the new epoch.
        """
        with self._lock:
            snap = self._snapshot
            successor = self._compacted(snap, snap.overlay_preds, snap.removed)
            if not successor.base.check_invariants():
                raise ConcurrencyError(
                    f"rebuilt base for shard {self.relation!r} failed its audit; "
                    "keeping the previous epoch published"
                )
            self._publish(successor, "rebuild", None)
            return successor.epoch

    # -- internals (call with the write lock held) ---------------------

    def _build_overlay(
        self, overlay_preds: Tuple[Predicate, ...]
    ) -> Optional[PredicateIndex]:
        if not overlay_preds:
            return None
        overlay = self._index_factory()
        overlay.add_many(overlay_preds)
        overlay.freeze()
        return overlay

    def _compacted(
        self,
        snap: EpochSnapshot,
        overlay_preds: Tuple[Predicate, ...],
        removed: frozenset,
    ) -> EpochSnapshot:
        base = self._index_factory()
        live: List[Predicate] = [
            pred
            for pred in snap.base.predicates_for(self.relation)
            if pred.ident not in removed
        ]
        live.extend(overlay_preds)
        base.add_many(live)
        base.freeze()
        self.compactions += 1
        return EpochSnapshot(
            self.relation, snap.epoch + 1, base, None, frozenset(), ()
        )

    def _publish(self, successor: EpochSnapshot, kind: str, payload: Any) -> None:
        # The single reference assignment below IS the publication:
        # CPython guarantees readers see either the old or the new
        # snapshot object, never a mixture.
        self._snapshot = successor
        for hook in self._publish_hooks:
            hook(self.relation, successor.epoch, kind, payload)

    def __repr__(self) -> str:
        snap = self._snapshot
        return (
            f"<RelationShard {self.relation!r} epoch={snap.epoch} "
            f"live={len(snap)} compactions={self.compactions}>"
        )
