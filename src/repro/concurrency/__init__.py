"""Thread-safe sharded matching over the paper's predicate index.

The paper evaluates its algorithm single-threaded; this package is the
"beyond the paper" layer that lets stabs proceed concurrently with
predicate registration, removal, and index maintenance:

* :class:`~repro.concurrency.shard.RelationShard` — per-relation write
  lock + immutable :class:`~repro.concurrency.shard.EpochSnapshot`
  published RCU-style (readers are lock-free);
* :class:`~repro.concurrency.facade.ConcurrentPredicateIndex` — the
  :class:`~repro.baselines.base.PredicateMatcher`-compatible facade
  that routes predicates to shards and fans ``match_batch`` across a
  worker pool with a deterministic merge.

The deterministic test harness that exercises this layer lives in
:mod:`repro.testing.concurrency`; the model and its guarantees are
documented in ``docs/concurrency_model.md``.
"""

from .facade import ConcurrentPredicateIndex
from .shard import DEFAULT_COMPACTION_THRESHOLD, EpochSnapshot, RelationShard

__all__ = [
    "ConcurrentPredicateIndex",
    "EpochSnapshot",
    "RelationShard",
    "DEFAULT_COMPACTION_THRESHOLD",
]
