"""repro — reproduction of Hanson et al., SIGMOD 1990.

*A Predicate Matching Algorithm for Database Rule Systems.*

The package provides:

* the **IBS-tree** (interval binary search tree), a dynamic index over
  intervals and points answering stabbing queries in ``O(log N + L)``;
* the paper's **two-level predicate index** (hash on relation name, one
  IBS-tree per indexed attribute, residual test against a predicate
  table);
* a main-memory relational **database substrate** with a
  forward-chaining **rule engine** (triggers) built on the index;
* the paper's **baselines** (sequential search, hash + sequential,
  physical locking, R-trees) and related interval indexes (segment
  tree, interval tree, priority search tree) for comparison;
* **workload generators** and a benchmark harness reproducing every
  figure of the paper's evaluation.

Quickstart::

    from repro import Database, RuleEngine

    db = Database()
    db.create_relation("emp", ["name", "age", "salary", "dept"])
    engine = RuleEngine(db)
    engine.create_rule(
        "raise_alert",
        on="emp",
        condition="salary >= 20000 and salary <= 30000",
        action=lambda ctx: print("matched:", ctx.tuple),
    )
    db.insert("emp", {"name": "Lee", "age": 41, "salary": 25000,
                      "dept": "Shoe"})
"""

from .core import (
    AVLIBSTree,
    DefaultEstimator,
    FlatIBSTree,
    IBSNode,
    IBSTree,
    RBIBSTree,
    Interval,
    MatchStatistics,
    MINUS_INF,
    PLUS_INF,
    PredicateIndex,
    StatisticsEstimator,
    is_infinite,
    rank_index_clauses,
)
from .db import (
    AbortMutation,
    Attribute,
    BatchEvent,
    Database,
    Domain,
    EntryClauseFeedback,
    OperationJournal,
    Relation,
    Schema,
    Transaction,
    load_database,
    recover_database,
    save_database,
)
from .concurrency import ConcurrentPredicateIndex, EpochSnapshot, RelationShard
from .lang import CompiledCondition, compile_condition, parse_condition
from .predicates import (
    Clause,
    EqualityClause,
    FunctionClause,
    IntervalClause,
    Predicate,
    PredicateBuilder,
    PredicateGroup,
)
from .rules import (
    AbortAction,
    ActionFailure,
    CollectAction,
    DeleteAction,
    InsertAction,
    JoinRule,
    RetryPolicy,
    Rule,
    RuleContext,
    RuleEngine,
    UpdateAction,
    chain,
)
from .errors import (
    ActionQuarantinedError,
    ClauseError,
    ConcurrencyError,
    ConcurrencyViolation,
    CorruptSnapshotError,
    DatabaseError,
    InjectedFault,
    IntervalError,
    ParseError,
    PredicateError,
    ReproError,
    RuleError,
    SchemaError,
    TransactionError,
    TreeError,
    TreeInvariantError,
    TupleError,
)

__version__ = "1.0.0"

__all__ = [
    # core data structures
    "Interval",
    "MINUS_INF",
    "PLUS_INF",
    "is_infinite",
    "IBSTree",
    "IBSNode",
    "AVLIBSTree",
    "RBIBSTree",
    "FlatIBSTree",
    "PredicateIndex",
    "MatchStatistics",
    "DefaultEstimator",
    "StatisticsEstimator",
    "rank_index_clauses",
    "EntryClauseFeedback",
    # concurrent matching layer
    "ConcurrentPredicateIndex",
    "EpochSnapshot",
    "RelationShard",
    # predicates and language
    "Clause",
    "IntervalClause",
    "EqualityClause",
    "FunctionClause",
    "Predicate",
    "PredicateGroup",
    "PredicateBuilder",
    "compile_condition",
    "parse_condition",
    "CompiledCondition",
    # database substrate
    "Database",
    "Relation",
    "Schema",
    "Attribute",
    "Domain",
    "AbortMutation",
    "BatchEvent",
    "Transaction",
    "OperationJournal",
    "save_database",
    "load_database",
    "recover_database",
    # rule system
    "RuleEngine",
    "Rule",
    "RuleContext",
    "JoinRule",
    "InsertAction",
    "UpdateAction",
    "DeleteAction",
    "AbortAction",
    "CollectAction",
    "chain",
    "RetryPolicy",
    "ActionFailure",
    # errors
    "ReproError",
    "IntervalError",
    "TreeError",
    "TreeInvariantError",
    "PredicateError",
    "ClauseError",
    "ParseError",
    "DatabaseError",
    "SchemaError",
    "TupleError",
    "TransactionError",
    "CorruptSnapshotError",
    "RuleError",
    "ActionQuarantinedError",
    "ConcurrencyError",
    "ConcurrencyViolation",
    "InjectedFault",
    "__version__",
]
