"""Conjunctive predicates over a single relation.

A :class:`Predicate` is the unit the paper's matching algorithm works
with: a relation name plus a conjunction of clauses (Section 1)::

    P ::= (t in R) and C1 and C2 and ... and Cq

Disjunctive conditions are split into several predicates *before* this
layer (the paper: "we assume that any predicate containing a disjunction
is broken up into two or more predicates"); the language compiler in
:mod:`repro.lang.compiler` performs that DNF split and wraps the pieces
in a :class:`PredicateGroup`.
"""

from __future__ import annotations

import itertools
from typing import Any, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import PredicateError
from ..core.intervals import Interval
from .clauses import Clause, EqualityClause, FunctionClause, IntervalClause

__all__ = ["Predicate", "PredicateGroup", "normalize_clauses"]

_predicate_ids = itertools.count(1)


class Predicate:
    """A conjunction of clauses restricting tuples of one relation.

    Parameters
    ----------
    relation:
        Name of the relation whose tuples this predicate tests.
    clauses:
        The conjunct clauses.  An empty sequence is allowed and matches
        every tuple of the relation (a pure relation-membership test).
    ident:
        Optional stable identifier; a fresh integer is assigned if
        omitted.  Identifiers key the PREDICATES table of Figure 1.
    source:
        Optional original condition text, for diagnostics.
    """

    __slots__ = ("relation", "clauses", "ident", "source", "_normal")

    def __init__(
        self,
        relation: str,
        clauses: Iterable[Clause] = (),
        ident: Optional[Hashable] = None,
        source: Optional[str] = None,
    ):
        if not relation or not isinstance(relation, str):
            raise PredicateError(
                f"predicate relation must be a non-empty string, got {relation!r}"
            )
        clause_tuple = tuple(clauses)
        for clause in clause_tuple:
            if not isinstance(clause, Clause):
                raise PredicateError(f"not a Clause: {clause!r}")
        self.relation = relation
        self.clauses = clause_tuple
        self.ident = next(_predicate_ids) if ident is None else ident
        self.source = source
        # cached _is_normal verdict; clauses are immutable so it never
        # goes stale.  None = not yet computed.
        self._normal: Optional[bool] = None

    # -- evaluation -----------------------------------------------------

    def matches(self, tup: Mapping[str, Any]) -> bool:
        """Return True if the tuple satisfies every clause."""
        for clause in self.clauses:
            if not clause.matches(tup):
                return False
        return True

    # -- index support ----------------------------------------------------

    def indexable_clauses(self) -> List[IntervalClause]:
        """The clauses that may be entered into an IBS-tree."""
        return [c for c in self.clauses if c.indexable]

    def non_indexable_clauses(self) -> List[Clause]:
        """The clauses that cannot be indexed (function clauses)."""
        return [c for c in self.clauses if not c.indexable]

    @property
    def is_indexable(self) -> bool:
        """True if at least one clause can be entered into an IBS-tree."""
        return any(c.indexable for c in self.clauses)

    def attributes(self) -> List[str]:
        """The distinct attribute names this predicate restricts."""
        seen: List[str] = []
        for clause in self.clauses:
            if clause.attribute not in seen:
                seen.append(clause.attribute)
        return seen

    def normalized(self) -> Optional["Predicate"]:
        """Return an equivalent predicate with merged interval clauses.

        Multiple indexable clauses on the same attribute are intersected
        into a single clause.  Returns None if the intersection of any
        attribute's clauses is empty (the predicate can never match).
        Already-normal predicates are returned as-is (``self``), so
        re-registration paths like :meth:`PredicateIndex.add` don't
        re-allocate on every call.
        """
        if self._is_normal():
            return self
        try:
            clauses = normalize_clauses(self.clauses)
        except _Contradiction:
            return None
        result = Predicate(
            self.relation, clauses, ident=self.ident, source=self.source
        )
        result._normal = True  # freshly built normal form: skip the re-scan
        return result

    def _is_normal(self) -> bool:
        """True when :func:`normalize_clauses` would be the identity.

        Normal form: interval clauses first, one per attribute, with
        point intervals expressed as :class:`EqualityClause`; function
        clauses after.  A single interval clause per attribute cannot
        be contradictory (empty intervals are unconstructible).  The
        verdict is computed once per predicate and cached — rebuild
        paths (:meth:`PredicateIndex.verify_and_rebuild`, journal
        recovery) call :meth:`normalized` on every stored predicate and
        should not re-scan clause lists that were proven normal at
        registration.
        """
        if self._normal is not None:
            return self._normal
        self._normal = verdict = self._scan_normal()
        return verdict

    def _scan_normal(self) -> bool:
        seen_function = False
        seen_attrs = None
        for clause in self.clauses:
            if isinstance(clause, IntervalClause):
                if seen_function:
                    return False
                if seen_attrs is None:
                    seen_attrs = {clause.attribute}
                elif clause.attribute in seen_attrs:
                    return False
                else:
                    seen_attrs.add(clause.attribute)
                if clause.interval.is_point and not isinstance(clause, EqualityClause):
                    return False
            else:
                seen_function = True
        return True

    # -- value semantics -------------------------------------------------

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Predicate):
            return NotImplemented
        return self.ident == other.ident

    def __hash__(self) -> int:
        return hash(("Predicate", self.ident))

    def __str__(self) -> str:
        if not self.clauses:
            return f"{self.relation}: true"
        body = " and ".join(str(c) for c in self.clauses)
        return f"{self.relation}: {body}"

    def __repr__(self) -> str:
        return f"<Predicate #{self.ident} {self}>"


class PredicateGroup:
    """A disjunction of conjunctive predicates over one relation.

    Produced by the condition compiler when the source expression
    contains ``or`` (or constructs that expand to it, such as ``in``
    lists and negated ranges).  The group matches a tuple if *any*
    member predicate matches — the paper's "treated separately"
    semantics, with the group tracking which pieces came from the same
    rule condition.
    """

    __slots__ = ("relation", "predicates", "source")

    def __init__(
        self,
        relation: str,
        predicates: Sequence[Predicate],
        source: Optional[str] = None,
    ):
        preds = tuple(predicates)
        for pred in preds:
            if pred.relation != relation:
                raise PredicateError(
                    f"group relation {relation!r} does not match predicate "
                    f"relation {pred.relation!r}"
                )
        self.relation = relation
        self.predicates = preds
        self.source = source

    def matches(self, tup: Mapping[str, Any]) -> bool:
        """True if any member predicate matches the tuple."""
        return any(pred.matches(tup) for pred in self.predicates)

    @property
    def is_empty(self) -> bool:
        """True if the group has no members (condition was contradictory)."""
        return not self.predicates

    def __iter__(self):
        return iter(self.predicates)

    def __len__(self) -> int:
        return len(self.predicates)

    def __str__(self) -> str:
        if not self.predicates:
            return f"{self.relation}: false"
        return " or ".join(f"({p})" for p in self.predicates)


class _Contradiction(Exception):
    """Internal: a conjunction of clauses is unsatisfiable."""


def normalize_clauses(clauses: Iterable[Clause]) -> Tuple[Clause, ...]:
    """Merge same-attribute interval clauses by intersection.

    Raises the internal ``_Contradiction`` if any attribute's clauses
    intersect to the empty set.  Function clauses pass through
    untouched.  The result orders merged interval clauses first (in
    first-appearance attribute order) followed by function clauses in
    their original order.
    """
    by_attr: dict = {}
    attr_order: List[str] = []
    functions: List[Clause] = []
    for clause in clauses:
        if isinstance(clause, IntervalClause):
            if clause.attribute in by_attr:
                merged = _intersect(by_attr[clause.attribute], clause.interval)
                if merged is None:
                    raise _Contradiction(clause.attribute)
                by_attr[clause.attribute] = merged
            else:
                by_attr[clause.attribute] = clause.interval
                attr_order.append(clause.attribute)
        else:
            functions.append(clause)
    merged_clauses: List[Clause] = []
    for attr in attr_order:
        interval = by_attr[attr]
        if interval.is_point:
            merged_clauses.append(EqualityClause(attr, interval.low))
        else:
            merged_clauses.append(IntervalClause(attr, interval))
    merged_clauses.extend(functions)
    return tuple(merged_clauses)


def _intersect(a: Interval, b: Interval) -> Optional[Interval]:
    """Intersection of two intervals, or None if empty."""
    return a.intersection(b)
