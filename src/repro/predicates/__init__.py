"""Predicate model: clauses, conjunctive predicates, and groups.

See the paper's Section 1 for the predicate grammar this subpackage
implements.  Use :class:`PredicateBuilder` for a fluent code-first API,
or :func:`repro.lang.compile_condition` to compile condition strings.
"""

from .clauses import (
    Clause,
    EqualityClause,
    FunctionClause,
    IntervalClause,
    comparison_clause,
)
from .predicate import Predicate, PredicateGroup, normalize_clauses
from .builder import PredicateBuilder

__all__ = [
    "Clause",
    "IntervalClause",
    "EqualityClause",
    "FunctionClause",
    "comparison_clause",
    "Predicate",
    "PredicateGroup",
    "normalize_clauses",
    "PredicateBuilder",
]
