"""Predicate clauses: the atoms of rule selection conditions.

The paper (Section 1) defines a predicate as a conjunction of clauses,
where each clause takes one of three forms::

    C ::= const1 rho1 t.attribute rho2 const2      (interval clause)
    C ::= t.attribute = const                      (equality clause)
    C ::= function(t.attribute)                    (function clause)

with ``rho1, rho2`` drawn from ``{<, <=}`` and open ends expressed with
infinite constants.  Equality clauses are "a special case of interval
predicates, but since they are so common, they are listed separately";
we model them the same way, as degenerate point intervals, while keeping
a distinct class so workloads and statistics can treat them specially.

Interval and equality clauses are *indexable* — they can be entered into
an IBS-tree.  Function clauses are opaque ("nothing is assumed about the
function except that it returns true or false") and therefore
non-indexable; a predicate consisting solely of function clauses falls
back to the per-relation sequential list of Figure 1.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional

from ..errors import ClauseError
from ..core.intervals import Interval

__all__ = [
    "Clause",
    "IntervalClause",
    "EqualityClause",
    "FunctionClause",
    "comparison_clause",
]


class Clause:
    """Base class for a single-attribute restriction on a tuple.

    Subclasses implement :meth:`matches` and declare whether the clause
    can be entered into a one-dimensional interval index via
    :attr:`indexable`.
    """

    __slots__ = ("attribute",)

    #: Whether this clause can be placed in an IBS-tree.
    indexable: bool = False

    def __init__(self, attribute: str):
        if not attribute or not isinstance(attribute, str):
            raise ClauseError(f"clause attribute must be a non-empty string, got {attribute!r}")
        self.attribute = attribute

    def matches(self, tup: Mapping[str, Any]) -> bool:
        """Return True if the tuple satisfies this clause.

        A missing or None attribute value never matches (three-valued
        logic collapsed to False, as in SQL WHERE).
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self}>"


class IntervalClause(Clause):
    """A range restriction: ``attribute`` must lie within ``interval``.

    Covers every comparison shape of the paper's grammar: two-sided
    ranges (``20000 <= salary <= 30000``), one-sided comparisons
    (``age > 50`` is the interval ``(50, +inf)``), and — through
    degenerate point intervals — equality.
    """

    __slots__ = ("interval",)

    indexable = True

    def __init__(self, attribute: str, interval: Interval):
        super().__init__(attribute)
        if not isinstance(interval, Interval):
            raise ClauseError(f"IntervalClause requires an Interval, got {interval!r}")
        self.interval = interval

    def matches(self, tup: Mapping[str, Any]) -> bool:
        value = tup.get(self.attribute)
        if value is None:
            return False
        try:
            return self.interval.contains(value)
        except TypeError:
            # a value from a different domain (e.g. an int against a
            # string range) can never satisfy the clause
            return False

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, IntervalClause):
            return NotImplemented
        return (self.attribute, self.interval) == (other.attribute, other.interval)

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.attribute, self.interval))

    def __str__(self) -> str:
        iv = self.interval
        if iv.is_point:
            return f"{self.attribute} = {iv.low!r}"
        parts = []
        if not iv.is_low_unbounded:
            op = ">=" if iv.low_inclusive else ">"
            parts.append(f"{self.attribute} {op} {iv.low!r}")
        if not iv.is_high_unbounded:
            op = "<=" if iv.high_inclusive else "<"
            parts.append(f"{self.attribute} {op} {iv.high!r}")
        if not parts:
            return f"{self.attribute} unbounded"
        return " and ".join(parts)


class EqualityClause(IntervalClause):
    """``attribute = const``, stored as the point interval ``[const, const]``.

    Functionally identical to an :class:`IntervalClause` holding a point
    interval; kept distinct because the paper calls equality predicates
    out separately and the workload generators / statistics distinguish
    the two (the ``a`` parameter of Figures 7–8 is the fraction of
    point predicates).
    """

    __slots__ = ()

    def __init__(self, attribute: str, value: Any):
        super().__init__(attribute, Interval.point(value))

    @property
    def value(self) -> Any:
        """The constant this clause compares against."""
        return self.interval.low

    def __str__(self) -> str:
        return f"{self.attribute} = {self.value!r}"


class FunctionClause(Clause):
    """An opaque boolean test ``function(t.attribute)``.

    The function receives the attribute's value and must return a
    truthy/falsy result; any exception it raises propagates to the
    caller.  Function clauses are never indexable.
    """

    __slots__ = ("function", "name", "negated")

    indexable = False

    def __init__(
        self,
        attribute: str,
        function: Callable[[Any], bool],
        name: Optional[str] = None,
        negated: bool = False,
    ):
        super().__init__(attribute)
        if not callable(function):
            raise ClauseError(f"FunctionClause requires a callable, got {function!r}")
        self.function = function
        self.name = name or getattr(function, "__name__", "<function>")
        self.negated = bool(negated)

    def matches(self, tup: Mapping[str, Any]) -> bool:
        value = tup.get(self.attribute)
        if value is None:
            return False
        result = bool(self.function(value))
        return (not result) if self.negated else result

    def negate(self) -> "FunctionClause":
        """Return the logical complement of this clause."""
        return FunctionClause(
            self.attribute, self.function, name=self.name, negated=not self.negated
        )

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, FunctionClause):
            return NotImplemented
        return (
            self.attribute == other.attribute
            and self.function is other.function
            and self.negated == other.negated
        )

    def __hash__(self) -> int:
        return hash(("FunctionClause", self.attribute, id(self.function), self.negated))

    def __str__(self) -> str:
        prefix = "not " if self.negated else ""
        return f"{prefix}{self.name}({self.attribute})"


_OPERATOR_BUILDERS = {
    "=": Interval.point,
    "==": Interval.point,
    "<": Interval.less_than,
    "<=": Interval.at_most,
    ">": Interval.greater_than,
    ">=": Interval.at_least,
}


def comparison_clause(attribute: str, op: str, value: Any) -> IntervalClause:
    """Build the clause for a single comparison ``attribute op value``.

    ``op`` is one of ``=  ==  <  <=  >  >=``.  Equality yields an
    :class:`EqualityClause`; the rest yield one-sided
    :class:`IntervalClause` instances.
    """
    if op in ("=", "=="):
        return EqualityClause(attribute, value)
    try:
        builder = _OPERATOR_BUILDERS[op]
    except KeyError:
        raise ClauseError(f"unsupported comparison operator {op!r}") from None
    return IntervalClause(attribute, builder(value))
