"""Fluent builder for constructing predicates programmatically.

For string conditions use :mod:`repro.lang`; the builder is the
code-first alternative::

    from repro.predicates import PredicateBuilder

    pred = (
        PredicateBuilder("emp")
        .between("salary", 20000, 30000)
        .eq("dept", "Shoe")
        .where("age", is_odd)
        .build()
    )
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, List, Optional

from ..core.intervals import Interval
from ..errors import ClauseError
from .clauses import Clause, EqualityClause, FunctionClause, IntervalClause
from .predicate import Predicate

__all__ = ["PredicateBuilder"]


class PredicateBuilder:
    """Accumulates clauses and builds a :class:`Predicate`.

    All clause methods return ``self`` so calls chain.  ``build()`` may
    be called once; the builder may keep being extended afterwards to
    derive further predicates (each ``build`` snapshots the clauses).
    """

    def __init__(self, relation: str):
        self._relation = relation
        self._clauses: List[Clause] = []

    # -- clause constructors ------------------------------------------

    def eq(self, attribute: str, value: Any) -> "PredicateBuilder":
        """Add ``attribute = value``."""
        self._clauses.append(EqualityClause(attribute, value))
        return self

    def lt(self, attribute: str, value: Any) -> "PredicateBuilder":
        """Add ``attribute < value``."""
        self._clauses.append(IntervalClause(attribute, Interval.less_than(value)))
        return self

    def le(self, attribute: str, value: Any) -> "PredicateBuilder":
        """Add ``attribute <= value``."""
        self._clauses.append(IntervalClause(attribute, Interval.at_most(value)))
        return self

    def gt(self, attribute: str, value: Any) -> "PredicateBuilder":
        """Add ``attribute > value``."""
        self._clauses.append(IntervalClause(attribute, Interval.greater_than(value)))
        return self

    def ge(self, attribute: str, value: Any) -> "PredicateBuilder":
        """Add ``attribute >= value``."""
        self._clauses.append(IntervalClause(attribute, Interval.at_least(value)))
        return self

    def between(
        self,
        attribute: str,
        low: Any,
        high: Any,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> "PredicateBuilder":
        """Add ``low <= attribute <= high`` (inclusivity configurable)."""
        interval = Interval(low, high, low_inclusive, high_inclusive)
        self._clauses.append(IntervalClause(attribute, interval))
        return self

    def in_interval(self, attribute: str, interval: Interval) -> "PredicateBuilder":
        """Add a clause restricting *attribute* to an existing Interval."""
        self._clauses.append(IntervalClause(attribute, interval))
        return self

    def where(
        self,
        attribute: str,
        function: Callable[[Any], bool],
        name: Optional[str] = None,
    ) -> "PredicateBuilder":
        """Add an opaque boolean test ``function(attribute)``."""
        self._clauses.append(FunctionClause(attribute, function, name=name))
        return self

    def clause(self, clause: Clause) -> "PredicateBuilder":
        """Add an already-constructed clause."""
        if not isinstance(clause, Clause):
            raise ClauseError(f"not a Clause: {clause!r}")
        self._clauses.append(clause)
        return self

    # -- terminal --------------------------------------------------------

    def build(
        self, ident: Optional[Hashable] = None, source: Optional[str] = None
    ) -> Predicate:
        """Snapshot the accumulated clauses into a Predicate."""
        return Predicate(self._relation, list(self._clauses), ident=ident, source=source)

    def __len__(self) -> int:
        return len(self._clauses)
