"""Static centered interval tree (Edelsbrunner / McCreight style).

The second classic static structure the paper contrasts with the
IBS-tree (Section 4.1).  Each node holds a *center* value; intervals
containing the center live at the node in two sorted lists (ascending
lows, descending highs), intervals entirely below go left, entirely
above go right.  A stabbing query for ``x`` walks one root-to-leaf
path; at each node it scans the appropriate sorted list, stopping at
the first interval that can no longer contain ``x`` — giving
``O(log N + L)`` total.

Like the segment tree this structure is static: ``insert``/``delete``
raise, and the ablation harness charges full rebuilds.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Optional, Set, Tuple

from ..core.intervals import MINUS_INF, PLUS_INF, Interval, is_infinite
from ..errors import TreeError
from .base import IntervalIndex

__all__ = ["StaticIntervalTree"]


class _IntervalNode:
    __slots__ = ("center", "by_low", "by_high", "left", "right")

    def __init__(self, center: Any):
        self.center = center
        #: intervals containing center, ascending by low bound
        self.by_low: List[Tuple[Interval, Hashable]] = []
        #: same intervals, descending by high bound
        self.by_high: List[Tuple[Interval, Hashable]] = []
        self.left: Optional["_IntervalNode"] = None
        self.right: Optional["_IntervalNode"] = None


def _low_key(interval: Interval) -> Tuple[int, Any, int]:
    """Sort key for low bounds: -inf first, then value, open after closed."""
    if is_infinite(interval.low):
        return (0, 0, 0)
    return (1, interval.low, 0 if interval.low_inclusive else 1)


def _high_key(interval: Interval) -> Tuple[int, Any, int]:
    """Sort key for high bounds (descending order uses reverse=True)."""
    if is_infinite(interval.high):
        return (1, 0, 1)
    return (0, interval.high, 1 if interval.high_inclusive else 0)


class StaticIntervalTree(IntervalIndex):
    """A centered interval tree built from a fixed interval collection."""

    name = "interval"
    supports_dynamic_insert = False
    supports_dynamic_delete = False

    def __init__(self, intervals: Iterable[Tuple[Interval, Hashable]] = ()):
        self._intervals: Dict[Hashable, Interval] = {}
        for interval, ident in intervals:
            if ident in self._intervals:
                raise TreeError(f"duplicate interval ident {ident!r}")
            self._intervals[ident] = interval
        self._root = self._build(list(self._intervals.items()))

    def _build(
        self, items: List[Tuple[Hashable, Interval]]
    ) -> Optional[_IntervalNode]:
        if not items:
            return None
        center = self._pick_center(items)
        node = _IntervalNode(center)
        below: List[Tuple[Hashable, Interval]] = []
        above: List[Tuple[Hashable, Interval]] = []
        here: List[Tuple[Interval, Hashable]] = []
        for ident, interval in items:
            if self._entirely_below(interval, center):
                below.append((ident, interval))
            elif self._entirely_above(interval, center):
                above.append((ident, interval))
            else:
                here.append((interval, ident))
        node.by_low = sorted(here, key=lambda pair: _low_key(pair[0]))
        node.by_high = sorted(here, key=lambda pair: _high_key(pair[0]), reverse=True)
        node.left = self._build(below)
        node.right = self._build(above)
        return node

    @staticmethod
    def _pick_center(items: List[Tuple[Hashable, Interval]]) -> Any:
        """Median of the finite endpoints (balanced split heuristic)."""
        endpoints: List[Any] = []
        for _, interval in items:
            if not is_infinite(interval.low):
                endpoints.append(interval.low)
            if not is_infinite(interval.high):
                endpoints.append(interval.high)
        if not endpoints:
            return 0  # all-unbounded set: any center works
        endpoints.sort()
        return endpoints[len(endpoints) // 2]

    @staticmethod
    def _entirely_below(interval: Interval, center: Any) -> bool:
        # Strict: intervals merely *touching* the center (even with an
        # open endpoint) stay at the node.  This guarantees the median
        # endpoint keeps at least one interval, so recursion always
        # makes progress; the query filters the x == center case.
        if is_infinite(interval.high):
            return False
        return interval.high < center

    @staticmethod
    def _entirely_above(interval: Interval, center: Any) -> bool:
        if is_infinite(interval.low):
            return False
        return interval.low > center

    # -- queries ----------------------------------------------------------

    def stab(self, x: Any) -> Set[Hashable]:
        result: Set[Hashable] = set()
        node = self._root
        while node is not None:
            if x == node.center:
                # intervals here span the center but may exclude the
                # point itself through an open endpoint: filter exactly
                result.update(
                    ident
                    for interval, ident in node.by_low
                    if interval.contains(x)
                )
                break
            if x < node.center:
                # scan ascending lows until one starts above x
                for interval, ident in node.by_low:
                    if not is_infinite(interval.low):
                        if interval.low > x:
                            break
                        if interval.low == x and not interval.low_inclusive:
                            break
                    result.add(ident)
                node = node.left
            else:
                # scan descending highs until one ends below x
                for interval, ident in node.by_high:
                    if not is_infinite(interval.high):
                        if interval.high < x:
                            break
                        if interval.high == x and not interval.high_inclusive:
                            break
                    result.add(ident)
                node = node.right
        return result

    # -- static-structure behaviour ----------------------------------------

    def insert(self, interval: Interval, ident: Optional[Hashable] = None) -> Hashable:
        raise TreeError(
            "interval trees are static: rebuild with the full interval set"
        )

    def delete(self, ident: Hashable) -> None:
        raise TreeError(
            "interval trees are static: rebuild with the reduced interval set"
        )

    def rebuilt_with(self, interval: Interval, ident: Hashable) -> "StaticIntervalTree":
        """A new tree containing this tree's intervals plus one more."""
        items = list(self._intervals.items()) + [(ident, interval)]
        return StaticIntervalTree((iv, i) for i, iv in items)

    def rebuilt_without(self, ident: Hashable) -> "StaticIntervalTree":
        """A new tree containing this tree's intervals minus one."""
        if ident not in self._intervals:
            raise TreeError(f"unknown interval ident {ident!r}")
        return StaticIntervalTree(
            (iv, i) for i, iv in self._intervals.items() if i != ident
        )

    def __len__(self) -> int:
        return len(self._intervals)
