"""Baselines: the predicate-indexing methods of the paper's Section 2,
plus the alternative interval indexes of Sections 4.1 and 6.

Predicate matchers (all satisfy
:class:`~repro.baselines.base.PredicateMatcher` and can be plugged into
the rule engine and the end-to-end benchmarks):

* :class:`SequentialMatcher` — Section 2.1, one flat list;
* :class:`HashSequentialMatcher` — Section 2.2, OPS5-style hash on
  relation name + per-relation list;
* :class:`PhysicalLockingMatcher` — Section 2.3, POSTGRES-style
  predicate locks with escalation;
* :class:`RTreeMatcher` — Section 2.4, predicates as k-d boxes;
* :class:`~repro.core.predicate_index.PredicateIndex` — the paper's
  algorithm (lives in :mod:`repro.core`).

Interval indexes (all satisfy
:class:`~repro.baselines.base.IntervalIndex`, compared in the ABL1
ablation):

* :class:`IntervalList` — linear scan (the Figure 9 comparison curve);
* :class:`~repro.core.ibs_tree.IBSTree` / AVLIBSTree — the paper's;
* :class:`RTree1D` — dynamic, closed bounds only;
* :class:`PrioritySearchTree` — dynamic, closed bounds only, needs the
  unique-lower-bound transformation;
* :class:`SegmentTree`, :class:`StaticIntervalTree` — static, exact
  semantics, rebuilt on every change.
"""

from .base import IntervalIndex, PredicateMatcher
from .sequential import IntervalList, SequentialMatcher
from .hash_sequential import HashSequentialMatcher
from .physical_locking import LockStatistics, PhysicalLockingMatcher
from .rtree import Rect, RTree, RTree1D, RTreeMatcher
from .rplus_tree import RPlusTree1D
from .segment_tree import SegmentTree
from .interval_tree import StaticIntervalTree
from .priority_search_tree import PrioritySearchTree

__all__ = [
    "PredicateMatcher",
    "IntervalIndex",
    "SequentialMatcher",
    "IntervalList",
    "HashSequentialMatcher",
    "PhysicalLockingMatcher",
    "LockStatistics",
    "RTree",
    "RTree1D",
    "RTreeMatcher",
    "Rect",
    "RPlusTree1D",
    "SegmentTree",
    "StaticIntervalTree",
    "PrioritySearchTree",
]
