"""Common interfaces for predicate matchers and interval indexes.

Two protocols are defined:

* :class:`PredicateMatcher` — the contract of the paper's *predicate
  testing problem*: register/unregister conjunctive predicates, and for
  a tuple return every matching predicate.  Implemented by the paper's
  algorithm (:class:`~repro.core.predicate_index.PredicateIndex`
  satisfies it structurally) and by each Section 2 baseline, so the
  rule engine and the end-to-end benchmarks can swap strategies.

* :class:`IntervalIndex` — the contract of a one-dimensional stabbing
  index: insert/delete intervals under identifiers, and return all
  identifiers whose interval contains a query value.  Implemented by
  the IBS-tree and by the alternative interval structures compared in
  the ABL1 ablation (interval list, 1-d R-tree, priority search tree,
  segment/interval trees).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Mapping, Optional, Set

from ..predicates.predicate import Predicate

__all__ = ["PredicateMatcher", "IntervalIndex"]


class PredicateMatcher:
    """Abstract base for predicate matching strategies."""

    #: Short machine name used in benchmark tables and engine config.
    name: str = "abstract"

    def add(self, predicate: Predicate) -> Hashable:
        """Register a predicate; returns its identifier."""
        raise NotImplementedError

    def remove(self, ident: Hashable) -> Predicate:
        """Unregister and return the predicate under *ident*."""
        raise NotImplementedError

    def match(self, relation: str, tup: Mapping[str, Any]) -> List[Predicate]:
        """All registered predicates of *relation* matching the tuple."""
        raise NotImplementedError

    def match_idents(self, relation: str, tup: Mapping[str, Any]) -> Set[Hashable]:
        """Identifiers of all matching predicates (default: via match)."""
        return {pred.ident for pred in self.match(relation, tup)}

    def match_batch(
        self, relation: str, tuples: Iterable[Mapping[str, Any]]
    ) -> List[List[Predicate]]:
        """Match several tuples at once; one result list per input tuple.

        The default simply loops :meth:`match`; strategies with a real
        batched fast path (the IBS index) override it.
        """
        return [self.match(relation, tup) for tup in tuples]

    def __len__(self) -> int:
        raise NotImplementedError


class IntervalIndex:
    """Abstract base for one-dimensional interval (stabbing) indexes."""

    #: Short machine name used in ablation tables.
    name: str = "abstract"

    #: Whether intervals can be added after construction.
    supports_dynamic_insert: bool = True

    #: Whether intervals can be removed.
    supports_dynamic_delete: bool = True

    #: Whether open/half-open endpoint semantics are honoured exactly.
    supports_open_bounds: bool = True

    #: Whether -inf/+inf endpoints are honoured exactly.
    supports_unbounded: bool = True

    def insert(self, interval, ident: Hashable = None) -> Hashable:
        raise NotImplementedError

    def delete(self, ident: Hashable) -> None:
        raise NotImplementedError

    def stab(self, x: Any) -> Set[Hashable]:
        """Identifiers of all intervals containing *x*."""
        raise NotImplementedError

    def stab_into(self, x: Any, out: Set[Hashable]) -> Set[Hashable]:
        """Union the identifiers of intervals containing *x* into *out*.

        All-or-nothing: a ``TypeError`` from the probe leaves *out*
        untouched.  Default delegates to :meth:`stab`; tree-shaped
        indexes override it to skip the temporary result set.
        """
        out.update(self.stab(x))
        return out

    def stab_many(self, values: Iterable[Any]) -> Dict[Any, Optional[Set[Hashable]]]:
        """Stab several values; ``{value: idents}`` per distinct value.

        Values for which :meth:`stab` raises ``TypeError`` (incomparable
        with the indexed endpoints) map to ``None``, and so does
        ``None`` itself, unconditionally — SQL NULL stabs nothing, even
        on an empty index (the NULL rule shared with the IBS-tree
        implementations and the match pipeline's pre-probe skip).
        Default loops :meth:`stab`; the IBS-trees override it with a
        shared-prefix grouped descent.
        """
        out: Dict[Any, Optional[Set[Hashable]]] = {}
        for v in values:
            if v in out:
                continue
            if v is None:
                out[v] = None  # NULL rule: NULL stabs nothing
                continue
            try:
                out[v] = self.stab(v)
            except TypeError:
                out[v] = None
        return out

    def __len__(self) -> int:
        raise NotImplementedError
