"""Baseline 2.2: hash on relation name + per-relation sequential search.

"The system maintains one list of predicates for each relation, and for
each tuple modified, hashes on relation name to locate the predicate
list for the tuple.  The predicates on the list are then tested against
the tuple sequentially.  This is essentially the algorithm used in many
main-memory-based production rule systems including some
implementations of OPS5."  — paper, Section 2.2.

This is the algorithm the paper's scheme improves on: it performs well
when the average number of predicates per relation is small and evenly
distributed, and degrades linearly as predicates concentrate on few
relations.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Mapping

from ..errors import PredicateError, UnknownIntervalError
from ..predicates.predicate import Predicate
from .base import PredicateMatcher

__all__ = ["HashSequentialMatcher"]


class HashSequentialMatcher(PredicateMatcher):
    """One predicate list per relation, located by hashing the name."""

    name = "hash"

    def __init__(self) -> None:
        self._by_relation: Dict[str, Dict[Hashable, Predicate]] = {}
        self._relation_of: Dict[Hashable, str] = {}

    def add(self, predicate: Predicate) -> Hashable:
        if predicate.ident in self._relation_of:
            raise PredicateError(
                f"predicate ident {predicate.ident!r} already registered"
            )
        bucket = self._by_relation.setdefault(predicate.relation, {})
        bucket[predicate.ident] = predicate
        self._relation_of[predicate.ident] = predicate.relation
        return predicate.ident

    def remove(self, ident: Hashable) -> Predicate:
        try:
            relation = self._relation_of.pop(ident)
        except KeyError:
            raise UnknownIntervalError(ident) from None
        bucket = self._by_relation[relation]
        predicate = bucket.pop(ident)
        if not bucket:
            del self._by_relation[relation]
        return predicate

    def match(self, relation: str, tup: Mapping[str, Any]) -> List[Predicate]:
        bucket = self._by_relation.get(relation)
        if not bucket:
            return []
        return [pred for pred in bucket.values() if pred.matches(tup)]

    def predicates_for(self, relation: str) -> List[Predicate]:
        """All predicates registered for *relation*."""
        return list(self._by_relation.get(relation, {}).values())

    def __len__(self) -> int:
        return len(self._relation_of)
