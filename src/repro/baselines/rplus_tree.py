"""R+-style clipped interval index (Section 2.4's other spatial index).

The paper's multi-dimensional baseline cites both the R-tree [Gut84]
and the R+-tree [SSH86].  Where the R-tree lets node regions overlap
(and search follow many paths), the R+-tree keeps regions **disjoint**
and *clips* each object into every region it crosses: point search
follows exactly one path, at the cost of duplicated entries and a
notoriously awkward delete/merge story.

:class:`RPlusTree1D` reproduces that trade-off for intervals:

* the line is partitioned into disjoint half-open segments whose
  boundaries are the inserted intervals' endpoints;
* each interval is clipped into (registered with) every segment it
  overlaps — the R+ duplication;
* a stabbing query locates the single segment containing the point
  (binary search) and filters its entries exactly — single-path
  search, like the paged original;
* splits propagate existing entries downward, and deletion removes a
  clip from every segment but — faithfully to R+ maintenance — never
  merges segments back, so the partition only refines over time.

As with :class:`~repro.baselines.rtree.RTree1D`, open endpoints are
approximated by closed ones at the partition level and corrected by
the exact residual filter, and unbounded ends are supported through
the sentinel ordering.  The paged tree structure of the original is
flattened to a sorted array of segments: page management is orthogonal
to the search/duplication behaviour this baseline exists to compare.
"""

from __future__ import annotations

import bisect
import itertools
from typing import Any, Dict, Hashable, List, Optional, Set

from ..core.intervals import MINUS_INF, Interval, is_infinite
from ..errors import DuplicateIntervalError, UnknownIntervalError
from .base import IntervalIndex

__all__ = ["RPlusTree1D"]


class _Segment:
    """A half-open region ``[start, next.start)`` of the partition."""

    __slots__ = ("start", "idents")

    def __init__(self, start: Any):
        self.start = start  # MINUS_INF for the leftmost segment
        self.idents: Set[Hashable] = set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<segment {self.start!r}: {len(self.idents)} clips>"


class RPlusTree1D(IntervalIndex):
    """Disjoint-partition interval index with R+-style clipping."""

    name = "rplus"
    supports_open_bounds = False
    supports_unbounded = True

    def __init__(self) -> None:
        # segments sorted by start; starts[0] is a -inf sentinel so every
        # query value falls into exactly one segment
        self._segments: List[_Segment] = [_Segment(MINUS_INF)]
        self._starts: List[Any] = [MINUS_INF]
        self._intervals: Dict[Hashable, Interval] = {}
        #: ident -> segments currently holding a clip of it
        self._clips: Dict[Hashable, Set[_Segment]] = {}
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._intervals)

    def __contains__(self, ident: Hashable) -> bool:
        return ident in self._intervals

    @property
    def segment_count(self) -> int:
        """Partition size (grows with distinct endpoints; never shrinks)."""
        return len(self._segments)

    @property
    def clip_count(self) -> int:
        """Total clipped entries (the R+ duplication overhead)."""
        return sum(len(clips) for clips in self._clips.values())

    # -- partition maintenance -----------------------------------------

    def _segment_index(self, value: Any) -> int:
        """Index of the segment containing *value* (rightmost start <= value)."""
        lo, hi = 0, len(self._starts)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._value_lt(value, self._starts[mid]):
                hi = mid
            else:
                lo = mid + 1
        return lo - 1

    @staticmethod
    def _value_lt(a: Any, b: Any) -> bool:
        if a is b:
            return False
        return a < b

    def _ensure_boundary(self, value: Any) -> None:
        """Split so a segment starts exactly at *value* (clips inherited)."""
        if is_infinite(value):
            return
        index = self._segment_index(value)
        segment = self._segments[index]
        if segment.start is value or (
            not is_infinite(segment.start) and segment.start == value
        ):
            return
        new_segment = _Segment(value)
        # precise re-clip: each entry goes to exactly the halves its
        # interval overlaps (naive both-halves inheritance balloons the
        # clip count with entries the residual filter then discards)
        for ident in list(segment.idents):
            interval = self._intervals[ident]
            reaches_right = is_infinite(interval.high) or not self._value_lt(
                interval.high, value
            )
            if reaches_right:
                new_segment.idents.add(ident)
                self._clips[ident].add(new_segment)
            touches_left = interval.low is MINUS_INF or self._value_lt(
                interval.low, value
            )
            if not touches_left:
                segment.idents.discard(ident)
                self._clips[ident].discard(segment)
        self._segments.insert(index + 1, new_segment)
        self._starts.insert(index + 1, value)

    # -- IntervalIndex API -------------------------------------------------

    def insert(self, interval: Interval, ident: Optional[Hashable] = None) -> Hashable:
        if ident is None:
            ident = next(self._counter)
            while ident in self._intervals:
                ident = next(self._counter)
        if ident in self._intervals:
            raise DuplicateIntervalError(ident)
        self._ensure_boundary(interval.low)
        if not interval.is_point:
            self._ensure_boundary(interval.high)
        first = 0 if is_infinite(interval.low) else self._segment_index(interval.low)
        last = (
            len(self._segments) - 1
            if is_infinite(interval.high)
            else self._segment_index(interval.high)
        )
        clips = self._clips[ident] = set()
        for segment in self._segments[first : last + 1]:
            segment.idents.add(ident)
            clips.add(segment)
        self._intervals[ident] = interval
        return ident

    def delete(self, ident: Hashable) -> None:
        try:
            del self._intervals[ident]
        except KeyError:
            raise UnknownIntervalError(ident) from None
        for segment in self._clips.pop(ident):
            segment.idents.discard(ident)

    def stab(self, x: Any) -> Set[Hashable]:
        """Single-path search: one segment lookup + exact filter."""
        segment = self._segments[self._segment_index(x)]
        return {
            ident
            for ident in segment.idents
            if self._intervals[ident].contains(x)
        }

    def stab_candidates(self, x: Any) -> Set[Hashable]:
        """Raw clipped candidates of the owning segment (no filtering)."""
        return set(self._segments[self._segment_index(x)].idents)
