"""Dynamic priority search tree for stabbing queries (McCreight [McC85]).

A priority search tree stores points ``(x, y)`` so that the query
"all points with x <= q and y >= q" runs in ``O(log N + L)``.  Mapping
each interval ``[low, high]`` to the point ``(low, high)`` makes that
query exactly the stabbing query ``low <= q <= high``.

This implementation keeps the structure McCreight describes — a binary
search tree on x that is simultaneously a max-heap on y — maintaining
it dynamically with rotations (insert bubbles a new leaf up while the
heap order is violated; delete rotates the node down to a leaf and
unlinks it).

The paper (Section 4.1) lists two practical drawbacks relative to the
IBS-tree, both of which this implementation exhibits honestly:

* **non-unique lower bounds** need "a special transformation from pairs
  with non-unique lower bounds to pairs with unique lower bounds ...
  created for each different data type to be indexed".  We apply the
  generic transformation of extending the BST key to ``(low, seq)``
  with a per-insert sequence number — note that unlike the paper's
  per-type scheme this needs the domain to tolerate tuple extension,
  which is exactly the kind of adapter code the IBS-tree avoids;
* **endpoint semantics** are closed-closed only: open endpoints are
  treated as closed (``supports_open_bounds = False``), so exact users
  must post-filter — the ABL1 ablation does.

Unbounded ends are supported through the infinity sentinels, which
order correctly against every domain value.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

from ..core.intervals import Interval
from ..errors import DuplicateIntervalError, TreeError, UnknownIntervalError
from .base import IntervalIndex

__all__ = ["PrioritySearchTree"]


class _PSTNode:
    __slots__ = ("key", "high", "ident", "left", "right", "parent")

    def __init__(self, key: Tuple[Any, int], high: Any, ident: Hashable):
        self.key = key          # (low bound, sequence number): unique BST key
        self.high = high        # heap priority: the interval's high bound
        self.ident = ident
        self.left: Optional["_PSTNode"] = None
        self.right: Optional["_PSTNode"] = None
        self.parent: Optional["_PSTNode"] = None


class PrioritySearchTree(IntervalIndex):
    """Dynamic stabbing index: BST on interval lows, max-heap on highs."""

    name = "pst"
    supports_open_bounds = False

    def __init__(self) -> None:
        self._root: Optional[_PSTNode] = None
        self._nodes: Dict[Hashable, _PSTNode] = {}
        self._intervals: Dict[Hashable, Interval] = {}
        self._seq = itertools.count()
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._intervals)

    def __contains__(self, ident: Hashable) -> bool:
        return ident in self._intervals

    # -- insertion ----------------------------------------------------------

    def insert(self, interval: Interval, ident: Optional[Hashable] = None) -> Hashable:
        if ident is None:
            ident = next(self._counter)
            while ident in self._intervals:
                ident = next(self._counter)
        if ident in self._intervals:
            raise DuplicateIntervalError(ident)
        # The uniqueness transformation the paper mentions: extend the
        # low bound with a sequence number so BST keys never collide.
        node = _PSTNode((interval.low, next(self._seq)), interval.high, ident)
        self._bst_insert(node)
        self._bubble_up(node)
        self._intervals[ident] = interval
        self._nodes[ident] = node
        return ident

    def _bst_insert(self, node: _PSTNode) -> None:
        if self._root is None:
            self._root = node
            return
        current = self._root
        while True:
            if self._key_less(node.key, current.key):
                if current.left is None:
                    current.left = node
                    node.parent = current
                    return
                current = current.left
            else:
                if current.right is None:
                    current.right = node
                    node.parent = current
                    return
                current = current.right

    @staticmethod
    def _key_less(a: Tuple[Any, int], b: Tuple[Any, int]) -> bool:
        # Compare low bounds first (sentinels order against anything),
        # breaking exact ties with the sequence number.
        if a[0] is b[0]:
            return a[1] < b[1]
        if a[0] < b[0]:
            return True
        if b[0] < a[0]:
            return False
        return a[1] < b[1]

    def _bubble_up(self, node: _PSTNode) -> None:
        while node.parent is not None and self._high_less(node.parent.high, node.high):
            self._rotate_up(node)

    @staticmethod
    def _high_less(a: Any, b: Any) -> bool:
        if a is b:
            return False
        return a < b

    def _rotate_up(self, node: _PSTNode) -> None:
        """Single rotation lifting *node* above its parent."""
        parent = node.parent
        grand = parent.parent
        if parent.left is node:
            parent.left = node.right
            if node.right is not None:
                node.right.parent = parent
            node.right = parent
        else:
            parent.right = node.left
            if node.left is not None:
                node.left.parent = parent
            node.left = parent
        parent.parent = node
        node.parent = grand
        if grand is None:
            self._root = node
        elif grand.left is parent:
            grand.left = node
        else:
            grand.right = node

    # -- deletion ---------------------------------------------------------------

    def delete(self, ident: Hashable) -> None:
        try:
            node = self._nodes.pop(ident)
        except KeyError:
            raise UnknownIntervalError(ident) from None
        del self._intervals[ident]
        # Rotate the node down (promoting the higher-priority child)
        # until it is a leaf, then unlink it.
        while node.left is not None or node.right is not None:
            if node.left is None:
                child = node.right
            elif node.right is None:
                child = node.left
            elif self._high_less(node.right.high, node.left.high):
                child = node.left
            else:
                child = node.right
            self._rotate_up(child)
        parent = node.parent
        if parent is None:
            self._root = None
        elif parent.left is node:
            parent.left = None
        else:
            parent.right = None
        node.parent = None

    # -- queries ------------------------------------------------------------------

    def stab(self, x: Any) -> Set[Hashable]:
        """All intervals with ``low <= x <= high`` (closed semantics)."""
        result: Set[Hashable] = set()
        self._search(self._root, x, result)
        return result

    def _search(self, node: Optional[_PSTNode], x: Any, result: Set[Hashable]) -> None:
        if node is None:
            return
        # Heap prune: every high in this subtree is <= node.high.
        if self._high_less(node.high, x):
            return
        low = node.key[0]
        if not self._value_greater(low, x):
            # low <= x: the node qualifies, and both subtrees may too.
            result.add(node.ident)
            self._search(node.left, x, result)
            self._search(node.right, x, result)
        else:
            # low > x: everything in the right subtree has larger lows.
            self._search(node.left, x, result)

    @staticmethod
    def _value_greater(a: Any, b: Any) -> bool:
        if a is b:
            return False
        return a > b

    # -- validation (used by tests) -------------------------------------------

    def validate(self) -> None:
        """Check BST-on-key and max-heap-on-high invariants."""
        self._validate_node(self._root, None, None, None)

    def _validate_node(
        self,
        node: Optional[_PSTNode],
        parent: Optional[_PSTNode],
        low_key: Optional[Tuple[Any, int]],
        high_key: Optional[Tuple[Any, int]],
    ) -> None:
        if node is None:
            return
        if node.parent is not parent:
            raise TreeError(f"bad parent pointer at PST node {node.ident!r}")
        if low_key is not None and self._key_less(node.key, low_key):
            raise TreeError(f"BST violation at PST node {node.ident!r}")
        if high_key is not None and self._key_less(high_key, node.key):
            raise TreeError(f"BST violation at PST node {node.ident!r}")
        if parent is not None and self._high_less(parent.high, node.high):
            raise TreeError(f"heap violation at PST node {node.ident!r}")
        self._validate_node(node.left, node, low_key, node.key)
        self._validate_node(node.right, node, node.key, high_key)
