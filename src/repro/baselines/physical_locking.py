"""Baseline 2.3: physical locking (POSTGRES rule manager style).

The paper (Section 2.3, after [SSH86, SHP88]) describes predicate
indexing via the storage layer: each predicate is run through the query
optimizer; if its access plan uses an attribute index, persistent
*interval locks* are placed on the index ranges it scans; if the plan is
a sequential scan, "lock escalation" leaves a *relation-level lock*.
When a tuple is inserted or modified the system gathers all conflicting
locks — every relation-level lock plus the interval locks on each
updated index that cover the tuple's value — and tests the associated
predicates.

This module simulates the scheme over our main-memory substrate:

* the "query optimizer" is the same selectivity ranking the IBS scheme
  uses, restricted to attributes that actually have an index (the
  *indexed_attributes* constructor argument plays the role of the
  database's physical design);
* an index-interval lock is an entry in a per-``(relation, attribute)``
  lock list, scanned linearly on each tuple event — faithfully
  modelling the index-maintenance-time conflict check, which walks the
  locks present on the index pages it touches;
* lock escalation yields relation-level locks whose predicates are
  tested on *every* tuple of that relation — the degenerate behaviour
  the paper criticises: "when there are no indexes ... most predicates
  will have a relation-level lock ... resulting in bad worst-case
  performance".
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

from ..core.intervals import Interval
from ..core.selectivity import DefaultEstimator, SelectivityEstimator
from ..errors import PredicateError, UnknownIntervalError
from ..predicates.clauses import IntervalClause
from ..predicates.predicate import Predicate
from .base import PredicateMatcher

__all__ = ["PhysicalLockingMatcher", "LockStatistics"]


class LockStatistics:
    """Counters describing lock traffic (for the baseline comparison)."""

    __slots__ = ("relation_locks_checked", "interval_locks_checked", "escalations")

    def __init__(self) -> None:
        self.relation_locks_checked = 0
        self.interval_locks_checked = 0
        self.escalations = 0

    def reset(self) -> None:
        self.relation_locks_checked = 0
        self.interval_locks_checked = 0
        self.escalations = 0

    def __repr__(self) -> str:
        return (
            f"<LockStatistics relation={self.relation_locks_checked} "
            f"interval={self.interval_locks_checked} "
            f"escalations={self.escalations}>"
        )


class _RelationLocks:
    """Lock state for one relation."""

    __slots__ = ("relation_level", "interval_locks", "predicates")

    def __init__(self) -> None:
        #: idents of predicates holding a relation-level lock
        self.relation_level: Set[Hashable] = set()
        #: attribute -> list of (interval, ident) index-interval locks
        self.interval_locks: Dict[str, List[Tuple[Interval, Hashable]]] = {}
        #: ident -> full predicate (the in-memory predicate table the
        #: paper notes this scheme still needs)
        self.predicates: Dict[Hashable, Predicate] = {}


class PhysicalLockingMatcher(PredicateMatcher):
    """Lock-based predicate matching over a simulated physical design.

    Parameters
    ----------
    indexed_attributes:
        Mapping from relation name to the attributes that have an
        index.  Predicates with no indexable clause on any indexed
        attribute escalate to a relation-level lock.  An empty mapping
        models a database with no indexes at all — the degenerate case.
    estimator:
        Selectivity estimator the simulated optimizer uses to choose
        which indexed clause to lock on.
    """

    name = "locking"

    def __init__(
        self,
        indexed_attributes: Optional[Mapping[str, Iterable[str]]] = None,
        estimator: Optional[SelectivityEstimator] = None,
    ):
        self._indexed: Dict[str, Set[str]] = {
            rel: set(attrs) for rel, attrs in (indexed_attributes or {}).items()
        }
        self._estimator = estimator or DefaultEstimator()
        self._relations: Dict[str, _RelationLocks] = {}
        self._relation_of: Dict[Hashable, str] = {}
        self.stats = LockStatistics()

    # -- physical design ----------------------------------------------------

    def create_index(self, relation: str, attribute: str) -> None:
        """Declare an index; affects only predicates added afterwards."""
        self._indexed.setdefault(relation, set()).add(attribute)

    def indexed_attributes(self, relation: str) -> Set[str]:
        """The attributes of *relation* that have an index."""
        return set(self._indexed.get(relation, ()))

    # -- registration -------------------------------------------------------

    def add(self, predicate: Predicate) -> Hashable:
        ident = predicate.ident
        if ident in self._relation_of:
            raise PredicateError(f"predicate ident {ident!r} already registered")
        locks = self._relations.setdefault(predicate.relation, _RelationLocks())
        clause = self._plan(predicate)
        if clause is None:
            locks.relation_level.add(ident)
            self.stats.escalations += 1
        else:
            bucket = locks.interval_locks.setdefault(clause.attribute, [])
            bucket.append((clause.interval, ident))
        locks.predicates[ident] = predicate
        self._relation_of[ident] = predicate.relation
        return ident

    def _plan(self, predicate: Predicate) -> Optional[IntervalClause]:
        """The simulated optimizer: best indexable clause on an indexed attr."""
        indexed = self._indexed.get(predicate.relation, set())
        best: Optional[IntervalClause] = None
        best_score = float("inf")
        for clause in predicate.clauses:
            if not clause.indexable or clause.attribute not in indexed:
                continue
            score = self._estimator.estimate(predicate.relation, clause)
            if score < best_score:
                best = clause  # type: ignore[assignment]
                best_score = score
        return best

    def remove(self, ident: Hashable) -> Predicate:
        try:
            relation = self._relation_of.pop(ident)
        except KeyError:
            raise UnknownIntervalError(ident) from None
        locks = self._relations[relation]
        predicate = locks.predicates.pop(ident)
        if ident in locks.relation_level:
            locks.relation_level.discard(ident)
        else:
            for attribute, bucket in locks.interval_locks.items():
                kept = [(iv, i) for iv, i in bucket if i != ident]
                if len(kept) != len(bucket):
                    if kept:
                        locks.interval_locks[attribute] = kept
                    else:
                        del locks.interval_locks[attribute]
                    break
        if not locks.predicates:
            del self._relations[relation]
        return predicate

    # -- matching ----------------------------------------------------------

    def match(self, relation: str, tup: Mapping[str, Any]) -> List[Predicate]:
        locks = self._relations.get(relation)
        if locks is None:
            return []
        candidates: Set[Hashable] = set(locks.relation_level)
        self.stats.relation_locks_checked += len(locks.relation_level)
        for attribute, bucket in locks.interval_locks.items():
            value = tup.get(attribute)
            self.stats.interval_locks_checked += len(bucket)
            if value is None:
                continue
            for interval, ident in bucket:
                if interval.contains(value):
                    candidates.add(ident)
        return [
            pred
            for ident in candidates
            if (pred := locks.predicates[ident]).matches(tup)
        ]

    def __len__(self) -> int:
        return len(self._relation_of)
