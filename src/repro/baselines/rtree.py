"""Baseline 2.4: R-trees for multi-dimensional predicate indexing.

The paper (Section 2.4, after [Gut84]) evaluates treating predicates as
regions in the k-dimensional space of a relation's attributes and
indexing them with an R-tree.  Its critique: realistic predicates
restrict one or two of 5–25 attributes, producing heavily overlapping
unbounded "slices" that spatial structures index poorly; and "R-trees
cannot accommodate open intervals".

This module implements:

* :class:`Rect` — a k-dimensional closed box;
* :class:`RTree` — a dynamic R-tree with Guttman's quadratic split and
  condense-on-delete with reinsertion;
* :class:`RTree1D` — the one-dimensional adapter with the
  :class:`~repro.baselines.base.IntervalIndex` interface, used in the
  ABL1 interval-index ablation (open and unbounded interval semantics
  are *approximated* by clamping to configurable domain bounds —
  exactly the limitation the paper points out);
* :class:`RTreeMatcher` — the full baseline: predicates become boxes
  over each relation's restricted attributes, tuples become query
  points, with a residual test for function clauses and exact bound
  semantics.
"""

from __future__ import annotations

import itertools
import math
from typing import (
    Any,
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core.intervals import Interval, is_infinite
from ..errors import (
    DuplicateIntervalError,
    PredicateError,
    TreeError,
    UnknownIntervalError,
)
from ..predicates.clauses import IntervalClause
from ..predicates.predicate import Predicate
from .base import IntervalIndex, PredicateMatcher

__all__ = ["Rect", "RTree", "RTree1D", "RTreeMatcher"]

#: Default clamp bounds used when mapping unbounded predicate clauses
#: into closed boxes.  Wide enough for every workload in this package.
DEFAULT_DOMAIN_LOW = -1.0e18
DEFAULT_DOMAIN_HIGH = 1.0e18


def _is_number(value: Any) -> bool:
    import numbers

    return isinstance(value, numbers.Real) and not isinstance(value, bool)


def _numeric_intervals(predicate: Predicate) -> Dict[str, Interval]:
    """The predicate's interval clauses whose finite bounds are numeric."""
    result: Dict[str, Interval] = {}
    for clause in predicate.clauses:
        if not isinstance(clause, IntervalClause):
            continue
        interval = clause.interval
        low_ok = is_infinite(interval.low) or _is_number(interval.low)
        high_ok = is_infinite(interval.high) or _is_number(interval.high)
        if low_ok and high_ok:
            result[clause.attribute] = interval
    return result


class Rect:
    """A k-dimensional closed box: per-dimension (low, high) pairs."""

    __slots__ = ("bounds",)

    def __init__(self, bounds: Sequence[Tuple[float, float]]):
        checked = []
        for low, high in bounds:
            if low > high:
                raise TreeError(f"rect bound low {low!r} exceeds high {high!r}")
            checked.append((low, high))
        self.bounds = tuple(checked)

    @property
    def dims(self) -> int:
        return len(self.bounds)

    @classmethod
    def point(cls, coords: Sequence[float]) -> "Rect":
        """A degenerate box holding a single point."""
        return cls([(c, c) for c in coords])

    def contains_point(self, coords: Sequence[float]) -> bool:
        """True if the point lies inside the (closed) box."""
        return all(
            low <= coord <= high
            for (low, high), coord in zip(self.bounds, coords)
        )

    def intersects(self, other: "Rect") -> bool:
        return all(
            a_low <= b_high and b_low <= a_high
            for (a_low, a_high), (b_low, b_high) in zip(self.bounds, other.bounds)
        )

    def union(self, other: "Rect") -> "Rect":
        return Rect(
            [
                (min(a_low, b_low), max(a_high, b_high))
                for (a_low, a_high), (b_low, b_high) in zip(self.bounds, other.bounds)
            ]
        )

    def area(self) -> float:
        """Volume of the box (0 for degenerate boxes)."""
        result = 1.0
        for low, high in self.bounds:
            result *= high - low
        return result

    def margin(self) -> float:
        """Sum of edge lengths; tiebreaker when areas are degenerate."""
        return sum(high - low for low, high in self.bounds)

    def enlargement(self, other: "Rect") -> float:
        """Area growth (with margin tiebreak) if *other* were merged in."""
        merged = self.union(other)
        growth = merged.area() - self.area()
        if growth == 0.0:
            growth = (merged.margin() - self.margin()) * 1e-9
        return growth

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return self.bounds == other.bounds

    def __hash__(self) -> int:
        return hash(self.bounds)

    def __repr__(self) -> str:
        body = " x ".join(f"[{low}, {high}]" for low, high in self.bounds)
        return f"Rect({body})"


class _RTreeNode:
    __slots__ = ("is_leaf", "entries", "parent")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        #: leaf entries: (rect, ident); inner entries: (rect, child_node)
        self.entries: List[Tuple[Rect, Any]] = []
        self.parent: Optional["_RTreeNode"] = None

    def mbr(self) -> Rect:
        rect = self.entries[0][0]
        for other, _ in self.entries[1:]:
            rect = rect.union(other)
        return rect


class RTree:
    """A dynamic R-tree (Guttman, quadratic split).

    Stores rectangles under hashable identifiers; supports point and
    window queries and deletion with tree condensation.
    """

    def __init__(self, dims: int, max_entries: int = 8):
        if dims < 1:
            raise TreeError("RTree needs at least one dimension")
        if max_entries < 4:
            raise TreeError("max_entries must be at least 4")
        self.dims = dims
        self.max_entries = max_entries
        self.min_entries = max(2, max_entries // 2)
        self._root = _RTreeNode(is_leaf=True)
        self._rects: Dict[Hashable, Rect] = {}

    def __len__(self) -> int:
        return len(self._rects)

    def __contains__(self, ident: Hashable) -> bool:
        return ident in self._rects

    # -- insertion ---------------------------------------------------------

    def insert(self, rect: Rect, ident: Hashable) -> Hashable:
        if rect.dims != self.dims:
            raise TreeError(f"rect has {rect.dims} dims, tree has {self.dims}")
        if ident in self._rects:
            raise DuplicateIntervalError(ident)
        self._rects[ident] = rect
        leaf = self._choose_leaf(self._root, rect)
        leaf.entries.append((rect, ident))
        self._handle_overflow(leaf)
        return ident

    def _choose_leaf(self, node: _RTreeNode, rect: Rect) -> _RTreeNode:
        while not node.is_leaf:
            best = min(node.entries, key=lambda e: (e[0].enlargement(rect), e[0].area()))
            node = best[1]
        return node

    def _handle_overflow(self, node: _RTreeNode) -> None:
        while node is not None and len(node.entries) > self.max_entries:
            sibling = self._split(node)
            parent = node.parent
            if parent is None:
                new_root = _RTreeNode(is_leaf=False)
                for child in (node, sibling):
                    child.parent = new_root
                    new_root.entries.append((child.mbr(), child))
                self._root = new_root
                return
            sibling.parent = parent
            self._refresh_entry(parent, node)
            parent.entries.append((sibling.mbr(), sibling))
            node = parent
        # refresh MBRs up to the root
        while node is not None and node.parent is not None:
            self._refresh_entry(node.parent, node)
            node = node.parent

    @staticmethod
    def _refresh_entry(parent: _RTreeNode, child: _RTreeNode) -> None:
        for index, (_, value) in enumerate(parent.entries):
            if value is child:
                parent.entries[index] = (child.mbr(), child)
                return

    def _split(self, node: _RTreeNode) -> _RTreeNode:
        """Quadratic split: returns the new sibling node."""
        entries = node.entries
        seed_a, seed_b = self._pick_seeds(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        rect_a = entries[seed_a][0]
        rect_b = entries[seed_b][0]
        remaining = [
            entry for k, entry in enumerate(entries) if k not in (seed_a, seed_b)
        ]
        while remaining:
            # force assignment if one group must take all the rest
            if len(group_a) + len(remaining) == self.min_entries:
                for entry in remaining:
                    group_a.append(entry)
                    rect_a = rect_a.union(entry[0])
                break
            if len(group_b) + len(remaining) == self.min_entries:
                for entry in remaining:
                    group_b.append(entry)
                    rect_b = rect_b.union(entry[0])
                break
            # pick the entry with the strongest preference
            best_index = max(
                range(len(remaining)),
                key=lambda k: abs(
                    rect_a.enlargement(remaining[k][0])
                    - rect_b.enlargement(remaining[k][0])
                ),
            )
            entry = remaining.pop(best_index)
            if rect_a.enlargement(entry[0]) <= rect_b.enlargement(entry[0]):
                group_a.append(entry)
                rect_a = rect_a.union(entry[0])
            else:
                group_b.append(entry)
                rect_b = rect_b.union(entry[0])
        node.entries = group_a
        sibling = _RTreeNode(is_leaf=node.is_leaf)
        sibling.entries = group_b
        if not node.is_leaf:
            for _, child in group_b:
                child.parent = sibling
        return sibling

    @staticmethod
    def _pick_seeds(entries: List[Tuple[Rect, Any]]) -> Tuple[int, int]:
        worst = (-math.inf, 0, 1)
        for a in range(len(entries)):
            for b in range(a + 1, len(entries)):
                waste = (
                    entries[a][0].union(entries[b][0]).area()
                    - entries[a][0].area()
                    - entries[b][0].area()
                )
                if waste > worst[0]:
                    worst = (waste, a, b)
        return worst[1], worst[2]

    # -- deletion -------------------------------------------------------------

    def delete(self, ident: Hashable) -> None:
        try:
            rect = self._rects.pop(ident)
        except KeyError:
            raise UnknownIntervalError(ident) from None
        leaf = self._find_leaf(self._root, rect, ident)
        if leaf is None:  # pragma: no cover - registry guarantees presence
            raise UnknownIntervalError(ident)
        leaf.entries = [(r, i) for r, i in leaf.entries if i != ident]
        self._condense(leaf)

    def _find_leaf(
        self, node: _RTreeNode, rect: Rect, ident: Hashable
    ) -> Optional[_RTreeNode]:
        if node.is_leaf:
            for _, value in node.entries:
                if value == ident:
                    return node
            return None
        for entry_rect, child in node.entries:
            if entry_rect.intersects(rect):
                found = self._find_leaf(child, rect, ident)
                if found is not None:
                    return found
        return None

    def _condense(self, node: _RTreeNode) -> None:
        orphans: List[Tuple[Rect, Hashable]] = []
        while node.parent is not None:
            parent = node.parent
            if len(node.entries) < self.min_entries:
                parent.entries = [(r, c) for r, c in parent.entries if c is not node]
                orphans.extend(self._leaf_entries(node))
            else:
                self._refresh_entry(parent, node)
            node = parent
        if not self._root.is_leaf and len(self._root.entries) == 1:
            self._root = self._root.entries[0][1]
            self._root.parent = None
        if not self._root.is_leaf and not self._root.entries:
            self._root = _RTreeNode(is_leaf=True)
        for rect, ident in orphans:
            del self._rects[ident]  # insert() re-registers
            self.insert(rect, ident)

    def _leaf_entries(self, node: _RTreeNode) -> List[Tuple[Rect, Hashable]]:
        if node.is_leaf:
            return list(node.entries)
        collected: List[Tuple[Rect, Hashable]] = []
        for _, child in node.entries:
            collected.extend(self._leaf_entries(child))
        return collected

    # -- queries -------------------------------------------------------------

    def search_point(self, coords: Sequence[float]) -> Set[Hashable]:
        """Identifiers of all rectangles containing the point."""
        if len(coords) != self.dims:
            raise TreeError(f"point has {len(coords)} dims, tree has {self.dims}")
        result: Set[Hashable] = set()
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for rect, ident in node.entries:
                    if rect.contains_point(coords):
                        result.add(ident)
            else:
                for rect, child in node.entries:
                    if rect.contains_point(coords):
                        stack.append(child)
        return result

    def search_rect(self, window: Rect) -> Set[Hashable]:
        """Identifiers of all rectangles intersecting the window."""
        result: Set[Hashable] = set()
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for rect, ident in node.entries:
                    if rect.intersects(window):
                        result.add(ident)
            else:
                for rect, child in node.entries:
                    if rect.intersects(window):
                        stack.append(child)
        return result

    def height(self) -> int:
        """Number of levels (1 for a lone leaf root)."""
        height = 1
        node = self._root
        while not node.is_leaf:
            height += 1
            node = node.entries[0][1]
        return height


class RTree1D(IntervalIndex):
    """One-dimensional R-tree with the :class:`IntervalIndex` interface.

    Open endpoints are treated as closed and infinite endpoints are
    clamped to ``[domain_low, domain_high]`` — R-trees "cannot
    accommodate open intervals" (paper Section 4.1), so the candidate
    set may contain false positives at interval boundaries.  The
    ablation harness compensates with an exact residual check, which is
    also how a real system would have to use this structure.
    """

    name = "rtree"
    supports_open_bounds = False
    supports_unbounded = False

    def __init__(
        self,
        max_entries: int = 8,
        domain_low: float = DEFAULT_DOMAIN_LOW,
        domain_high: float = DEFAULT_DOMAIN_HIGH,
    ):
        self._tree = RTree(dims=1, max_entries=max_entries)
        self._intervals: Dict[Hashable, Interval] = {}
        self._domain = (domain_low, domain_high)
        self._counter = itertools.count()

    def insert(self, interval: Interval, ident: Optional[Hashable] = None) -> Hashable:
        if ident is None:
            ident = next(self._counter)
            while ident in self._intervals:
                ident = next(self._counter)
        if ident in self._intervals:
            raise DuplicateIntervalError(ident)
        low = self._domain[0] if is_infinite(interval.low) else interval.low
        high = self._domain[1] if is_infinite(interval.high) else interval.high
        self._tree.insert(Rect([(low, high)]), ident)
        self._intervals[ident] = interval
        return ident

    def delete(self, ident: Hashable) -> None:
        if ident not in self._intervals:
            raise UnknownIntervalError(ident)
        self._tree.delete(ident)
        del self._intervals[ident]

    def stab(self, x: Any) -> Set[Hashable]:
        """Exact stabbing: R-tree candidates filtered by true semantics."""
        candidates = self._tree.search_point([x])
        return {
            ident for ident in candidates if self._intervals[ident].contains(x)
        }

    def stab_candidates(self, x: Any) -> Set[Hashable]:
        """Raw R-tree candidates (closed-bound semantics, no filtering)."""
        return self._tree.search_point([x])

    def __len__(self) -> int:
        return len(self._intervals)


class RTreeMatcher(PredicateMatcher):
    """The full Section 2.4 baseline: predicates as k-d boxes.

    Per relation, the tree's dimensions are the attributes restricted by
    at least one indexed predicate.  Adding a predicate that restricts a
    previously unseen attribute rebuilds that relation's tree with the
    extra dimension (rebuilds are counted in :attr:`rebuilds`).

    Spatial indexing is inherently numeric, so only clauses with numeric
    bounds become box dimensions; string-equality and function clauses
    are enforced by the residual test, and predicates with no numeric
    interval clause at all go to a side list — another practical
    shortfall of this approach that the IBS-tree (which works on any
    ordered domain) does not share.
    """

    name = "rtree"

    def __init__(
        self,
        max_entries: int = 8,
        domain_low: float = DEFAULT_DOMAIN_LOW,
        domain_high: float = DEFAULT_DOMAIN_HIGH,
    ):
        self._max_entries = max_entries
        self._domain = (domain_low, domain_high)
        self._trees: Dict[str, RTree] = {}
        self._dims: Dict[str, List[str]] = {}
        self._indexed: Dict[str, Dict[Hashable, Predicate]] = {}
        self._unindexed: Dict[str, Dict[Hashable, Predicate]] = {}
        self._relation_of: Dict[Hashable, str] = {}
        self.rebuilds = 0

    def add(self, predicate: Predicate) -> Hashable:
        ident = predicate.ident
        if ident in self._relation_of:
            raise PredicateError(f"predicate ident {ident!r} already registered")
        relation = predicate.relation
        normalized = predicate.normalized()
        if normalized is None:
            raise PredicateError(f"predicate {predicate} is unsatisfiable")
        intervals = _numeric_intervals(normalized)
        self._relation_of[ident] = relation
        if not intervals:
            self._unindexed.setdefault(relation, {})[ident] = predicate
            return ident
        dims = self._dims.setdefault(relation, [])
        new_attrs = [attr for attr in intervals if attr not in dims]
        if new_attrs:
            dims.extend(sorted(new_attrs))
            self._rebuild(relation)
        self._indexed.setdefault(relation, {})[ident] = predicate
        tree = self._trees.setdefault(
            relation, RTree(dims=len(dims), max_entries=self._max_entries)
        )
        tree.insert(self._predicate_rect(relation, normalized), ident)
        return ident

    def _predicate_rect(self, relation: str, predicate: Predicate) -> Rect:
        intervals = _numeric_intervals(predicate)
        low_clamp, high_clamp = self._domain
        bounds: List[Tuple[float, float]] = []
        for attr in self._dims[relation]:
            interval = intervals.get(attr)
            if interval is None:
                bounds.append((low_clamp, high_clamp))
            else:
                low = low_clamp if is_infinite(interval.low) else interval.low
                high = high_clamp if is_infinite(interval.high) else interval.high
                bounds.append((low, high))
        return Rect(bounds)

    def _rebuild(self, relation: str) -> None:
        """Rebuild a relation's tree after its dimensionality grew."""
        registered = self._indexed.get(relation, {})
        self._trees[relation] = tree = RTree(
            dims=len(self._dims[relation]), max_entries=self._max_entries
        )
        for ident, predicate in registered.items():
            normalized = predicate.normalized()
            assert normalized is not None
            tree.insert(self._predicate_rect(relation, normalized), ident)
        if registered:
            self.rebuilds += 1

    def remove(self, ident: Hashable) -> Predicate:
        try:
            relation = self._relation_of.pop(ident)
        except KeyError:
            raise UnknownIntervalError(ident) from None
        side = self._unindexed.get(relation, {})
        if ident in side:
            return side.pop(ident)
        predicate = self._indexed[relation].pop(ident)
        self._trees[relation].delete(ident)
        return predicate

    def match(self, relation: str, tup: Mapping[str, Any]) -> List[Predicate]:
        results: List[Predicate] = []
        tree = self._trees.get(relation)
        if tree is not None and len(tree):
            coords: List[float] = []
            usable = True
            for attr in self._dims[relation]:
                value = tup.get(attr)
                if not _is_number(value):
                    usable = False
                    break
                coords.append(value)
            indexed = self._indexed.get(relation, {})
            if usable:
                for ident in tree.search_point(coords):
                    predicate = indexed[ident]
                    if predicate.matches(tup):
                        results.append(predicate)
            else:
                # NULL in an indexed dimension: fall back to testing all
                results.extend(p for p in indexed.values() if p.matches(tup))
        for predicate in self._unindexed.get(relation, {}).values():
            if predicate.matches(tup):
                results.append(predicate)
        return results

    def __len__(self) -> int:
        return len(self._relation_of)
