"""Static segment tree for stabbing queries.

"Data structures for indexing intervals in a static environment where
all intervals are known in advance include segment trees and interval
trees ... they do not allow dynamic insertion and deletion of
predicates."  — paper, Section 4.1.

The segment tree is built once over the *elementary intervals* induced
by the endpoint set: for sorted endpoints ``v1 < v2 < ... < vm`` the
elementary intervals are::

    (-inf, v1), [v1, v1], (v1, v2), [v2, v2], ..., [vm, vm], (vm, +inf)

Each input interval decomposes into O(log m) canonical nodes; a
stabbing query descends to the elementary interval containing the query
value, collecting the canonical sets on the path.  Because elementary
intervals separate each endpoint *point* from the open gaps around it,
open/closed/unbounded semantics are all answered exactly.

``insert``/``delete`` raise :class:`~repro.errors.TreeError` —
faithfully modelling the property that motivated the IBS-tree.  The
ABL1 ablation charges this structure its full rebuild cost on every
modification.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.intervals import MINUS_INF, PLUS_INF, Interval, is_infinite
from ..errors import TreeError
from .base import IntervalIndex

__all__ = ["SegmentTree"]


class _SegmentNode:
    __slots__ = ("lo", "hi", "left", "right", "canon")

    def __init__(self, lo: int, hi: int):
        # Elementary-slot range [lo, hi] (inclusive indices).
        self.lo = lo
        self.hi = hi
        self.left: Optional["_SegmentNode"] = None
        self.right: Optional["_SegmentNode"] = None
        self.canon: Set[Hashable] = set()


class SegmentTree(IntervalIndex):
    """A classic segment tree built from a fixed interval collection."""

    name = "segment"
    supports_dynamic_insert = False
    supports_dynamic_delete = False

    def __init__(self, intervals: Iterable[Tuple[Interval, Hashable]] = ()):
        self._intervals: Dict[Hashable, Interval] = {}
        for interval, ident in intervals:
            if ident in self._intervals:
                raise TreeError(f"duplicate interval ident {ident!r}")
            self._intervals[ident] = interval
        self._build()

    @classmethod
    def from_index(cls, items: Iterable[Tuple[Hashable, Interval]]) -> "SegmentTree":
        """Build from ``(ident, interval)`` pairs (e.g. ``tree.items()``)."""
        return cls((interval, ident) for ident, interval in items)

    # -- construction ----------------------------------------------------

    def _build(self) -> None:
        endpoints: List[Any] = sorted(
            {
                value
                for interval in self._intervals.values()
                for value in (interval.low, interval.high)
                if not is_infinite(value)
            }
        )
        self._endpoints = endpoints
        # Elementary slots: even index 2k = open gap before endpoint k,
        # odd index 2k+1 = the endpoint point itself; final even slot is
        # the open gap above the last endpoint.
        slot_count = 2 * len(endpoints) + 1
        self._root = self._build_node(0, slot_count - 1)
        for ident, interval in self._intervals.items():
            lo_slot, hi_slot = self._slot_range(interval)
            if lo_slot <= hi_slot:
                self._insert_canonical(self._root, lo_slot, hi_slot, ident)

    def _build_node(self, lo: int, hi: int) -> _SegmentNode:
        node = _SegmentNode(lo, hi)
        if lo < hi:
            mid = (lo + hi) // 2
            node.left = self._build_node(lo, mid)
            node.right = self._build_node(mid + 1, hi)
        return node

    def _slot_range(self, interval: Interval) -> Tuple[int, int]:
        """The inclusive range of elementary slots the interval covers."""
        import bisect

        if is_infinite(interval.low):
            lo_slot = 0
        else:
            k = bisect.bisect_left(self._endpoints, interval.low)
            lo_slot = 2 * k + 1 if interval.low_inclusive else 2 * k + 2
        if is_infinite(interval.high):
            hi_slot = 2 * len(self._endpoints)
        else:
            k = bisect.bisect_left(self._endpoints, interval.high)
            hi_slot = 2 * k + 1 if interval.high_inclusive else 2 * k
        return lo_slot, hi_slot

    def _insert_canonical(
        self, node: _SegmentNode, lo: int, hi: int, ident: Hashable
    ) -> None:
        if lo <= node.lo and node.hi <= hi:
            node.canon.add(ident)
            return
        mid = (node.lo + node.hi) // 2
        if lo <= mid:
            self._insert_canonical(node.left, lo, min(hi, mid), ident)
        if hi > mid:
            self._insert_canonical(node.right, max(lo, mid + 1), hi, ident)

    # -- queries -------------------------------------------------------------

    def stab(self, x: Any) -> Set[Hashable]:
        slot = self._slot_of(x)
        result: Set[Hashable] = set()
        node: Optional[_SegmentNode] = self._root
        while node is not None:
            result |= node.canon
            if node.lo == node.hi:
                break
            mid = (node.lo + node.hi) // 2
            node = node.left if slot <= mid else node.right
        return result

    def _slot_of(self, x: Any) -> int:
        import bisect

        k = bisect.bisect_left(self._endpoints, x)
        if k < len(self._endpoints) and self._endpoints[k] == x:
            return 2 * k + 1  # the endpoint's own point slot
        return 2 * k  # the open gap below endpoint k

    # -- static-structure behaviour --------------------------------------------

    def insert(self, interval: Interval, ident: Optional[Hashable] = None) -> Hashable:
        raise TreeError(
            "segment trees are static: rebuild with the full interval set "
            "(use SegmentTree(intervals) or rebuilt_with())"
        )

    def delete(self, ident: Hashable) -> None:
        raise TreeError(
            "segment trees are static: rebuild with the reduced interval set "
            "(use rebuilt_without())"
        )

    def rebuilt_with(self, interval: Interval, ident: Hashable) -> "SegmentTree":
        """A new tree containing this tree's intervals plus one more."""
        items = list(self._intervals.items()) + [(ident, interval)]
        return SegmentTree((iv, i) for i, iv in items)

    def rebuilt_without(self, ident: Hashable) -> "SegmentTree":
        """A new tree containing this tree's intervals minus one."""
        if ident not in self._intervals:
            raise TreeError(f"unknown interval ident {ident!r}")
        return SegmentTree(
            (iv, i) for i, iv in self._intervals.items() if i != ident
        )

    def __len__(self) -> int:
        return len(self._intervals)

    @property
    def canonical_set_total(self) -> int:
        """Total canonical-set entries (the O(N log N) space figure)."""

        def count(node: Optional[_SegmentNode]) -> int:
            if node is None:
                return 0
            return len(node.canon) + count(node.left) + count(node.right)

        return count(self._root)
