"""Baseline 2.1: plain sequential search, plus a list-based interval index.

"The system traverses a list of predicates sequentially, testing each
against the tuple.  This has low overhead and works well for small
numbers of predicates, but clearly performs badly when the number of
predicates is large."  — paper, Section 2.1.

Note the deliberate absence of any per-relation partitioning: every
registered predicate is tested against every tuple (the relation name
check is just the first conjunct of the test).  The per-relation
variant is baseline 2.2 (:mod:`repro.baselines.hash_sequential`).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Hashable, List, Mapping, Optional, Set

from ..core.intervals import Interval
from ..errors import DuplicateIntervalError, PredicateError, UnknownIntervalError
from ..predicates.predicate import Predicate
from .base import IntervalIndex, PredicateMatcher

__all__ = ["SequentialMatcher", "IntervalList"]


class SequentialMatcher(PredicateMatcher):
    """One flat list of predicates; every match call scans all of it."""

    name = "sequential"

    def __init__(self) -> None:
        self._predicates: Dict[Hashable, Predicate] = {}

    def add(self, predicate: Predicate) -> Hashable:
        if predicate.ident in self._predicates:
            raise PredicateError(f"predicate ident {predicate.ident!r} already registered")
        self._predicates[predicate.ident] = predicate
        return predicate.ident

    def remove(self, ident: Hashable) -> Predicate:
        try:
            return self._predicates.pop(ident)
        except KeyError:
            raise UnknownIntervalError(ident) from None

    def match(self, relation: str, tup: Mapping[str, Any]) -> List[Predicate]:
        return [
            pred
            for pred in self._predicates.values()
            if pred.relation == relation and pred.matches(tup)
        ]

    def __len__(self) -> int:
        return len(self._predicates)


class IntervalList(IntervalIndex):
    """The trivial interval index: a list scanned on every stab.

    This is the tree-level analogue of sequential search, used as the
    comparison curve in the paper's Figure 9 ("the cost of finding the
    predicates that match a value by traversing a linked list of
    predicates and testing each one against the value").
    """

    name = "list"

    def __init__(self) -> None:
        self._intervals: Dict[Hashable, Interval] = {}
        self._counter = itertools.count()

    def insert(self, interval: Interval, ident: Optional[Hashable] = None) -> Hashable:
        if ident is None:
            ident = next(self._counter)
            while ident in self._intervals:
                ident = next(self._counter)
        if ident in self._intervals:
            raise DuplicateIntervalError(ident)
        self._intervals[ident] = interval
        return ident

    def delete(self, ident: Hashable) -> None:
        try:
            del self._intervals[ident]
        except KeyError:
            raise UnknownIntervalError(ident) from None

    def stab(self, x: Any) -> Set[Hashable]:
        return {
            ident
            for ident, interval in self._intervals.items()
            if interval.contains(x)
        }

    def __len__(self) -> int:
        return len(self._intervals)
