"""Plain-text reporting for benchmark results.

The harness prints each experiment as an ASCII table shaped like the
corresponding paper figure: one row per x-axis value, one column per
series — so "Figure 8" prints as search-time columns for a = 0, 0.5, 1
against rows of N, directly comparable with the paper's plot.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_series", "print_experiment"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render rows as an aligned ASCII table."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header = "  ".join(h.rjust(widths[k]) for k, h in enumerate(headers))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[k]) for k, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    note: Optional[str] = None,
) -> str:
    """A titled table with an optional footnote."""
    parts = [f"== {title} ==", format_table(headers, rows)]
    if note:
        parts.append(note)
    return "\n".join(parts) + "\n"


def print_experiment(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    note: Optional[str] = None,
) -> None:
    """Print a titled experiment table to stdout."""
    print(format_series(title, headers, rows, note))
