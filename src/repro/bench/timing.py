"""Small timing helpers shared by the benchmark harness.

The paper reports *average* per-operation times (total time divided by
operation count); these helpers reproduce that methodology with
``time.perf_counter`` and best-of-k repetition to damp scheduler noise.
"""

from __future__ import annotations

import gc
import time
from typing import Any, Callable, List, Tuple

__all__ = ["time_total", "time_per_op", "best_of"]


def time_total(fn: Callable[[], Any]) -> float:
    """Wall-clock seconds for one call of *fn* (GC disabled around it)."""
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start
    finally:
        if was_enabled:
            gc.enable()


def time_per_op(fn: Callable[[], Any], operations: int) -> float:
    """Average seconds per operation for one call performing *operations*."""
    if operations <= 0:
        raise ValueError("operations must be positive")
    return time_total(fn) / operations


def best_of(fn: Callable[[], float], repeats: int = 3) -> float:
    """Minimum of *repeats* calls of a timing function (noise floor)."""
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    return min(fn() for _ in range(repeats))
