"""Plain-text charts for the figure benchmarks.

The paper presents its evaluation as line plots (Figures 7–9).  The
tables in :mod:`repro.bench.reporting` carry the numbers; this module
adds an ASCII rendering of the same series so the *shape* — the
logarithmic flattening, the sequential-search wedge — is visible
directly in terminal output.

::

    FIG9 (us/query)
    10.76 |                                              s
          |                                        s
          |                             s    s
          |                  s    s
     5.54 |        s    s
          |   s
          |
     0.32 |   i    i    i    i    i    i    i    i    i
          +-----------------------------------------------
            5    10   15   20   25   30   35   40
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ascii_chart"]

#: series glyphs, assigned in declaration order
GLYPHS = "iabsxo*+#@"


def ascii_chart(
    series: Dict[str, List[Tuple[float, float]]],
    width: int = 60,
    height: int = 12,
    title: Optional[str] = None,
) -> str:
    """Render named ``(x, y)`` series as a fixed-size ASCII plot.

    Points falling in the same character cell keep the glyph of the
    first series plotted there (series order = legend order).  Returns
    the multi-line chart string; empty input yields a note instead.
    """
    points = [(x, y) for values in series.values() for x, y in values]
    if not points:
        return "(no data to chart)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    glyphs = _assign_glyphs(list(series))
    for (label, values), glyph in zip(series.items(), glyphs):
        for x, y in values:
            column = round((x - x_low) / x_span * (width - 1))
            row = height - 1 - round((y - y_low) / y_span * (height - 1))
            if grid[row][column] == " ":
                grid[row][column] = glyph

    label_width = max(len(_fmt(y_high)), len(_fmt(y_low)))
    lines: List[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = _fmt(y_high).rjust(label_width)
        elif row_index == height - 1:
            label = _fmt(y_low).rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = (
        " " * label_width
        + "  "
        + _fmt(x_low)
        + _fmt(x_high).rjust(width - len(_fmt(x_low)) - 1)
    )
    lines.append(x_axis)
    legend = "   ".join(
        f"{glyph}={label}" for (label, _), glyph in zip(series.items(), glyphs)
    )
    lines.append(" " * label_width + "   " + legend)
    return "\n".join(lines)


def _assign_glyphs(labels: Sequence[str]) -> List[str]:
    """Prefer each label's first letter; fall back to the glyph pool."""
    assigned: List[str] = []
    for label in labels:
        first = next((ch for ch in label if ch.isalnum()), "")
        if first and first not in assigned:
            assigned.append(first)
            continue
        fallback = next(g for g in GLYPHS + "?%&" if g not in assigned)
        assigned.append(fallback)
    return assigned


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    if abs(value) >= 100:
        return f"{value:.0f}"
    return f"{value:.2f}"
