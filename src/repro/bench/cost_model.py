"""The closed-form cost model of the paper's Section 5.2.

The paper estimates the CPU time to find all predicates matching one
tuple under the Figure 1 scheme::

    cost = hash cost
         + (number of attributes searched) * (IBS-tree search cost)
         + (non-indexable predicate test cost)

with a residual pass testing each partially matched predicate in full.
Plugging in the paper's assumptions (SPARCstation 1 constants)::

    hash search cost              = 0.1  msec
    IBS search cost per attribute = 0.13 msec   (tree of ~40 predicates)
    sequential clause test        = 0.02 msec
    full predicate test           = 0.05 msec
    attributes per relation       = 15, one third carrying clauses -> 5 searched
    predicates per relation (N)   = 200, 90 % indexable
    clause selectivity            = 0.1  -> 20 residual tests

    index probe  = 0.1 + 5 * 0.13 + (1 - 0.9) * 0.02 * 200 = 1.15 msec
    residual     = 0.1 * 200 * 0.05                        = 1.0  msec
    total        =                                          ~2.1  msec

(The paper prints the probe as "1.1 msec" and the total as "2.1 msec";
the 0.05 msec difference is rounding in the paper's arithmetic.)

:func:`calibrate` re-derives the four machine constants on *this*
machine by direct measurement, so the same formula yields a prediction
comparable against the measured end-to-end matcher (the COST
experiment in EXPERIMENTS.md).
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, Mapping, Optional, Sequence, Tuple

from ..match.registry import DEFAULT_REGISTRY
from ..workloads.generator import IntervalWorkload, ScenarioConfig, ScenarioWorkload

__all__ = [
    "CostParameters",
    "CostBreakdown",
    "predicate_match_cost",
    "calibrate",
    "BackendCostModel",
    "BackendCostTable",
    "calibrate_backends",
    "default_backend_cost_table",
    "MIN_MEASURED_MS",
    "DEFAULT_CALIBRATION_BACKENDS",
]

#: Floor for every measured or fitted cost constant, in milliseconds.
#: Timer quantisation (or an injected fake timer in tests) can report a
#: loop as taking zero time; a zero constant would make a backend look
#: free and poison every downstream ratio, so all measurements clamp
#: here instead.
MIN_MEASURED_MS = 1e-7


@dataclass(frozen=True)
class CostParameters:
    """Inputs to the Section 5.2 cost formula (paper defaults)."""

    #: per-operation CPU costs, in milliseconds
    hash_cost_ms: float = 0.1
    ibs_search_cost_ms: float = 0.13
    sequential_test_cost_ms: float = 0.02
    full_test_cost_ms: float = 0.05
    #: scenario shape
    attributes_per_relation: int = 15
    predicate_attr_fraction: float = 1.0 / 3.0
    predicates_per_relation: int = 200
    indexable_fraction: float = 0.9
    clause_selectivity: float = 0.1

    @property
    def attributes_searched(self) -> int:
        """Attribute trees probed per tuple (paper: 15 / 3 = 5)."""
        return max(
            1,
            round(self.attributes_per_relation * self.predicate_attr_fraction),
        )

    @property
    def non_indexable_count(self) -> float:
        """Predicates tested by brute force per tuple (paper: 20)."""
        return (1.0 - self.indexable_fraction) * self.predicates_per_relation

    @property
    def residual_tests(self) -> float:
        """Partial matches requiring a full test (paper: 0.1 * 200 = 20)."""
        return self.clause_selectivity * self.predicates_per_relation


@dataclass(frozen=True)
class CostBreakdown:
    """Per-component costs (milliseconds) of matching one tuple."""

    hash_ms: float
    tree_search_ms: float
    non_indexable_ms: float
    residual_ms: float

    @property
    def index_probe_ms(self) -> float:
        """Cost of finding the partial matches (paper: ~1.1 msec)."""
        return self.hash_ms + self.tree_search_ms + self.non_indexable_ms

    @property
    def total_ms(self) -> float:
        """Total per-tuple matching cost (paper: ~2.1 msec)."""
        return self.index_probe_ms + self.residual_ms

    def as_dict(self) -> Dict[str, float]:
        return {
            "hash_ms": self.hash_ms,
            "tree_search_ms": self.tree_search_ms,
            "non_indexable_ms": self.non_indexable_ms,
            "index_probe_ms": self.index_probe_ms,
            "residual_ms": self.residual_ms,
            "total_ms": self.total_ms,
        }


def predicate_match_cost(params: Optional[CostParameters] = None) -> CostBreakdown:
    """Evaluate the Section 5.2 formula for the given parameters."""
    p = params or CostParameters()
    return CostBreakdown(
        hash_ms=p.hash_cost_ms,
        tree_search_ms=p.attributes_searched * p.ibs_search_cost_ms,
        non_indexable_ms=p.non_indexable_count * p.sequential_test_cost_ms,
        residual_ms=p.residual_tests * p.full_test_cost_ms,
    )


def calibrate(
    seed: int = 42,
    samples: int = 2_000,
    params: Optional[CostParameters] = None,
    timer: Callable[[], float] = time.perf_counter,
) -> CostParameters:
    """Measure this machine's constants for the four cost components.

    * hash cost — a dict probe on the relation name (amortised over a
      loop, as is the IBS search);
    * IBS search cost — stabbing a tree of ``N / attributes_searched``
      predicates, per the paper's "200/5 = 40 predicates per attribute";
    * sequential clause test — one interval containment check;
    * full predicate test — a two-clause conjunction evaluated against
      a tuple dict.

    Returns a :class:`CostParameters` with measured constants and the
    scenario shape copied from *params*.  Every constant is clamped to
    :data:`MIN_MEASURED_MS` so timer quantisation can never report a
    free operation.  *timer* is injectable so tests can calibrate
    deterministically.
    """
    p = params or CostParameters()
    rng = random.Random(seed)
    workload = ScenarioWorkload(
        ScenarioConfig(
            attributes_per_relation=p.attributes_per_relation,
            predicate_attr_fraction=p.predicate_attr_fraction,
            predicates_per_relation=p.predicates_per_relation,
            indexable_fraction=1.0,
            clause_selectivity=p.clause_selectivity,
            seed=seed,
        )
    )
    predicates = workload.predicates()["r0"]
    per_tree = max(1, p.predicates_per_relation // p.attributes_searched)

    # hash probe
    table = {f"r{k}": k for k in range(64)}
    start = timer()
    for _ in range(samples):
        table.get("r0")
    hash_ms = (timer() - start) / samples * 1e3

    # IBS search over a per-attribute-sized tree
    tree = DEFAULT_REGISTRY.tree_factory("ibs")()
    for k, predicate in enumerate(predicates[:per_tree]):
        clause = predicate.indexable_clauses()[0]
        tree.insert(clause.interval, k)
    queries = [rng.randint(1, 10_000) for _ in range(samples)]
    start = timer()
    for q in queries:
        tree.stab(q)
    ibs_ms = (timer() - start) / samples * 1e3

    # single-clause sequential test
    clause = predicates[0].indexable_clauses()[0]
    tup = workload.tuple()
    start = timer()
    for _ in range(samples):
        clause.matches(tup)
    seq_ms = (timer() - start) / samples * 1e3

    # full predicate test
    predicate = predicates[0]
    start = timer()
    for _ in range(samples):
        predicate.matches(tup)
    full_ms = (timer() - start) / samples * 1e3

    return replace(
        p,
        hash_cost_ms=max(hash_ms, MIN_MEASURED_MS),
        ibs_search_cost_ms=max(ibs_ms, MIN_MEASURED_MS),
        sequential_test_cost_ms=max(seq_ms, MIN_MEASURED_MS),
        full_test_cost_ms=max(full_ms, MIN_MEASURED_MS),
    )


def measured_match_cost_ms(seed: int = 42, tuples: int = 500) -> float:
    """Directly measure the full Figure 1 matcher on the paper scenario.

    Builds the Section 5.2 scenario (200 predicates, 15 attributes, 90 %
    indexable) and times :meth:`PredicateIndex.match` per tuple, in
    milliseconds — the observable the cost model predicts.
    """
    workload = ScenarioWorkload(ScenarioConfig(seed=seed))
    index = DEFAULT_REGISTRY.create_matcher("ibs")
    for predicate in workload.predicates()["r0"]:
        index.add(predicate)
    batch = workload.tuples(tuples)
    start = time.perf_counter()
    for tup in batch:
        index.match("r0", tup)
    return (time.perf_counter() - start) / tuples * 1e3


# ----------------------------------------------------------------------
# per-backend cost models (the auto-selector's pricing input)
# ----------------------------------------------------------------------
#
# Section 5.2 prices *one* tree shape; the auto-selector
# (repro.match.autoselect) needs a price per registered backend so it
# can compare "this attribute's observed stab/insert mix on backend X"
# against backend Y.  Each backend gets a two-coefficient model per
# operation, cost(n) = base + log_coef * log2(n), fitted from direct
# micro-probes at two tree sizes.  The log2 form matches the balanced
# backends exactly and is an acceptable secant approximation for the
# O(n) baselines over the fitted size range — the selector compares
# backends at the *same* n, so only relative order matters.

#: Backends calibrated by default: the four IBS-tree variants plus the
#: Figure 9 sequential baseline.  The selector migrates only between
#: enumerable backends, but the baseline row anchors "how bad is the
#: worst reasonable default" in reports.
DEFAULT_CALIBRATION_BACKENDS: Tuple[str, ...] = (
    "ibs",
    "avl",
    "rb",
    "flat",
    "interval-list",
)


@dataclass(frozen=True)
class BackendCostModel:
    """Fitted ``base + log_coef * log2(n)`` costs for one backend."""

    backend: str
    stab_base_ms: float
    stab_log_ms: float
    insert_base_ms: float
    insert_log_ms: float

    def stab_ms(self, n: int) -> float:
        """Predicted cost of one stab against a tree of *n* intervals."""
        return max(
            self.stab_base_ms + self.stab_log_ms * math.log2(max(n, 2)),
            MIN_MEASURED_MS,
        )

    def insert_ms(self, n: int) -> float:
        """Predicted cost of one insert into a tree of *n* intervals."""
        return max(
            self.insert_base_ms + self.insert_log_ms * math.log2(max(n, 2)),
            MIN_MEASURED_MS,
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "stab_base_ms": self.stab_base_ms,
            "stab_log_ms": self.stab_log_ms,
            "insert_base_ms": self.insert_base_ms,
            "insert_log_ms": self.insert_log_ms,
        }


class BackendCostTable:
    """Calibrated :class:`BackendCostModel` per backend name."""

    __slots__ = ("_models",)

    def __init__(self, models: Mapping[str, BackendCostModel]) -> None:
        self._models = dict(models)

    def backends(self) -> Tuple[str, ...]:
        return tuple(self._models)

    def __contains__(self, backend: str) -> bool:
        return backend in self._models

    def model(self, backend: str) -> BackendCostModel:
        return self._models[backend]

    def stab_ms(self, backend: str, n: int) -> float:
        return self._models[backend].stab_ms(n)

    def insert_ms(self, backend: str, n: int) -> float:
        return self._models[backend].insert_ms(n)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {name: model.as_dict() for name, model in self._models.items()}


def _fit_log_curve(
    cost_small: float, cost_big: float, n_small: int, n_big: int
) -> Tuple[float, float]:
    """Secant fit of ``base + log_coef * log2(n)`` through two probes.

    The slope is clamped at zero (a backend cannot get cheaper as the
    tree grows; a negative secant is measurement noise) and the base at
    :data:`MIN_MEASURED_MS`, which together guarantee the fitted curve
    is monotone non-decreasing and strictly positive.
    """
    span = math.log2(n_big) - math.log2(n_small)
    slope = max(0.0, (cost_big - cost_small) / span) if span > 0 else 0.0
    base = max(cost_small - slope * math.log2(n_small), MIN_MEASURED_MS)
    return base, slope


def calibrate_backends(
    backends: Iterable[str] = DEFAULT_CALIBRATION_BACKENDS,
    seed: int = 42,
    samples: int = 400,
    sizes: Sequence[int] = (64, 512),
    registry: Optional[object] = None,
    timer: Callable[[], float] = time.perf_counter,
) -> BackendCostTable:
    """Micro-probe each backend and fit its stab/insert cost curves.

    For every backend and every tree size in *sizes* (ascending, at
    least two), a tree is built over a seeded interval workload —
    ``bulk_load`` when the backend has one, incremental inserts
    otherwise, matching how the auto-selector migrates — then *samples*
    stabs and a batch of inserts are timed and amortised.  The two
    sizes' measurements are fitted into a
    ``base + log_coef * log2(n)`` model per operation (see
    :func:`_fit_log_curve` for the monotonicity and positivity
    guarantees).

    *timer* is injectable so unit tests can drive the fit with a fake
    clock; *registry* defaults to the process-wide
    ``DEFAULT_REGISTRY``.
    """
    from ..match.registry import DEFAULT_REGISTRY as _default

    reg = registry if registry is not None else _default
    sizes = sorted(sizes)
    if len(sizes) < 2:
        raise ValueError("calibrate_backends needs at least two tree sizes")
    n_small, n_big = sizes[0], sizes[-1]
    models: Dict[str, BackendCostModel] = {}
    for backend in backends:
        factory = reg.tree_factory(backend)  # type: ignore[attr-defined]
        per_size: Dict[int, Tuple[float, float]] = {}
        for size in (n_small, n_big):
            workload = IntervalWorkload(seed=seed * 1_000_003 + size)
            pairs = [
                (interval, k)
                for k, interval in enumerate(workload.intervals(size))
            ]
            tree = factory()
            loader = getattr(tree, "bulk_load", None)
            if loader is not None:
                loader(pairs)
            else:
                for interval, ident in pairs:
                    tree.insert(interval, ident)
            points = workload.query_points(samples)
            start = timer()
            for point in points:
                tree.stab(point)
            stab_ms = max(
                (timer() - start) / max(samples, 1) * 1e3, MIN_MEASURED_MS
            )
            extra = workload.intervals(max(16, size // 8))
            start = timer()
            for offset, interval in enumerate(extra):
                tree.insert(interval, size + offset)
            insert_ms = max(
                (timer() - start) / len(extra) * 1e3, MIN_MEASURED_MS
            )
            per_size[size] = (stab_ms, insert_ms)
        stab_base, stab_log = _fit_log_curve(
            per_size[n_small][0], per_size[n_big][0], n_small, n_big
        )
        insert_base, insert_log = _fit_log_curve(
            per_size[n_small][1], per_size[n_big][1], n_small, n_big
        )
        models[backend] = BackendCostModel(
            backend=backend,
            stab_base_ms=stab_base,
            stab_log_ms=stab_log,
            insert_base_ms=insert_base,
            insert_log_ms=insert_log,
        )
    return BackendCostTable(models)


_DEFAULT_TABLE: Optional[BackendCostTable] = None


def default_backend_cost_table() -> BackendCostTable:
    """The process-wide calibrated table, measured once and cached.

    Auto-selecting facades call this lazily on their first tuning pass
    unless the caller injected a table, so the (tens of milliseconds)
    calibration cost is paid at most once per process.
    """
    global _DEFAULT_TABLE
    if _DEFAULT_TABLE is None:
        _DEFAULT_TABLE = calibrate_backends()
    return _DEFAULT_TABLE
