"""The closed-form cost model of the paper's Section 5.2.

The paper estimates the CPU time to find all predicates matching one
tuple under the Figure 1 scheme::

    cost = hash cost
         + (number of attributes searched) * (IBS-tree search cost)
         + (non-indexable predicate test cost)

with a residual pass testing each partially matched predicate in full.
Plugging in the paper's assumptions (SPARCstation 1 constants)::

    hash search cost              = 0.1  msec
    IBS search cost per attribute = 0.13 msec   (tree of ~40 predicates)
    sequential clause test        = 0.02 msec
    full predicate test           = 0.05 msec
    attributes per relation       = 15, one third carrying clauses -> 5 searched
    predicates per relation (N)   = 200, 90 % indexable
    clause selectivity            = 0.1  -> 20 residual tests

    index probe  = 0.1 + 5 * 0.13 + (1 - 0.9) * 0.02 * 200 = 1.15 msec
    residual     = 0.1 * 200 * 0.05                        = 1.0  msec
    total        =                                          ~2.1  msec

(The paper prints the probe as "1.1 msec" and the total as "2.1 msec";
the 0.05 msec difference is rounding in the paper's arithmetic.)

:func:`calibrate` re-derives the four machine constants on *this*
machine by direct measurement, so the same formula yields a prediction
comparable against the measured end-to-end matcher (the COST
experiment in EXPERIMENTS.md).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, replace
from typing import Dict, Optional

from ..match.registry import DEFAULT_REGISTRY
from ..workloads.generator import ScenarioConfig, ScenarioWorkload

__all__ = ["CostParameters", "CostBreakdown", "predicate_match_cost", "calibrate"]


@dataclass(frozen=True)
class CostParameters:
    """Inputs to the Section 5.2 cost formula (paper defaults)."""

    #: per-operation CPU costs, in milliseconds
    hash_cost_ms: float = 0.1
    ibs_search_cost_ms: float = 0.13
    sequential_test_cost_ms: float = 0.02
    full_test_cost_ms: float = 0.05
    #: scenario shape
    attributes_per_relation: int = 15
    predicate_attr_fraction: float = 1.0 / 3.0
    predicates_per_relation: int = 200
    indexable_fraction: float = 0.9
    clause_selectivity: float = 0.1

    @property
    def attributes_searched(self) -> int:
        """Attribute trees probed per tuple (paper: 15 / 3 = 5)."""
        return max(
            1,
            round(self.attributes_per_relation * self.predicate_attr_fraction),
        )

    @property
    def non_indexable_count(self) -> float:
        """Predicates tested by brute force per tuple (paper: 20)."""
        return (1.0 - self.indexable_fraction) * self.predicates_per_relation

    @property
    def residual_tests(self) -> float:
        """Partial matches requiring a full test (paper: 0.1 * 200 = 20)."""
        return self.clause_selectivity * self.predicates_per_relation


@dataclass(frozen=True)
class CostBreakdown:
    """Per-component costs (milliseconds) of matching one tuple."""

    hash_ms: float
    tree_search_ms: float
    non_indexable_ms: float
    residual_ms: float

    @property
    def index_probe_ms(self) -> float:
        """Cost of finding the partial matches (paper: ~1.1 msec)."""
        return self.hash_ms + self.tree_search_ms + self.non_indexable_ms

    @property
    def total_ms(self) -> float:
        """Total per-tuple matching cost (paper: ~2.1 msec)."""
        return self.index_probe_ms + self.residual_ms

    def as_dict(self) -> Dict[str, float]:
        return {
            "hash_ms": self.hash_ms,
            "tree_search_ms": self.tree_search_ms,
            "non_indexable_ms": self.non_indexable_ms,
            "index_probe_ms": self.index_probe_ms,
            "residual_ms": self.residual_ms,
            "total_ms": self.total_ms,
        }


def predicate_match_cost(params: Optional[CostParameters] = None) -> CostBreakdown:
    """Evaluate the Section 5.2 formula for the given parameters."""
    p = params or CostParameters()
    return CostBreakdown(
        hash_ms=p.hash_cost_ms,
        tree_search_ms=p.attributes_searched * p.ibs_search_cost_ms,
        non_indexable_ms=p.non_indexable_count * p.sequential_test_cost_ms,
        residual_ms=p.residual_tests * p.full_test_cost_ms,
    )


def calibrate(
    seed: int = 42, samples: int = 2_000, params: Optional[CostParameters] = None
) -> CostParameters:
    """Measure this machine's constants for the four cost components.

    * hash cost — a dict probe on the relation name (amortised over a
      loop, as is the IBS search);
    * IBS search cost — stabbing a tree of ``N / attributes_searched``
      predicates, per the paper's "200/5 = 40 predicates per attribute";
    * sequential clause test — one interval containment check;
    * full predicate test — a two-clause conjunction evaluated against
      a tuple dict.

    Returns a :class:`CostParameters` with measured constants and the
    scenario shape copied from *params*.
    """
    p = params or CostParameters()
    rng = random.Random(seed)
    workload = ScenarioWorkload(
        ScenarioConfig(
            attributes_per_relation=p.attributes_per_relation,
            predicate_attr_fraction=p.predicate_attr_fraction,
            predicates_per_relation=p.predicates_per_relation,
            indexable_fraction=1.0,
            clause_selectivity=p.clause_selectivity,
            seed=seed,
        )
    )
    predicates = workload.predicates()["r0"]
    per_tree = max(1, p.predicates_per_relation // p.attributes_searched)

    # hash probe
    table = {f"r{k}": k for k in range(64)}
    start = time.perf_counter()
    for _ in range(samples):
        table.get("r0")
    hash_ms = (time.perf_counter() - start) / samples * 1e3

    # IBS search over a per-attribute-sized tree
    tree = DEFAULT_REGISTRY.tree_factory("ibs")()
    for k, predicate in enumerate(predicates[:per_tree]):
        clause = predicate.indexable_clauses()[0]
        tree.insert(clause.interval, k)
    queries = [rng.randint(1, 10_000) for _ in range(samples)]
    start = time.perf_counter()
    for q in queries:
        tree.stab(q)
    ibs_ms = (time.perf_counter() - start) / samples * 1e3

    # single-clause sequential test
    clause = predicates[0].indexable_clauses()[0]
    tup = workload.tuple()
    start = time.perf_counter()
    for _ in range(samples):
        clause.matches(tup)
    seq_ms = (time.perf_counter() - start) / samples * 1e3

    # full predicate test
    predicate = predicates[0]
    start = time.perf_counter()
    for _ in range(samples):
        predicate.matches(tup)
    full_ms = (time.perf_counter() - start) / samples * 1e3

    return replace(
        p,
        hash_cost_ms=hash_ms,
        ibs_search_cost_ms=ibs_ms,
        sequential_test_cost_ms=seq_ms,
        full_test_cost_ms=full_ms,
    )


def measured_match_cost_ms(seed: int = 42, tuples: int = 500) -> float:
    """Directly measure the full Figure 1 matcher on the paper scenario.

    Builds the Section 5.2 scenario (200 predicates, 15 attributes, 90 %
    indexable) and times :meth:`PredicateIndex.match` per tuple, in
    milliseconds — the observable the cost model predicts.
    """
    workload = ScenarioWorkload(ScenarioConfig(seed=seed))
    index = DEFAULT_REGISTRY.create_matcher("ibs")
    for predicate in workload.predicates()["r0"]:
        index.add(predicate)
    batch = workload.tuples(tuples)
    start = time.perf_counter()
    for tup in batch:
        index.match("r0", tup)
    return (time.perf_counter() - start) / tuples * 1e3
