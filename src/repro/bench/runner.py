"""Experiment harness: one runner per paper figure / analysis.

Each ``run_*`` function returns plain row dicts (so tests can assert on
shapes) and has a matching ``print_*`` that renders the paper-style
table.  ``python -m repro.bench.runner`` runs everything.

Experiment ids (see DESIGN.md / EXPERIMENTS.md):

======  ==========================================================
FIG7    average IBS-tree insertion time vs N, a in {0, 0.5, 1}
FIG8    average IBS-tree search time vs N, a in {0, 0.5, 1}
FIG9    IBS-tree vs sequential list, small N (the crossover plot)
COST    Section 5.2 cost model: paper constants, calibrated
        constants, and the directly measured matcher
SPACE   Section 5.1 marker counts: overlapping vs disjoint intervals
ABL1    dynamic interval index ablation (Section 6 future work)
ABL2    balanced vs unbalanced IBS-tree under sorted insertion
E2E     end-to-end matcher throughput vs number of predicates
CONC    mixed read/write: mutable index vs epoch-snapshot facade
======  ==========================================================
"""

from __future__ import annotations

import math
import os
import random
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.intervals import Interval
from ..core.predicate_index import PredicateIndex
from ..match.registry import DEFAULT_REGISTRY
from ..predicates.clauses import IntervalClause
from ..predicates.predicate import Predicate
from ..workloads.generator import IntervalWorkload, ScenarioConfig, ScenarioWorkload
from .cost_model import (
    CostParameters,
    calibrate,
    measured_match_cost_ms,
    predicate_match_cost,
)
from .reporting import print_experiment

__all__ = [
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_cost_model",
    "run_space",
    "run_ablation_indexes",
    "run_ablation_balancing",
    "run_ablation_selectivity",
    "run_ablation_multiclause",
    "run_e2e",
    "run_batch",
    "run_rebuild",
    "run_coldstart",
    "run_stab_cache",
    "run_concurrency",
    "run_autoselect",
    "run_maintenance",
    "main",
]

DEFAULT_NS = (100, 200, 300, 400, 500, 600, 700, 800, 900, 1000)
DEFAULT_FRACTIONS = (0.0, 0.5, 1.0)


# ----------------------------------------------------------------------
# FIG7 — insertion time
# ----------------------------------------------------------------------


def run_fig7(
    ns: Sequence[int] = DEFAULT_NS,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    seed: int = 7,
    tree_factory: Any = "ibs",
) -> List[Dict[str, Any]]:
    """Average insertion time (microseconds) per (N, a) cell.

    Methodology follows the paper: "the average insertion cost was
    measured as the time to insert N predicates in an initially empty
    index, divided by N", with the unbalanced tree and random order.
    *tree_factory* is a registered backend name or a factory callable.
    """
    tree_factory = DEFAULT_REGISTRY.resolve_tree_factory(tree_factory)
    rows: List[Dict[str, Any]] = []
    for n in ns:
        row: Dict[str, Any] = {"n": n}
        for a in fractions:
            workload = IntervalWorkload(point_fraction=a, seed=seed)
            intervals = workload.intervals(n)
            tree = tree_factory()
            start = time.perf_counter()
            for k, interval in enumerate(intervals):
                tree.insert(interval, k)
            elapsed = time.perf_counter() - start
            row[f"a={a:g}"] = elapsed / n * 1e6
        rows.append(row)
    return rows


def _chart_fractions(rows: List[Dict[str, Any]], unit: str) -> str:
    from .charts import ascii_chart

    series = {
        key: [(row["n"], row[key]) for row in rows]
        for key in rows[0]
        if key != "n"
    }
    return ascii_chart(series, title=f"({unit} vs N)")


def print_fig7(rows: Optional[List[Dict[str, Any]]] = None) -> List[Dict[str, Any]]:
    rows = rows if rows is not None else run_fig7()
    headers = ["N"] + [key for key in rows[0] if key != "n"]
    print_experiment(
        "FIG7: average IBS-tree insertion time (microseconds/op)",
        headers,
        [[row["n"]] + [row[h] for h in headers[1:]] for row in rows],
        note="paper Figure 7 (msec on a SPARCstation 1; shape: logarithmic growth)",
    )
    if len(rows) > 1:
        print(_chart_fractions(rows, "us/insert"))
        print()
    return rows


# ----------------------------------------------------------------------
# FIG8 — search time
# ----------------------------------------------------------------------


def run_fig8(
    ns: Sequence[int] = DEFAULT_NS,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    queries: int = 2_000,
    seed: int = 8,
    tree_factory: Any = "ibs",
) -> List[Dict[str, Any]]:
    """Average stabbing-query time (microseconds) per (N, a) cell.

    *tree_factory* is a registered backend name or a factory callable.
    """
    tree_factory = DEFAULT_REGISTRY.resolve_tree_factory(tree_factory)
    rows: List[Dict[str, Any]] = []
    for n in ns:
        row: Dict[str, Any] = {"n": n}
        for a in fractions:
            workload = IntervalWorkload(point_fraction=a, seed=seed)
            tree = tree_factory()
            for k, interval in enumerate(workload.intervals(n)):
                tree.insert(interval, k)
            points = workload.query_points(queries)
            start = time.perf_counter()
            for x in points:
                tree.stab(x)
            elapsed = time.perf_counter() - start
            row[f"a={a:g}"] = elapsed / queries * 1e6
        rows.append(row)
    return rows


def print_fig8(rows: Optional[List[Dict[str, Any]]] = None) -> List[Dict[str, Any]]:
    rows = rows if rows is not None else run_fig8()
    headers = ["N"] + [key for key in rows[0] if key != "n"]
    print_experiment(
        "FIG8: average IBS-tree search time (microseconds/query)",
        headers,
        [[row["n"]] + [row[h] for h in headers[1:]] for row in rows],
        note="paper Figure 8 (shape: logarithmic growth, small spread across a)",
    )
    if len(rows) > 1:
        print(_chart_fractions(rows, "us/query"))
        print()
    return rows


# ----------------------------------------------------------------------
# FIG9 — IBS-tree vs sequential list at small N
# ----------------------------------------------------------------------


def run_fig9(
    ns: Sequence[int] = (5, 10, 15, 20, 25, 30, 35, 40),
    point_fraction: float = 0.5,
    queries: int = 4_000,
    seed: int = 9,
) -> List[Dict[str, Any]]:
    """Per-query time (microseconds): IBS-tree vs linked-list scan.

    Paper Figure 9: "the cost curve for sequential search is always
    higher than for the IBS-tree, showing that the IBS-tree has quite
    low overhead."
    """
    rows: List[Dict[str, Any]] = []
    for n in ns:
        workload = IntervalWorkload(point_fraction=point_fraction, seed=seed)
        intervals = workload.intervals(n)
        tree = DEFAULT_REGISTRY.tree_factory("ibs")()
        linked = DEFAULT_REGISTRY.tree_factory("interval-list")()
        for k, interval in enumerate(intervals):
            tree.insert(interval, k)
            linked.insert(interval, k)
        points = workload.query_points(queries)
        start = time.perf_counter()
        for x in points:
            tree.stab(x)
        tree_us = (time.perf_counter() - start) / queries * 1e6
        start = time.perf_counter()
        for x in points:
            linked.stab(x)
        list_us = (time.perf_counter() - start) / queries * 1e6
        rows.append({"n": n, "ibs_us": tree_us, "sequential_us": list_us})
    return rows


def print_fig9(rows: Optional[List[Dict[str, Any]]] = None) -> List[Dict[str, Any]]:
    rows = rows if rows is not None else run_fig9()
    print_experiment(
        "FIG9: predicate test cost, IBS-tree vs sequential (microseconds/query)",
        ["N", "IBS-tree", "sequential"],
        [[row["n"], row["ibs_us"], row["sequential_us"]] for row in rows],
        note="paper Figure 9 (shape: sequential linear and above the IBS curve)",
    )
    if len(rows) > 1:
        from .charts import ascii_chart

        print(
            ascii_chart(
                {
                    "ibs": [(row["n"], row["ibs_us"]) for row in rows],
                    "sequential": [
                        (row["n"], row["sequential_us"]) for row in rows
                    ],
                },
                title="(us/query vs N)",
            )
        )
        print()
    return rows


# ----------------------------------------------------------------------
# COST — the Section 5.2 cost model
# ----------------------------------------------------------------------


def run_cost_model(seed: int = 42) -> Dict[str, Any]:
    """Paper-constant prediction, calibrated prediction, and measurement."""
    paper = predicate_match_cost(CostParameters())
    calibrated_params = calibrate(seed=seed)
    calibrated = predicate_match_cost(calibrated_params)
    measured = measured_match_cost_ms(seed=seed)
    return {
        "paper": paper,
        "calibrated_params": calibrated_params,
        "calibrated": calibrated,
        "measured_ms": measured,
    }


def print_cost_model(result: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    result = result if result is not None else run_cost_model()
    paper = result["paper"]
    calibrated = result["calibrated"]
    rows = [
        ["hash", paper.hash_ms, calibrated.hash_ms],
        ["tree searches", paper.tree_search_ms, calibrated.tree_search_ms],
        ["non-indexable", paper.non_indexable_ms, calibrated.non_indexable_ms],
        ["index probe", paper.index_probe_ms, calibrated.index_probe_ms],
        ["residual tests", paper.residual_ms, calibrated.residual_ms],
        ["total", paper.total_ms, calibrated.total_ms],
    ]
    print_experiment(
        "COST: Section 5.2 per-tuple matching cost (milliseconds)",
        ["component", "paper constants", "this machine"],
        rows,
        note=(
            f"paper total ~2.1 msec on a SPARCstation 1; "
            f"directly measured matcher here: {result['measured_ms']:.4f} msec/tuple"
        ),
    )
    return result


# ----------------------------------------------------------------------
# SPACE — Section 5.1 marker counts
# ----------------------------------------------------------------------


def run_space(
    ns: Sequence[int] = (100, 200, 400, 800, 1600),
    seed: int = 5,
) -> List[Dict[str, Any]]:
    """Marker counts: overlapping random intervals vs disjoint intervals.

    Section 5.1: each interval places O(log N) markers for an
    O(N log N) worst case, but "when intervals in the tree do not
    overlap, only O(N) markers are placed in the tree".
    """
    rows: List[Dict[str, Any]] = []
    ibs_factory = DEFAULT_REGISTRY.tree_factory("ibs")
    for n in ns:
        workload = IntervalWorkload(point_fraction=0.0, seed=seed)
        random_tree = ibs_factory()
        for k, interval in enumerate(workload.intervals(n)):
            random_tree.insert(interval, k)
        disjoint_tree = ibs_factory()
        for k, interval in enumerate(workload.disjoint_intervals(n)):
            disjoint_tree.insert(interval, k)
        rows.append(
            {
                "n": n,
                "overlapping_markers": random_tree.marker_count,
                "overlapping_per_interval": random_tree.marker_count / n,
                "disjoint_markers": disjoint_tree.marker_count,
                "disjoint_per_interval": disjoint_tree.marker_count / n,
                "log2_n": math.log2(n),
            }
        )
    return rows


def print_space(rows: Optional[List[Dict[str, Any]]] = None) -> List[Dict[str, Any]]:
    rows = rows if rows is not None else run_space()
    print_experiment(
        "SPACE: IBS-tree marker counts (Section 5.1 space analysis)",
        ["N", "overlap markers", "/interval", "disjoint markers", "/interval", "log2 N"],
        [
            [
                row["n"],
                row["overlapping_markers"],
                row["overlapping_per_interval"],
                row["disjoint_markers"],
                row["disjoint_per_interval"],
                row["log2_n"],
            ]
            for row in rows
        ],
        note="expected: overlapping ~ N log N (per-interval ~ log N); disjoint ~ N",
    )
    return rows


# ----------------------------------------------------------------------
# ABL1 — dynamic interval index ablation (Section 6 future work)
# ----------------------------------------------------------------------


def run_ablation_indexes(
    n: int = 500,
    queries: int = 1_000,
    deletes: int = 100,
    seed: int = 6,
) -> List[Dict[str, Any]]:
    """Insert/search/delete cost per interval-index structure.

    Uses closed intervals only, so every structure answers queries
    exactly.  Static structures (segment tree, interval tree) are
    charged a full rebuild per modification — the cost of using them
    in the paper's dynamic rule environment.
    """
    workload = IntervalWorkload(point_fraction=0.3, seed=seed)
    intervals = list(enumerate(workload.intervals(n)))
    points = workload.query_points(queries)
    delete_idents = [k for k, _ in intervals[:deletes]]
    rows: List[Dict[str, Any]] = []

    dynamic_factories: List[Tuple[str, Callable[[], Any]]] = [
        ("list", DEFAULT_REGISTRY.tree_factory("interval-list")),
        ("ibs", DEFAULT_REGISTRY.tree_factory("ibs")),
        ("ibs-avl", DEFAULT_REGISTRY.tree_factory("avl")),
        ("ibs-rb", DEFAULT_REGISTRY.tree_factory("rb")),
        ("pst", DEFAULT_REGISTRY.tree_factory("pst")),
        ("rtree-1d", DEFAULT_REGISTRY.tree_factory("rtree-1d")),
        ("rplus-1d", DEFAULT_REGISTRY.tree_factory("rplus")),
    ]
    for name, factory in dynamic_factories:
        index = factory()
        start = time.perf_counter()
        for ident, interval in intervals:
            index.insert(interval, ident)
        insert_us = (time.perf_counter() - start) / n * 1e6
        start = time.perf_counter()
        for x in points:
            index.stab(x)
        search_us = (time.perf_counter() - start) / queries * 1e6
        start = time.perf_counter()
        for ident in delete_idents:
            index.delete(ident)
        delete_us = (time.perf_counter() - start) / deletes * 1e6
        rows.append(
            {
                "structure": name,
                "dynamic": True,
                "insert_us": insert_us,
                "search_us": search_us,
                "delete_us": delete_us,
            }
        )

    static_builders: List[Tuple[str, Callable[[Iterable], Any]]] = [
        ("segment", DEFAULT_REGISTRY.tree_factory("segment")),
        ("interval", DEFAULT_REGISTRY.tree_factory("static-interval")),
    ]
    items = [(interval, ident) for ident, interval in intervals]
    for name, builder in static_builders:
        start = time.perf_counter()
        index = builder(items)
        build_us = (time.perf_counter() - start) / n * 1e6
        start = time.perf_counter()
        for x in points:
            index.stab(x)
        search_us = (time.perf_counter() - start) / queries * 1e6
        # a "dynamic" modification costs a full rebuild
        start = time.perf_counter()
        rebuilds = 5
        for _ in range(rebuilds):
            builder(items)
        rebuild_us = (time.perf_counter() - start) / rebuilds * 1e6
        rows.append(
            {
                "structure": name,
                "dynamic": False,
                "insert_us": rebuild_us,  # cost to admit one new interval
                "search_us": search_us,
                "delete_us": rebuild_us,
                "build_us_per_interval": build_us,
            }
        )
    return rows


def print_ablation_indexes(
    rows: Optional[List[Dict[str, Any]]] = None,
) -> List[Dict[str, Any]]:
    rows = rows if rows is not None else run_ablation_indexes()
    print_experiment(
        "ABL1: interval index ablation (microseconds/op, N=500)",
        ["structure", "dynamic", "insert", "search", "delete"],
        [
            [
                row["structure"],
                "yes" if row["dynamic"] else "no (rebuild)",
                row["insert_us"],
                row["search_us"],
                row["delete_us"],
            ]
            for row in rows
        ],
        note="static structures pay a full rebuild for any modification",
    )
    return rows


# ----------------------------------------------------------------------
# ABL2 — balancing ablation
# ----------------------------------------------------------------------


def run_ablation_balancing(
    n: int = 800,
    queries: int = 500,
    seed: int = 11,
) -> List[Dict[str, Any]]:
    """Sorted insertion order: unbalanced IBS-tree vs AVL variant.

    Sorted endpoint order is the worst case for an unbalanced BST
    (height ~ N); the AVL variant's rotations with the Figure 6 marker
    rewrites keep the height logarithmic.
    """
    import sys

    workload = IntervalWorkload(point_fraction=0.0, seed=seed)
    intervals = sorted(workload.intervals(n), key=lambda iv: (iv.low, iv.high))
    points = workload.query_points(queries)
    rows: List[Dict[str, Any]] = []
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 4 * n + 100))
    try:
        for name, factory in (
            ("ibs (unbalanced)", DEFAULT_REGISTRY.tree_factory("ibs")),
            ("ibs-avl", DEFAULT_REGISTRY.tree_factory("avl")),
            ("ibs-rb", DEFAULT_REGISTRY.tree_factory("rb")),
        ):
            tree = factory()
            start = time.perf_counter()
            for k, interval in enumerate(intervals):
                tree.insert(interval, k)
            insert_us = (time.perf_counter() - start) / n * 1e6
            start = time.perf_counter()
            for x in points:
                tree.stab(x)
            search_us = (time.perf_counter() - start) / queries * 1e6
            rows.append(
                {
                    "structure": name,
                    "height": tree.height,
                    "insert_us": insert_us,
                    "search_us": search_us,
                    "markers": tree.marker_count,
                }
            )
    finally:
        sys.setrecursionlimit(old_limit)
    return rows


def print_ablation_balancing(
    rows: Optional[List[Dict[str, Any]]] = None,
) -> List[Dict[str, Any]]:
    rows = rows if rows is not None else run_ablation_balancing()
    print_experiment(
        "ABL2: sorted insertion order, unbalanced vs AVL (N=800)",
        ["structure", "height", "insert us", "search us", "markers"],
        [
            [row["structure"], row["height"], row["insert_us"], row["search_us"], row["markers"]]
            for row in rows
        ],
        note="unbalanced height degenerates toward N; AVL stays ~1.44 log2 N",
    )
    return rows


# ----------------------------------------------------------------------
# ABL3 — selectivity-estimator ablation
# ----------------------------------------------------------------------


def run_ablation_selectivity(
    predicates: int = 200,
    tuples: int = 300,
    rows: int = 2_000,
    seed: int = 21,
) -> List[Dict[str, Any]]:
    """Entry-clause choice: System R constants vs data-driven statistics.

    The paper places each predicate's *most selective* clause in the
    IBS-tree, "selectivity estimates ... obtained from the query
    optimizer".  This ablation shows why the optimizer matters: on a
    skewed domain, shape-based constants pick an equality clause that
    actually matches almost everything (``status = "active"`` when 95%
    of rows are active), flooding the residual test; data-driven
    statistics pick the genuinely selective range clause instead.
    """
    import random

    from ..core.selectivity import DefaultEstimator, StatisticsEstimator
    from ..db.database import Database
    from ..predicates.clauses import EqualityClause, IntervalClause
    from ..predicates.predicate import Predicate

    rng = random.Random(seed)
    db = Database()
    db.create_relation("log", ["status", "value"])
    for _ in range(rows):
        db.insert(
            "log",
            {
                "status": "active" if rng.random() < 0.95 else "closed",
                "value": rng.randint(1, 10_000),
            },
        )

    def build_predicates() -> List[Predicate]:
        generator = random.Random(seed + 1)
        built = []
        for _ in range(predicates):
            start = generator.randint(1, 9_000)
            built.append(
                Predicate(
                    "log",
                    [
                        EqualityClause("status", "active"),
                        IntervalClause(
                            "value", Interval.closed(start, start + 999)
                        ),
                    ],
                )
            )
        return built

    batch = [
        {
            "status": "active" if rng.random() < 0.95 else "closed",
            "value": rng.randint(1, 10_000),
        }
        for _ in range(tuples)
    ]

    results: List[Dict[str, Any]] = []
    for name, estimator in (
        ("default constants", DefaultEstimator()),
        ("statistics", StatisticsEstimator(db)),
    ):
        index = DEFAULT_REGISTRY.create_matcher("ibs", estimator=estimator)
        for predicate in build_predicates():
            index.add(predicate)
        index.stats.reset()
        start = time.perf_counter()
        for tup in batch:
            index.match("log", tup)
        elapsed = time.perf_counter() - start
        layout = index.describe()["log"]["trees"]
        results.append(
            {
                "estimator": name,
                "partials_per_tuple": index.stats.partial_matches / tuples,
                "match_us": elapsed / tuples * 1e6,
                "status_tree": layout.get("status", 0),
                "value_tree": layout.get("value", 0),
            }
        )
    return results


def print_ablation_selectivity(
    rows: Optional[List[Dict[str, Any]]] = None,
) -> List[Dict[str, Any]]:
    rows = rows if rows is not None else run_ablation_selectivity()
    print_experiment(
        "ABL3: entry-clause selectivity estimation (skewed data)",
        ["estimator", "partials/tuple", "match us", "status-tree preds", "value-tree preds"],
        [
            [
                row["estimator"],
                row["partials_per_tuple"],
                row["match_us"],
                row["status_tree"],
                row["value_tree"],
            ]
            for row in rows
        ],
        note="data-driven estimates avoid indexing the 95%-selectivity equality clause",
    )
    return rows


# ----------------------------------------------------------------------
# ABL4 — single vs multi-clause indexing
# ----------------------------------------------------------------------


def run_ablation_multiclause(
    predicates: int = 400,
    tuples: int = 300,
    seed: int = 23,
) -> List[Dict[str, Any]]:
    """The paper's one-clause-per-predicate choice vs indexing them all.

    Indexing every clause and intersecting prunes candidates harder
    (fewer residual tests) but probes more trees and stores more
    markers.  On the Section 5.2 scenario (2 clauses of equal
    selectivity per predicate) this quantifies the trade-off behind
    the paper's design.
    """
    config = ScenarioConfig(predicates_per_relation=predicates, seed=seed)
    rows: List[Dict[str, Any]] = []
    for name, multi in (("single (paper)", False), ("multi-clause", True)):
        workload = ScenarioWorkload(config)
        index = DEFAULT_REGISTRY.create_matcher("ibs", multi_clause=multi)
        for predicate in workload.predicates()["r0"]:
            index.add(predicate)
        markers = sum(
            tree.marker_count
            for tree in index._relations["r0"].trees.values()
        )
        batch = workload.tuples(tuples)
        index.stats.reset()
        start = time.perf_counter()
        for tup in batch:
            index.match("r0", tup)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "scheme": name,
                "partials_per_tuple": index.stats.partial_matches / tuples,
                "full_matches_per_tuple": index.stats.full_matches / tuples,
                "match_us": elapsed / tuples * 1e6,
                "markers": markers,
            }
        )
    return rows


def print_ablation_multiclause(
    rows: Optional[List[Dict[str, Any]]] = None,
) -> List[Dict[str, Any]]:
    rows = rows if rows is not None else run_ablation_multiclause()
    print_experiment(
        "ABL4: one indexed clause per predicate (paper) vs all clauses",
        ["scheme", "partials/tuple", "matches/tuple", "match us", "markers"],
        [
            [
                row["scheme"],
                row["partials_per_tuple"],
                row["full_matches_per_tuple"],
                row["match_us"],
                row["markers"],
            ]
            for row in rows
        ],
        note="intersection prunes candidates but probes more trees and doubles markers",
    )
    return rows


# ----------------------------------------------------------------------
# E2E — matcher throughput vs predicate count
# ----------------------------------------------------------------------

E2E_STRATEGIES: Tuple[str, ...] = ("ibs", "hash", "sequential", "locking", "rtree")


def _make_matcher(strategy: str, workload: ScenarioWorkload) -> Any:
    return DEFAULT_REGISTRY.create_matcher(
        strategy,
        indexed_attributes={
            rel: set(workload.predicate_attributes)
            for rel in workload.relation_names
        },
    )


def run_e2e(
    predicate_counts: Sequence[int] = (50, 100, 200, 400, 800),
    strategies: Sequence[str] = E2E_STRATEGIES,
    tuples: int = 200,
    seed: int = 12,
) -> List[Dict[str, Any]]:
    """Per-tuple matching time for each strategy at each predicate count.

    One relation, the Section 5.2 scenario shape.  All strategies are
    first checked for agreement on a sample tuple batch, then timed.
    """
    rows: List[Dict[str, Any]] = []
    for count in predicate_counts:
        config = ScenarioConfig(predicates_per_relation=count, seed=seed)
        workload = ScenarioWorkload(config)
        predicates = workload.predicates()["r0"]
        batch = workload.tuples(tuples)
        row: Dict[str, Any] = {"predicates": count}
        reference: Optional[List[set]] = None
        for strategy in strategies:
            matcher = _make_matcher(strategy, workload)
            for predicate in predicates:
                matcher.add(predicate)
            answers = [
                {p.ident for p in matcher.match("r0", tup)} for tup in batch[:20]
            ]
            if reference is None:
                reference = answers
            elif answers != reference:
                raise AssertionError(
                    f"strategy {strategy!r} disagrees with reference matcher"
                )
            start = time.perf_counter()
            for tup in batch:
                matcher.match("r0", tup)
            row[strategy] = (time.perf_counter() - start) / tuples * 1e6
        rows.append(row)
    return rows


def print_e2e(rows: Optional[List[Dict[str, Any]]] = None) -> List[Dict[str, Any]]:
    rows = rows if rows is not None else run_e2e()
    strategies = [key for key in rows[0] if key != "predicates"]
    print_experiment(
        "E2E: per-tuple matching time by strategy (microseconds/tuple)",
        ["predicates"] + strategies,
        [[row["predicates"]] + [row[s] for s in strategies] for row in rows],
        note="scenario: 15 attributes, 2 clauses/predicate, 90% indexable, sel=0.1",
    )
    return rows


# ----------------------------------------------------------------------
# BATCH — single-tuple vs batched matching throughput
# ----------------------------------------------------------------------

BATCH_CONFIGURATIONS: Tuple[Tuple[str, str], ...] = (
    ("ibs", "single"),
    ("ibs", "batch"),
    ("flat", "single"),
    ("flat", "batch"),
    ("columnar", "single"),
    ("columnar", "batch"),
)


def run_batch(
    predicates: int = 10_000,
    batch_size: int = 1_000,
    repeats: int = 3,
    seed: int = 12,
) -> List[Dict[str, Any]]:
    """Batched-matching throughput against the per-tuple baseline.

    Builds the Section 5.2 scenario at *predicates* predicates and
    measures tuples/second for six configurations: per-tuple
    :meth:`PredicateIndex.match` and whole-batch
    :meth:`PredicateIndex.match_batch`, each over the nested
    ``IBSTree``, the flat array-backed ``FlatIBSTree`` backend, and
    the ``columnar`` matcher (flat trees plus the vectorized NumPy
    batch plane; its single-tuple row shows that the plane only pays
    off on batches).  Without NumPy the columnar rows silently measure
    the scalar fallback, so the runner works from a bare install.
    Every configuration is checked for agreement with the per-tuple
    reference on a sample before timing; each timing keeps the best of
    *repeats* runs after one warm-up pass (the warm-up compiles the
    residual evaluators and fills the flat backend's decode cache, the
    steady state a rule engine runs in).

    ``speedup`` is relative to the first configuration (per-tuple
    matching over ``IBSTree`` — the paper's design point).
    """
    config = ScenarioConfig(predicates_per_relation=predicates, seed=seed)
    workload = ScenarioWorkload(config)
    predicate_list = workload.predicates()["r0"]
    batch = workload.tuples(batch_size)
    indexes: Dict[str, PredicateIndex] = {
        "ibs": DEFAULT_REGISTRY.create_matcher("ibs"),
        "flat": DEFAULT_REGISTRY.create_matcher("ibs-flat"),
        "columnar": DEFAULT_REGISTRY.create_matcher("columnar"),
    }
    for index in indexes.values():
        for predicate in predicate_list:
            index.add(predicate)
    sample = batch[: min(20, batch_size)]
    reference = [{p.ident for p in indexes["ibs"].match("r0", tup)} for tup in sample]
    for backend, index in indexes.items():
        answers = [{p.ident for p in row} for row in index.match_batch("r0", sample)]
        if answers != reference:
            raise AssertionError(
                f"match_batch over {backend!r} disagrees with per-tuple match"
            )
    rows: List[Dict[str, Any]] = []
    baseline: Optional[float] = None
    for backend, mode in BATCH_CONFIGURATIONS:
        index = indexes[backend]
        if mode == "single":

            def work(idx: PredicateIndex = index) -> None:
                for tup in batch:
                    idx.match("r0", tup)

        else:

            def work(idx: PredicateIndex = index) -> None:
                idx.match_batch("r0", batch)

        work()  # warm-up
        elapsed = math.inf
        for _ in range(repeats):
            start = time.perf_counter()
            work()
            elapsed = min(elapsed, time.perf_counter() - start)
        throughput = batch_size / elapsed
        if baseline is None:
            baseline = throughput
        rows.append(
            {
                "backend": backend,
                "mode": mode,
                "us_per_tuple": elapsed / batch_size * 1e6,
                "tuples_per_s": throughput,
                "speedup": throughput / baseline,
            }
        )
    return rows


def print_batch(rows: Optional[List[Dict[str, Any]]] = None) -> List[Dict[str, Any]]:
    rows = rows if rows is not None else run_batch()
    print_experiment(
        "BATCH: single-tuple vs batched matching throughput",
        ["backend", "mode", "us_per_tuple", "tuples_per_s", "speedup"],
        [
            [row["backend"], row["mode"], row["us_per_tuple"],
             row["tuples_per_s"], row["speedup"]]
            for row in rows
        ],
        note="speedup is relative to per-tuple match over IBSTree",
    )
    return rows


# ----------------------------------------------------------------------
# REBUILD — bulk_load vs incremental construction
# ----------------------------------------------------------------------


REBUILD_BACKENDS: Tuple[Tuple[str, Any], ...] = (
    ("ibs", DEFAULT_REGISTRY.tree_factory("ibs")),
    ("avl", DEFAULT_REGISTRY.tree_factory("avl")),
    ("rb", DEFAULT_REGISTRY.tree_factory("rb")),
    ("flat", DEFAULT_REGISTRY.tree_factory("flat")),
)


def run_rebuild(
    intervals: int = 10_000,
    repeats: int = 3,
    seed: int = 21,
    point_fraction: float = 0.5,
) -> List[Dict[str, Any]]:
    """Bulk loading vs N incremental inserts, per tree backend and order.

    Generates *intervals* Figure-7-style intervals and builds each
    backend incrementally and with :meth:`bulk_load` (best of
    *repeats*), in two insertion orders:

    * ``shuffled`` — the workload's random arrival order, the friendly
      case for incremental insertion;
    * ``sorted`` — ascending endpoint order, which is how a rebuild or
      recovery scan actually feeds a tree (the PREDICATES table and
      snapshots are read in key order).  Sorted arrival is the
      degenerate case for the plain BST (it builds a path) and the
      rotation-heavy case for the balanced variants, while
      :meth:`bulk_load` is order-insensitive.

    The two trees are verified to give identical stab answers on a
    sample of endpoints before reporting.  ``speedup`` is incremental
    build time over bulk build time for the same backend and order —
    the factor :meth:`PredicateIndex.verify_and_rebuild` and journal
    recovery gain from the O(N) path.
    """
    workload = IntervalWorkload(point_fraction=point_fraction, seed=seed)
    shuffled = [
        (interval, i) for i, interval in enumerate(workload.intervals(intervals))
    ]
    orders = (
        ("shuffled", shuffled),
        ("sorted", sorted(shuffled, key=lambda p: (p[0].low, p[0].high))),
    )
    rows: List[Dict[str, Any]] = []
    for name, factory in REBUILD_BACKENDS:
        for order, items in orders:
            incremental = factory()
            start = time.perf_counter()
            for interval, ident in items:
                incremental.insert(interval, ident)
            incremental_s = time.perf_counter() - start
            bulk_s = math.inf
            bulk = None
            for _ in range(repeats):
                tree = factory()
                start = time.perf_counter()
                tree.bulk_load(items)
                bulk_s = min(bulk_s, time.perf_counter() - start)
                bulk = tree
            for interval, _ in items[: min(50, intervals)]:
                if bulk.stab(interval.low) != incremental.stab(interval.low):
                    raise AssertionError(
                        f"bulk_load over {name!r} disagrees with incremental inserts"
                    )
            rows.append(
                {
                    "backend": name,
                    "order": order,
                    "intervals": intervals,
                    "incremental_ms": incremental_s * 1e3,
                    "bulk_ms": bulk_s * 1e3,
                    "speedup": incremental_s / bulk_s,
                }
            )
    return rows


def print_rebuild(rows: Optional[List[Dict[str, Any]]] = None) -> List[Dict[str, Any]]:
    rows = rows if rows is not None else run_rebuild()
    print_experiment(
        "REBUILD: incremental insert vs O(N) bulk_load",
        ["backend", "order", "intervals", "incremental_ms", "bulk_ms", "speedup"],
        [
            [row["backend"], row["order"], row["intervals"], row["incremental_ms"],
             row["bulk_ms"], row["speedup"]]
            for row in rows
        ],
        note="speedup is incremental build time / bulk_load time, same backend+order",
    )
    return rows


# ----------------------------------------------------------------------
# COLDSTART — disk-tier segment attach vs journal-style re-registration
# ----------------------------------------------------------------------


def run_coldstart(
    predicates: int = 5_000,
    probes: int = 100,
    seed: int = 33,
    repeats: int = 3,
) -> List[Dict[str, Any]]:
    """Time-to-first-answer after a restart, per recovery path.

    Builds one disk-tier index (``predicates`` single-clause interval
    predicates across four relations), checkpoints it, then measures —
    best of *repeats* — how long a fresh process-equivalent takes to be
    *answering queries*:

    * ``segments`` — :func:`repro.disk.load_index`: attach the mmap'd
      segment files cold and serve *probes* stabs straight off them;
      predicate records are loaded, but no tree is ever rebuilt;
    * ``journal-replay`` — what a journal-only recovery does: parse
      every CRC'd journal line, decode its predicate record, and re-add
      it through the normal write path (each add is a tree insert),
      then run the same probes.

    ``coldstart_s`` is the whole span, probe workload included, so the
    lazy path cannot cheat by deferring all decode work past the timer.
    ``speedup`` is relative to ``journal-replay``.
    """
    import shutil
    import tempfile

    from ..db.persistence import read_journal, write_checksummed_lines
    from ..disk.checkpoint import (
        load_index,
        predicate_from_dict,
        predicate_to_dict,
        save_index,
    )

    rng = random.Random(seed)
    relations = [f"rel{i}" for i in range(4)]
    preds: List[Predicate] = []
    for i in range(predicates):
        low = rng.uniform(-1000, 1000)
        preds.append(
            Predicate(
                relations[i % len(relations)],
                [IntervalClause("x", Interval.closed(low, low + rng.uniform(0, 20)))],
                ident=i,
            )
        )
    probe_tuples = [{"x": rng.uniform(-1000, 1000)} for _ in range(probes)]

    data_dir = tempfile.mkdtemp(prefix="repro-coldstart-")
    try:
        source = PredicateIndex(storage="disk", data_dir=data_dir)
        for pred in preds:
            source.add(pred)
        save_index(source)
        # the journal a checkpoint-free run would have left behind
        journal_path = os.path.join(data_dir, "coldstart-journal.log")
        write_checksummed_lines(
            journal_path,
            [{"op": "add", "pred": predicate_to_dict(p)} for p in preds],
        )

        def probe(index: PredicateIndex) -> List[frozenset]:
            # collecting ident sets keeps both paths honest (same work)
            # and feeds the differential check below
            return [
                frozenset(p.ident for p in index.match(relation, tup))
                for relation in relations
                for tup in probe_tuples
            ]

        segments_s = math.inf
        segments_answers: List[frozenset] = []
        for _ in range(repeats):
            start = time.perf_counter()
            index = load_index(data_dir)
            segments_answers = probe(index)
            segments_s = min(segments_s, time.perf_counter() - start)

        replay_s = math.inf
        replay_answers: List[frozenset] = []
        for _ in range(repeats):
            start = time.perf_counter()
            index = PredicateIndex()
            for op in read_journal(journal_path):
                index.add(predicate_from_dict(op["pred"]))
            replay_answers = probe(index)
            replay_s = min(replay_s, time.perf_counter() - start)

        if segments_answers != replay_answers:
            raise AssertionError(
                "cold-start recovery paths disagree: segment attach and "
                "journal replay produced different match sets"
            )
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)

    return [
        {
            "path": "journal-replay",
            "predicates": predicates,
            "coldstart_s": replay_s,
            "speedup": 1.0,
        },
        {
            "path": "segments",
            "predicates": predicates,
            "coldstart_s": segments_s,
            "speedup": replay_s / segments_s,
        },
    ]


def print_coldstart(
    rows: Optional[List[Dict[str, Any]]] = None
) -> List[Dict[str, Any]]:
    rows = rows if rows is not None else run_coldstart()
    print_experiment(
        "COLDSTART: disk-tier segment attach vs journal-style replay",
        ["path", "predicates", "coldstart_s", "speedup"],
        [
            [row["path"], row["predicates"], row["coldstart_s"], row["speedup"]]
            for row in rows
        ],
        note="speedup is relative to re-adding every predicate (journal replay)",
    )
    return rows


# ----------------------------------------------------------------------
# STAB CACHE — epoch-versioned caching on a duplicate-heavy stream
# ----------------------------------------------------------------------


def _zipf_values(distinct: int, count: int, seed: int) -> List[int]:
    """A Zipf(1)-weighted stream over *distinct* values of a huge domain."""
    rng = random.Random(seed)
    universe = [rng.randint(1, 1_000_000) for _ in range(distinct)]
    weights = [1.0 / rank for rank in range(1, distinct + 1)]
    return rng.choices(universe, weights=weights, k=count)


def run_stab_cache(
    predicates: int = 10_000,
    tuples: int = 10_000,
    distinct_values: int = 256,
    cache_size: int = 4_096,
    repeats: int = 3,
    seed: int = 33,
) -> List[Dict[str, Any]]:
    """Match throughput with and without the epoch-versioned stab cache.

    The workload is the cache's design case: a duplicate-heavy stream
    (Zipf-weighted draws from a small set of distinct values) against
    many narrow single-clause predicates over one attribute, so the
    IBS-tree stab dominates each match and repeated values pay it
    again.  Both configurations are verified to give identical answers
    on a sample before timing; ``speedup`` is relative to the
    cache-off row.
    """
    rng = random.Random(seed)
    predicate_list = [
        Predicate(
            "r",
            [IntervalClause("x", Interval.closed(low, low + rng.randint(0, 50)))],
            ident=i,
        )
        for i, low in enumerate(
            rng.randint(1, 1_000_000) for _ in range(predicates)
        )
    ]
    stream = [{"x": value} for value in _zipf_values(distinct_values, tuples, seed)]
    indexes: Dict[str, PredicateIndex] = {
        "off": DEFAULT_REGISTRY.create_matcher("ibs"),
        "on": DEFAULT_REGISTRY.create_matcher("ibs", stab_cache_size=cache_size),
    }
    for index in indexes.values():
        index.add_many(predicate_list)
    sample = stream[:50]
    reference = [{p.ident for p in indexes["off"].match("r", tup)} for tup in sample]
    answers = [{p.ident for p in indexes["on"].match("r", tup)} for tup in sample]
    if answers != reference:
        raise AssertionError("cached matching disagrees with uncached matching")
    rows: List[Dict[str, Any]] = []
    baseline: Optional[float] = None
    for label, index in indexes.items():
        def work(idx: PredicateIndex = index) -> None:
            for tup in stream:
                idx.match("r", tup)

        work()  # warm-up fills the cache: steady-state behaviour
        elapsed = math.inf
        for _ in range(repeats):
            start = time.perf_counter()
            work()
            elapsed = min(elapsed, time.perf_counter() - start)
        throughput = tuples / elapsed
        if baseline is None:
            baseline = throughput
        rows.append(
            {
                "cache": label,
                "us_per_tuple": elapsed / tuples * 1e6,
                "tuples_per_s": throughput,
                "cache_hits": index.stats.stab_cache_hits,
                "speedup": throughput / baseline,
            }
        )
    return rows


def print_stab_cache(
    rows: Optional[List[Dict[str, Any]]] = None
) -> List[Dict[str, Any]]:
    rows = rows if rows is not None else run_stab_cache()
    print_experiment(
        "STAB CACHE: duplicate-heavy Zipf stream, cache off vs on",
        ["cache", "us_per_tuple", "tuples_per_s", "cache_hits", "speedup"],
        [
            [row["cache"], row["us_per_tuple"], row["tuples_per_s"],
             row["cache_hits"], row["speedup"]]
            for row in rows
        ],
        note="speedup is relative to the cache-off configuration",
    )
    return rows


# ----------------------------------------------------------------------
# CONCURRENCY — epoch-snapshot facade vs mutable index, mixed read/write
# ----------------------------------------------------------------------


def run_concurrency(
    predicates: int = 10_000,
    distinct_values: int = 2_000,
    batch_size: int = 500,
    rounds: int = 20,
    workers: int = 4,
    cache_size: int = 8_192,
    repeats: int = 3,
    seed: int = 47,
    workers_curve: Optional[Sequence[int]] = None,
) -> List[Dict[str, Any]]:
    """Mixed read/write matching: mutable index vs epoch snapshots.

    The workload interleaves writes with batched matching — each round
    adds a predicate, matches a *batch_size*-tuple batch, then removes
    the predicate — over *predicates* single-clause predicates split
    across two attributes, with batch values drawn from a pool of
    *distinct_values* per attribute so values repeat **across** rounds
    (the steady state of a rule engine fed a stream of similar tuples).

    Every row carries a ``pool`` field naming the execution tier, and
    all configurations are answer-checked against the mutable index
    before timing:

    * ``serial`` / ``none`` — one mutable :class:`PredicateIndex` with
      the stab cache on.  Every write bumps a tree epoch, so the
      cross-round value repetition never pays off: each batch re-stabs
      all its values.
    * ``snapshot`` / ``inline`` (workers=0) —
      :class:`ConcurrentPredicateIndex` matching inline.  Writes build
      a small overlay; the frozen base's trees never bump their
      epochs, so its stab cache stays warm across writes and
      steady-state batches skip the tree entirely.
    * ``snapshot`` / ``thread`` — the same facade fanning each batch
      over a thread pool, one row per worker count in *workers_curve*.
    * ``snapshot`` / ``process`` — the supervised multiprocess tier:
      shard bases published once into shared memory, batches fanned to
      worker processes over framed pipes, one row per worker count.
    * ``snapshot`` / ``process-degraded`` — the process facade after
      its restart budget is exhausted: matching falls back to the
      in-process path with identical results, so this row prices the
      graceful-degradation latency floor.

    *workers_curve* defaults to ``(1, 2, 4, os.cpu_count())`` plus the
    legacy *workers* count, deduplicated and sorted.

    Honesty note: this container has **one CPU and the GIL**, so
    neither pool tier can win by parallelism — any speedup over
    ``serial`` is the snapshot design's *write isolation* (cache
    retention), thread rows pay a small dispatch overhead on top of
    the inline row, and process rows additionally pay pickling + IPC
    per batch.  On a multi-core host the process rows overlap real
    CPU work across cores.  ``speedup`` is relative to the ``serial``
    row.
    """
    if workers_curve is None:
        workers_curve = (1, 2, 4, os.cpu_count() or 1)
    curve: List[int] = []
    for candidate in (*workers_curve, workers):
        candidate = max(1, int(candidate))
        if candidate not in curve:
            curve.append(candidate)
    curve.sort()
    rng = random.Random(seed)
    attributes = ("x", "y")
    predicate_list = []
    for i in range(predicates):
        attribute = attributes[i % len(attributes)]
        low = rng.randint(1, 1_000_000)
        predicate_list.append(
            Predicate(
                "r",
                [IntervalClause(attribute, Interval.closed(low, low + rng.randint(0, 50)))],
                ident=i,
            )
        )
    pools = {
        attribute: [rng.randint(1, 1_000_000) for _ in range(distinct_values)]
        for attribute in attributes
    }
    batches = []
    for _ in range(rounds):
        columns = {
            attribute: rng.sample(pool, min(batch_size, len(pool)))
            for attribute, pool in pools.items()
        }
        batches.append(
            [
                {attribute: columns[attribute][j] for attribute in attributes}
                for j in range(min(batch_size, distinct_values))
            ]
        )
    write_preds = [
        Predicate(
            "r",
            [IntervalClause(rng.choice(attributes), Interval.closed(low, low + 50))],
            ident=f"bench-w{i}",
        )
        for i, low in enumerate(
            rng.randint(1, 1_000_000) for _ in range(rounds)
        )
    ]

    def mixed_rounds(index: Any) -> None:
        for i, batch in enumerate(batches):
            index.add(write_preds[i])
            index.match_batch("r", batch)
            index.remove(write_preds[i].ident)

    serial = DEFAULT_REGISTRY.create_matcher(
        "ibs", tree_factory="flat", stab_cache_size=cache_size
    )
    serial.add_many(predicate_list)
    sample = batches[0][:20]
    reference = [{p.ident for p in serial.match("r", tup)} for tup in sample]

    def build_facade(pool_kind: str, worker_count: int) -> Any:
        options: Dict[str, Any] = {
            "tree_factory": "flat",
            "workers": worker_count,
            "snapshot_cache_size": cache_size,
        }
        if pool_kind.startswith("process"):
            options["pool"] = "process"
        index = DEFAULT_REGISTRY.create_matcher("ibs-concurrent", **options)
        index.add_many(predicate_list)
        return index

    total = sum(len(batch) for batch in batches)
    rows: List[Dict[str, Any]] = []
    baseline: Optional[float] = None
    configurations: List[Tuple[str, str, int]] = [
        ("serial", "none", 0),
        ("snapshot", "inline", 0),
    ]
    configurations += [("snapshot", "thread", count) for count in curve]
    configurations += [("snapshot", "process", count) for count in curve]
    configurations.append(("snapshot", "process-degraded", curve[-1]))
    for mode, pool_kind, worker_count in configurations:
        # Build, answer-check, time, and tear down each configuration in
        # sequence so process pools fork before any thread pool exists.
        index = serial if mode == "serial" else build_facade(pool_kind, worker_count)
        try:
            if pool_kind == "process-degraded":
                index.match_batch("r", sample)  # instantiate the pool first
                index.degrade_process_tier("bench: degraded-mode row")
            if mode != "serial":
                answers = [
                    {p.ident for p in row} for row in index.match_batch("r", sample)
                ]
                if answers != reference:
                    raise AssertionError(
                        f"concurrent facade (pool={pool_kind}, "
                        f"workers={worker_count}) disagrees with the mutable index"
                    )
            mixed_rounds(index)  # warm-up: steady-state caches
            elapsed = math.inf
            for _ in range(repeats):
                start = time.perf_counter()
                mixed_rounds(index)
                elapsed = min(elapsed, time.perf_counter() - start)
        finally:
            if mode != "serial":
                index.close()
        throughput = total / elapsed
        if baseline is None:
            baseline = throughput
        rows.append(
            {
                "mode": mode,
                "pool": pool_kind,
                "workers": worker_count,
                "us_per_tuple": elapsed / total * 1e6,
                "tuples_per_s": throughput,
                "speedup": throughput / baseline,
            }
        )
    return rows


def print_concurrency(
    rows: Optional[List[Dict[str, Any]]] = None
) -> List[Dict[str, Any]]:
    rows = rows if rows is not None else run_concurrency()
    print_experiment(
        "CONCURRENCY: mutable index vs epoch snapshots, mixed read/write",
        ["mode", "pool", "workers", "us_per_tuple", "tuples_per_s", "speedup"],
        [
            [row["mode"], row["pool"], row["workers"], row["us_per_tuple"],
             row["tuples_per_s"], row["speedup"]]
            for row in rows
        ],
        note="speedup vs the mutable serial index; single-CPU host — gains "
             "come from snapshot cache retention, not parallelism; process "
             "rows add pickling + IPC per batch",
    )
    return rows


# ----------------------------------------------------------------------
# AUTOSELECT — scenario-vs-backend sweep for the self-tuning loop
# ----------------------------------------------------------------------


#: Fixed rows of the sweep matrix.  ``interval-list`` is the Figure 9
#: linear-scan baseline — it is *not* an auto-selection candidate (no
#: enumeration, so migration away is a one-way door), but as a fixed
#: row it anchors the "worst default" bar the auto row must clear.
AUTOSELECT_FIXED_BACKENDS: Tuple[str, ...] = (
    "ibs",
    "avl",
    "rb",
    "flat",
    "interval-list",
)


def _churn_pass(index: PredicateIndex, churn: List[Tuple[str, Any]]) -> None:
    """Apply churn events, then undo them in reverse.

    The undo restores the exact pre-pass predicate set, so a timed pass
    can repeat; the undo's adds and removes are churn work too and are
    identical for every backend, keeping the comparison fair.
    """
    undo: List[Tuple[str, Any]] = []
    for op, payload in churn:
        if op == "add":
            index.add(payload)
            undo.append(("remove", payload.ident))
        else:
            undo.append(("add", index.remove(payload)))
    for op, payload in reversed(undo):
        if op == "add":
            index.add(payload)
        else:
            index.remove(payload)


def run_autoselect(
    scenarios: Optional[Sequence[str]] = None,
    seed: int = 33,
    repeats: int = 9,
    scale: float = 1.0,
    calibration_samples: int = 200,
    calibration_sizes: Sequence[int] = (64, 512),
    min_evidence_ops: int = 64,
    report_out: Optional[Dict[str, Any]] = None,
) -> List[Dict[str, Any]]:
    """The scenario-vs-backend throughput matrix for auto-selection.

    Every scenario family (:mod:`repro.workloads.scenarios`) is run
    against each fixed backend and against ``auto`` — a
    ``PredicateIndex(auto_backend=True)`` that accumulates evidence
    over a warm-up pass, runs one explicit :meth:`autoselect` pass, and
    is then timed on whatever backends it migrated to.  Predicates are
    added **one by one**, preserving each scenario's arrival order —
    that is what degenerates the unbalanced tree in the adversarial
    family, the exact trap the live micro-probe lets auto escape.

    Before any timing, every configuration's ``match_idents`` answers
    are checked against the first backend's on a sample — and the auto
    row is re-checked *after* its migration pass, so the sweep itself
    proves migrations preserve match semantics.  Timings are best of
    *repeats* after warm-up (passes are milliseconds long, so the
    default is high enough for the best-of to converge under container
    timer jitter); ``ops_per_s`` counts logical operations (stabs plus
    churn adds/removes, including the undo).

    *scale* shrinks or grows every scenario (``--quick`` uses 0.25);
    *report_out*, when given, receives the calibrated cost table and
    the auto row's per-scenario picks and decisions (kept out of the
    returned rows — picks are machine-dependent and would break
    row-matching in ``compare_bench``).
    """
    from ..workloads.scenarios import scenario_names, synthesize
    from .cost_model import calibrate_backends

    names = list(scenarios) if scenarios is not None else scenario_names()
    table = calibrate_backends(
        seed=seed, samples=calibration_samples, sizes=tuple(calibration_sizes)
    )
    picks: Dict[str, Any] = {}
    rows: List[Dict[str, Any]] = []
    for family in names:
        scenario = synthesize(family, seed=seed, scale=scale)
        predicate_list = scenario.predicates()
        batches = scenario.batches()
        churn = scenario.churn()
        relation = scenario.spec.relation
        sample = [tup for tup in batches[0][:20]]
        ops = scenario.total_stabs() + 4 * len(churn)
        reference: Optional[List[frozenset]] = None
        family_rows: List[Dict[str, Any]] = []
        for backend in AUTOSELECT_FIXED_BACKENDS + ("auto",):
            if backend == "auto":
                index = PredicateIndex(
                    auto_backend=True,
                    auto_cost_table=table,
                    min_evidence_ops=min_evidence_ops,
                )
            else:
                index = PredicateIndex(tree_factory=backend)
            for predicate in predicate_list:
                index.add(predicate)
            answers = [
                frozenset(index.match_idents(relation, tup)) for tup in sample
            ]
            if reference is None:
                reference = answers
            elif answers != reference:
                raise AssertionError(
                    f"{family}: {backend!r} disagrees with "
                    f"{AUTOSELECT_FIXED_BACKENDS[0]!r} on the sample"
                )

            def work(idx: PredicateIndex = index) -> None:
                if churn:
                    _churn_pass(idx, churn)
                for batch in batches:
                    idx.match_batch(relation, batch)

            work()  # warm-up: caches, compiled residuals — and evidence
            if backend == "auto":
                decisions = index.autoselect()
                after = [
                    frozenset(index.match_idents(relation, tup))
                    for tup in sample
                ]
                if after != reference:
                    raise AssertionError(
                        f"{family}: auto-selection migration changed "
                        f"match results"
                    )
                picks[family] = {
                    "backends": index.attribute_backends(relation),
                    "decisions": [decision.as_dict() for decision in decisions],
                }
            elapsed = math.inf
            for _ in range(repeats):
                start = time.perf_counter()
                work()
                elapsed = min(elapsed, time.perf_counter() - start)
            family_rows.append(
                {
                    "scenario": family,
                    "backend": backend,
                    "ms_per_pass": elapsed * 1e3,
                    "ops_per_s": ops / elapsed,
                }
            )
        fixed = [row for row in family_rows if row["backend"] != "auto"]
        best = max(row["ops_per_s"] for row in fixed)
        worst = min(row["ops_per_s"] for row in fixed)
        for row in family_rows:
            row["rel_best"] = row["ops_per_s"] / best
            row["rel_worst"] = row["ops_per_s"] / worst
        rows.extend(family_rows)
    if report_out is not None:
        report_out["cost_table"] = table.as_dict()
        report_out["picks"] = picks
    return rows


def print_autoselect(
    rows: Optional[List[Dict[str, Any]]] = None
) -> List[Dict[str, Any]]:
    rows = rows if rows is not None else run_autoselect()
    print_experiment(
        "AUTOSELECT: scenario-vs-backend sweep, fixed backends vs auto",
        ["scenario", "backend", "ms_per_pass", "ops_per_s", "rel_best",
         "rel_worst"],
        [
            [row["scenario"], row["backend"], row["ms_per_pass"],
             row["ops_per_s"], row["rel_best"], row["rel_worst"]]
            for row in rows
        ],
        note="rel_best/rel_worst are vs the best/worst FIXED backend of "
             "each scenario; the auto row observes, migrates once, then "
             "is timed on its chosen backends",
    )
    return rows


# ----------------------------------------------------------------------
# MAINT — the unified maintenance plane's hot-path cost
# ----------------------------------------------------------------------


def run_maintenance(
    predicates: int = 5_000,
    distinct_values: int = 1_000,
    batch_size: int = 400,
    rounds: int = 24,
    repeats: int = 3,
    seed: int = 53,
    checkpoint_every: int = 6,
) -> List[Dict[str, Any]]:
    """Price the maintenance plane against a scheduler-free index.

    Two questions, two row groups, one shared mixed workload (each
    round adds a predicate, matches a *batch_size*-tuple batch on an
    alternating relation, then removes the predicate):

    * **Tick overhead** — ``scheduler-off`` is a plain
      ``PredicateIndex``; ``scheduler-idle`` carries a
      ``MaintenancePolicy`` whose tasks never come due, so its extra
      cost is exactly the per-op clock tick and due-scan on the hot
      paths (the ≤5 % acceptance bar applies to this row);
      ``scheduler-active`` additionally runs real retune passes
      (``adaptive=True``), pricing maintenance *work*, not just the
      plane.
    * **Checkpoint pauses** — on the disk facade, ``ckpt-stop-world``
      runs a full ``DiskCheckpointer.checkpoint()`` inline every
      *checkpoint_every* rounds; ``ckpt-background`` lets the
      scheduler trigger the same checkpoints at the same op cadence
      but with ``budget_ops=1``, so each pass seals at most one shard
      and the remainder waits for the next due tick.  ``max_pause_ms``
      is the worst single-round wall time — the stall a caller would
      actually feel — and the background row's should sit well below
      the stop-the-world row's at full scale.

    Every configuration is answer-checked against ``scheduler-off`` on
    a sample before timing; ``overhead_pct`` is throughput loss vs the
    ``scheduler-off`` row (negative = faster, noise).
    """
    import shutil
    import tempfile

    from ..disk.checkpoint import DiskCheckpointer
    from ..maintenance import MaintenancePolicy

    rng = random.Random(seed)
    relations = ("emp", "dept")
    attributes = ("x", "y")
    predicate_list = []
    for i in range(predicates):
        attribute = attributes[i % len(attributes)]
        relation = relations[i % len(relations)]
        low = rng.randint(1, 1_000_000)
        predicate_list.append(
            Predicate(
                relation,
                [IntervalClause(attribute, Interval.closed(low, low + rng.randint(0, 50)))],
                ident=i,
            )
        )
    pools = {
        attribute: [rng.randint(1, 1_000_000) for _ in range(distinct_values)]
        for attribute in attributes
    }
    batches = []
    for _ in range(rounds):
        columns = {
            attribute: rng.sample(pool, min(batch_size, len(pool)))
            for attribute, pool in pools.items()
        }
        batches.append(
            [
                {attribute: columns[attribute][j] for attribute in attributes}
                for j in range(min(batch_size, distinct_values))
            ]
        )
    write_preds = [
        Predicate(
            relations[i % len(relations)],
            [IntervalClause(rng.choice(attributes), Interval.closed(low, low + 50))],
            ident=f"bench-m{i}",
        )
        for i, low in enumerate(
            rng.randint(1, 1_000_000) for _ in range(rounds)
        )
    ]
    total = sum(len(batch) for batch in batches)
    ops_per_round = batch_size + 2
    never = 10 ** 12  # an interval no bench-scale clock ever reaches

    def mixed_rounds(index: Any, checkpointer: Any = None) -> float:
        """Run the workload; returns the worst single-round seconds."""
        worst = 0.0
        for i, batch in enumerate(batches):
            relation = relations[i % len(relations)]
            start = time.perf_counter()
            index.add(write_preds[i])
            index.match_batch(relation, batch)
            index.remove(write_preds[i].ident)
            if checkpointer is not None and (i + 1) % checkpoint_every == 0:
                checkpointer.checkpoint()
            worst = max(worst, time.perf_counter() - start)
        return worst

    baseline_index = DEFAULT_REGISTRY.create_matcher("ibs", tree_factory="flat")
    baseline_index.add_many(predicate_list)
    sample = batches[0][:20]
    reference = {
        relation: [
            {p.ident for p in baseline_index.match(relation, tup)}
            for tup in sample
        ]
        for relation in relations
    }

    def check(index: Any, label: str) -> None:
        for relation in relations:
            answers = [
                {p.ident for p in row}
                for row in index.match_batch(relation, sample)
            ]
            if answers != reference[relation]:
                raise AssertionError(
                    f"maintenance bench: {label} disagrees with the "
                    f"scheduler-free index on {relation}"
                )

    rows: List[Dict[str, Any]] = []
    baseline: Optional[float] = None

    def time_config(
        mode: str, index: Any, checkpointer: Any = None
    ) -> Dict[str, Any]:
        nonlocal baseline
        check(index, mode)
        mixed_rounds(index, checkpointer)  # warm-up
        elapsed, worst = math.inf, 0.0
        for _ in range(repeats):
            start = time.perf_counter()
            pause = mixed_rounds(index, checkpointer)
            took = time.perf_counter() - start
            if took < elapsed:
                elapsed, worst = took, pause
        throughput = total / elapsed
        if baseline is None:
            baseline = throughput
        row = {
            "mode": mode,
            "us_per_tuple": elapsed / total * 1e6,
            "tuples_per_s": throughput,
            "overhead_pct": (1.0 - throughput / baseline) * 100.0,
            "max_pause_ms": worst * 1e3,
        }
        rows.append(row)
        return row

    time_config("scheduler-off", baseline_index)

    idle = DEFAULT_REGISTRY.create_matcher(
        "ibs",
        tree_factory="flat",
        maintenance=MaintenancePolicy(retune_interval=never),
    )
    idle.add_many(predicate_list)
    time_config("scheduler-idle", idle)

    active = DEFAULT_REGISTRY.create_matcher(
        "ibs",
        tree_factory="flat",
        adaptive=True,
        min_feedback_tuples=64,
        maintenance=MaintenancePolicy(retune_interval=ops_per_round * 2),
    )
    active.add_many(predicate_list)
    time_config("scheduler-active", active)

    work_dir = tempfile.mkdtemp(prefix="bench-maint-")
    try:
        stop_world = DEFAULT_REGISTRY.create_matcher(
            "ibs-concurrent",
            storage="disk",
            data_dir=os.path.join(work_dir, "stop-world"),
        )
        stop_world.add_many(predicate_list)
        ck_stop = DiskCheckpointer(stop_world)
        try:
            time_config("ckpt-stop-world", stop_world, ck_stop)
        finally:
            ck_stop.close()
            stop_world.close()

        background = DEFAULT_REGISTRY.create_matcher(
            "ibs-concurrent",
            storage="disk",
            data_dir=os.path.join(work_dir, "background"),
            maintenance=MaintenancePolicy(
                checkpoint_interval=ops_per_round * checkpoint_every,
                budget_ops=1,
            ),
        )
        background.add_many(predicate_list)
        ck_back = DiskCheckpointer(background)
        try:
            time_config("ckpt-background", background)
        finally:
            ck_back.close()
            background.close()
    finally:
        shutil.rmtree(work_dir, ignore_errors=True)
    return rows


def print_maintenance(
    rows: Optional[List[Dict[str, Any]]] = None
) -> List[Dict[str, Any]]:
    rows = rows if rows is not None else run_maintenance()
    print_experiment(
        "MAINT: maintenance-plane overhead and checkpoint pauses",
        ["mode", "us_per_tuple", "tuples_per_s", "overhead_pct",
         "max_pause_ms"],
        [
            [row["mode"], row["us_per_tuple"], row["tuples_per_s"],
             row["overhead_pct"], row["max_pause_ms"]]
            for row in rows
        ],
        note="overhead_pct vs the scheduler-free index (idle row is the "
             "<=5% bar); ckpt rows run on the disk facade — stop-world "
             "checkpoints inline, background spreads the same cadence "
             "over budget_ops=1 scheduler slices",
    )
    return rows


# ----------------------------------------------------------------------


def main() -> None:
    """Run and print every experiment (used by ``python -m``)."""
    print_fig7()
    print_fig8()
    print_fig9()
    print_cost_model()
    print_space()
    print_ablation_indexes()
    print_ablation_balancing()
    print_ablation_selectivity()
    print_ablation_multiclause()
    print_e2e()
    print_batch()
    print_rebuild()
    print_coldstart()
    print_stab_cache()
    print_concurrency()
    print_autoselect()
    print_maintenance()


if __name__ == "__main__":
    main()
