"""Benchmark harness: timing helpers, the Section 5.2 cost model, and
one runner per paper figure (``python -m repro.bench.runner`` prints
them all)."""

from .cost_model import (
    CostBreakdown,
    CostParameters,
    calibrate,
    measured_match_cost_ms,
    predicate_match_cost,
)
from .reporting import format_series, format_table, print_experiment
from .runner import (
    run_ablation_balancing,
    run_ablation_indexes,
    run_cost_model,
    run_e2e,
    run_fig7,
    run_fig8,
    run_fig9,
    run_space,
)
from .timing import best_of, time_per_op, time_total

__all__ = [
    "CostParameters",
    "CostBreakdown",
    "predicate_match_cost",
    "calibrate",
    "measured_match_cost_ms",
    "format_table",
    "format_series",
    "print_experiment",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_cost_model",
    "run_space",
    "run_ablation_indexes",
    "run_ablation_balancing",
    "run_e2e",
    "time_total",
    "time_per_op",
    "best_of",
]
