"""Property-based tests: the TREAT network vs a brute-force matcher.

The reference implementation recomputes, from scratch, every complete
instantiation of every rule over the current working memory (nested
loops + binding checks + negation scan).  After any script of
assert/retract operations, the network's conflict set (ignoring
refraction) must equal the reference's result.
"""

from itertools import product
from typing import Dict, List, Optional, Set, Tuple

from hypothesis import given, strategies as st

from repro.production import Pattern, ProductionSystem, Test, Var


def reference_instantiations(ps: ProductionSystem, rule) -> Set[Tuple]:
    """Brute-force: all valid (rule, wme_ids) instantiation keys."""
    wmes = list(ps.working_memory)
    positives = [rule.patterns[k] for k in rule.positive_indexes()]
    negatives = [rule.patterns[k] for k in rule.negated_indexes()]
    keys: Set[Tuple] = set()
    candidate_lists = [
        [w for w in wmes if w.wme_type == p.wme_type and p.alpha_predicate().matches(w.attributes)]
        for p in positives
    ]
    for combo in product(*candidate_lists):
        bindings: Optional[Dict] = {}
        for pattern, wme in zip(positives, combo):
            bindings = pattern.bind(wme.attributes, bindings)
            if bindings is None:
                break
        if bindings is None:
            continue
        blocked = False
        for pattern in negatives:
            for wme in wmes:
                if wme.wme_type != pattern.wme_type:
                    continue
                if not pattern.alpha_predicate().matches(wme.attributes):
                    continue
                if pattern.bind(wme.attributes, bindings) is not None:
                    blocked = True
                    break
            if blocked:
                break
        if not blocked:
            keys.add((rule.name,) + tuple(w.wme_id for w in combo))
    return keys


# operation scripts over a tiny fact vocabulary so joins happen often
fact_strategy = st.tuples(
    st.sampled_from(["a", "b"]),                      # type
    st.integers(min_value=0, max_value=4),            # v
    st.sampled_from(["x", "y"]),                      # tag
)

ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("assert"), fact_strategy),
        st.tuples(st.just("retract"), st.integers(min_value=0, max_value=100)),
    ),
    min_size=1,
    max_size=25,
)

RULES = [
    (
        "join-on-tag",
        [
            Pattern("a", [Test("v", ">", 1), Test("tag", "=", Var("t"))]),
            Pattern("b", [Test("tag", "=", Var("t"))]),
        ],
    ),
    (
        "a-without-bigger-b",
        [
            Pattern("a", [Test("v", "=", Var("x"))]),
            Pattern("b", [Test("v", ">", Var("x"))], negated=True),
        ],
    ),
    (
        "pairs",
        [
            Pattern("a", [Test("v", "=", Var("x"))]),
            Pattern("a", [Test("v", ">", Var("x"))]),
        ],
    ),
    (
        "guarded-singleton",
        [
            Pattern("b", [Test("v", ">=", 2), Test("v", "<=", 3)]),
        ],
    ),
]


def build_system() -> ProductionSystem:
    ps = ProductionSystem()
    for name, patterns in RULES:
        ps.add_rule(name, patterns, lambda ctx: None)
    return ps


def run_script(ps: ProductionSystem, script) -> None:
    live: List = []
    for op, arg in script:
        if op == "assert":
            wme_type, v, tag = arg
            live.append(ps.assert_fact(wme_type, v=v, tag=tag))
        elif live:
            victim = live.pop(arg % len(live))
            ps.retract(victim)


class TestNetworkAgainstReference:
    @given(script=ops_strategy)
    def test_conflict_set_equals_brute_force(self, script):
        ps = build_system()
        run_script(ps, script)
        got = {inst.key for inst in ps.conflict_set()}
        expected: Set[Tuple] = set()
        for rule in ps.network.rules():
            expected |= reference_instantiations(ps, rule)
        assert got == expected

    @given(script=ops_strategy)
    def test_rules_added_after_facts_agree(self, script):
        """Late rule installation sees exactly the same matches."""
        early = build_system()
        run_script(early, script)

        late = ProductionSystem()
        # replay the same script against a system with no rules...
        live: List = []
        for op, arg in script:
            if op == "assert":
                wme_type, v, tag = arg
                live.append(late.assert_fact(wme_type, v=v, tag=tag))
            elif live:
                late.retract(live.pop(arg % len(live)))
        # ...then add the rules afterwards
        for name, patterns in RULES:
            late.add_rule(name, patterns, lambda ctx: None)

        def normalize(ps):
            # wme ids differ between systems; compare by attribute tuples
            def wme_key(wme_id):
                wme = ps.working_memory.get(wme_id)
                return (wme.wme_type, tuple(sorted(wme.attributes.items())))

            return {
                (inst.key[0],) + tuple(sorted(map(wme_key, inst.key[1:])))
                for inst in ps.conflict_set()
            }

        assert normalize(early) == normalize(late)

    @given(script=ops_strategy)
    def test_firing_consumes_conflict_set(self, script):
        ps = build_system()
        run_script(ps, script)
        pending = len(ps.conflict_set())
        fired = ps.run()
        assert fired == pending  # actions are no-ops: nothing re-enters
        assert ps.conflict_set() == []
