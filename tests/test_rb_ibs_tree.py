"""Tests for the red-black balanced IBS-tree variant."""

import math
import random

import pytest
from hypothesis import given, strategies as st

from repro import Interval, RBIBSTree
from tests.conftest import intervals, query_points
from tests.test_ibs_tree_properties import apply_script, ops


class TestRedBlackProperties:
    @given(script=ops)
    def test_invariants_after_any_script(self, script):
        tree = RBIBSTree()
        apply_script(tree, script)
        tree.validate()  # includes colour rules and black height

    @given(script=ops, xs=st.lists(query_points, min_size=1, max_size=12))
    def test_stabbing_completeness(self, script, xs):
        tree = RBIBSTree()
        live = apply_script(tree, script)
        for x in xs:
            expected = {i for i, iv in live.items() if iv.contains(x)}
            assert tree.stab(x) == expected

    def test_sorted_insert_height_bound(self):
        tree = RBIBSTree()
        for k in range(400):
            tree.insert(Interval.closed(k, k + 5), k)
        tree.validate()
        assert tree.height <= 2 * math.log2(tree.node_count + 1) + 2

    def test_sorted_delete_keeps_balance(self):
        tree = RBIBSTree()
        for k in range(200):
            tree.insert(Interval.closed(k, k + 5), k)
        for k in range(150):
            tree.delete(k)
            if k % 10 == 0:
                tree.validate()
        tree.validate()
        assert tree.height <= 2 * math.log2(tree.node_count + 1) + 2
        for x in (155, 199.5, 203):
            expected = {k for k in range(150, 200) if k <= x <= k + 5}
            assert tree.stab(x) == expected

    def test_agrees_with_brute_force_randomized(self):
        rng = random.Random(31)
        tree = RBIBSTree()
        live = {}
        for step in range(600):
            if rng.random() < 0.7 or not live:
                a, b = rng.randint(0, 99), rng.randint(0, 99)
                lo, hi = min(a, b), max(a, b)
                iv = Interval(lo, hi, rng.random() < 0.5 or lo == hi,
                              rng.random() < 0.5 or lo == hi)
                tree.insert(iv, step)
                live[step] = iv
            else:
                victim = rng.choice(list(live))
                tree.delete(victim)
                del live[victim]
        tree.validate()
        for x in [v / 2 for v in range(0, 200, 3)]:
            assert tree.stab(x) == {i for i, iv in live.items() if iv.contains(x)}

    def test_root_always_black(self):
        tree = RBIBSTree()
        tree.insert(Interval.point(5), "a")
        assert not tree._root.red
        tree.insert(Interval.point(3), "b")
        tree.insert(Interval.point(7), "c")
        assert not tree._root.red


class TestDropInCompatibility:
    def test_same_api_as_ibs(self):
        from repro import IBSTree

        base = {name for name in dir(IBSTree) if not name.startswith("_")}
        rb = {name for name in dir(RBIBSTree) if not name.startswith("_")}
        assert base <= rb

    def test_predicate_index_with_rb_trees(self):
        from repro import PredicateIndex
        from repro.predicates import PredicateBuilder

        index = PredicateIndex(tree_factory=RBIBSTree)
        preds = [
            PredicateBuilder("r").between("x", k, k + 10).build() for k in range(30)
        ]
        for pred in preds:
            index.add(pred)
        got = index.match_idents("r", {"x": 15})
        expected = {p.ident for p in preds if p.matches({"x": 15})}
        assert got == expected

    def test_engine_strategy_name(self):
        from repro import CollectAction, Database, RuleEngine

        db = Database()
        db.create_relation("r", ["x"])
        collect = CollectAction()
        engine = RuleEngine(db, matcher="ibs-rb")
        engine.create_rule("r1", on="r", condition="x > 5", action=collect)
        db.insert("r", {"x": 9})
        db.insert("r", {"x": 1})
        assert len(collect.records) == 1
