"""Tests for the R+-style clipped interval index."""

import random

import pytest
from hypothesis import given, strategies as st

from repro import Interval
from repro.baselines import RPlusTree1D
from repro.errors import DuplicateIntervalError, UnknownIntervalError
from tests.conftest import intervals, query_points


class TestBasics:
    def test_insert_and_stab(self):
        tree = RPlusTree1D()
        tree.insert(Interval.closed(1, 5), "a")
        tree.insert(Interval.closed(4, 9), "b")
        assert tree.stab(4.5) == {"a", "b"}
        assert tree.stab(0) == set()
        assert tree.stab(9) == {"b"}

    def test_point_intervals(self):
        tree = RPlusTree1D()
        tree.insert(Interval.point(7), "p")
        assert tree.stab(7) == {"p"}
        assert tree.stab(6.9) == set()
        assert tree.stab(7.1) == set()

    def test_unbounded(self):
        tree = RPlusTree1D()
        tree.insert(Interval.at_most(5), "low")
        tree.insert(Interval.at_least(3), "high")
        tree.insert(Interval.unbounded(), "all")
        assert tree.stab(-1000) == {"low", "all"}
        assert tree.stab(4) == {"low", "high", "all"}
        assert tree.stab(1000) == {"high", "all"}

    def test_duplicate_and_unknown(self):
        tree = RPlusTree1D()
        tree.insert(Interval.closed(1, 2), "a")
        with pytest.raises(DuplicateIntervalError):
            tree.insert(Interval.closed(3, 4), "a")
        with pytest.raises(UnknownIntervalError):
            tree.delete("b")

    def test_auto_idents(self):
        tree = RPlusTree1D()
        a = tree.insert(Interval.closed(1, 2))
        b = tree.insert(Interval.closed(1, 2))
        assert a != b
        assert tree.stab(1.5) == {a, b}

    def test_delete_removes_all_clips(self):
        tree = RPlusTree1D()
        tree.insert(Interval.closed(0, 100), "wide")
        for k in range(20):  # force many splits inside "wide"
            tree.insert(Interval.closed(5 * k, 5 * k + 2), k)
        tree.delete("wide")
        for x in (0, 33, 99.5):
            assert "wide" not in tree.stab(x)
        assert "wide" not in tree


class TestRPlusCharacteristics:
    def test_clip_duplication_grows_with_overlap(self):
        """The R+ trade-off: overlapping data multiplies entries."""
        disjoint = RPlusTree1D()
        for k in range(50):
            disjoint.insert(Interval.closed(10 * k, 10 * k + 5), k)
        overlapping = RPlusTree1D()
        for k in range(50):
            overlapping.insert(Interval.closed(k, k + 100), k)
        assert disjoint.clip_count <= 2 * 50
        assert overlapping.clip_count > 5 * 50

    def test_partition_never_shrinks(self):
        tree = RPlusTree1D()
        for k in range(10):
            tree.insert(Interval.closed(k, k + 1), k)
        segments_before = tree.segment_count
        for k in range(10):
            tree.delete(k)
        assert tree.segment_count == segments_before  # no merging
        assert tree.stab(5) == set()

    def test_single_path_candidates(self):
        tree = RPlusTree1D()
        tree.insert(Interval.closed_open(1, 5), "half")  # approximated closed
        assert "half" in tree.stab_candidates(5)
        assert tree.stab(5) == set()  # exact filter corrects it


class TestEquivalence:
    def test_randomized_against_brute_force(self):
        rng = random.Random(77)
        tree = RPlusTree1D()
        live = {}
        for step in range(400):
            if rng.random() < 0.7 or not live:
                a, b = rng.randint(0, 200), rng.randint(0, 200)
                iv = Interval.closed(min(a, b), max(a, b))
                tree.insert(iv, step)
                live[step] = iv
            else:
                victim = rng.choice(list(live))
                tree.delete(victim)
                del live[victim]
        for x in range(-5, 206):
            assert tree.stab(x) == {k for k, iv in live.items() if iv.contains(x)}

    @given(
        stored=st.lists(intervals(allow_open=False), min_size=0, max_size=20),
        xs=st.lists(query_points, min_size=1, max_size=10),
    )
    def test_property_equivalence(self, stored, xs):
        tree = RPlusTree1D()
        for k, iv in enumerate(stored):
            tree.insert(iv, k)
        for x in xs:
            expected = {k for k, iv in enumerate(stored) if iv.contains(x)}
            assert tree.stab(x) == expected
