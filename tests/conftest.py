"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings, strategies as st

from repro import Interval

# A single moderate profile: enough examples to matter, fast enough to
# keep the suite snappy.
settings.register_profile(
    "repro",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG per test."""
    return random.Random(0xC0FFEE)


# -- hypothesis strategies ---------------------------------------------

#: small integer domain so intervals overlap and endpoints collide often
domain_values = st.integers(min_value=0, max_value=40)


@st.composite
def intervals(draw, allow_open: bool = True, allow_unbounded: bool = True):
    """Random Interval over the small integer domain."""
    kind = draw(
        st.sampled_from(
            ["point", "closed", "mixed", "low_unbounded", "high_unbounded", "unbounded"]
            if allow_unbounded
            else ["point", "closed", "mixed"]
        )
    )
    a = draw(domain_values)
    b = draw(domain_values)
    low, high = min(a, b), max(a, b)
    if kind == "point":
        return Interval.point(low)
    if kind == "closed":
        return Interval.closed(low, high)
    if kind == "mixed" and allow_open:
        low_inc = draw(st.booleans())
        high_inc = draw(st.booleans())
        if low == high:
            low_inc = high_inc = True
        return Interval(low, high, low_inc, high_inc)
    if kind == "mixed":
        return Interval.closed(low, high)
    if kind == "low_unbounded":
        return (
            Interval.at_most(high) if not allow_open or draw(st.booleans())
            else Interval.less_than(high)
        )
    if kind == "high_unbounded":
        return (
            Interval.at_least(low) if not allow_open or draw(st.booleans())
            else Interval.greater_than(low)
        )
    return Interval.unbounded()


#: query points hitting endpoints, gaps (via halves), and out-of-range
query_points = st.one_of(
    st.integers(min_value=-5, max_value=45),
    st.sampled_from([v + 0.5 for v in range(-2, 43)]),
)
