"""Backend auto-selection: the decision procedure and live migrations.

Unit tests drive :class:`AutoSelector.decide` with a fake cost table
and ``tree=None`` profiles (pure, deterministic — no timing involved);
the integration tests force real migrations through
``PredicateIndex(auto_backend=True)`` and the concurrent facade and
assert the one invariant that matters: **match results are identical
before, during and after a live backend migration**, on the scalar,
batched, columnar and concurrent paths alike.
"""

import threading

import pytest

from repro import PredicateIndex
from repro.concurrency import ConcurrentPredicateIndex
from repro.core import Interval
from repro.db import Database
from repro.errors import PredicateError
from repro.match.autoselect import (
    DEFAULT_CANDIDATES,
    AttributeProfile,
    AutoSelector,
    migrate_attribute_tree,
)
from repro.match.registry import DEFAULT_REGISTRY
from repro.predicates import PredicateBuilder


class FakeCostTable:
    """Size-independent per-backend prices — decisions become arithmetic."""

    def __init__(self, stab, insert=None):
        self.stab = dict(stab)
        self.insert = dict(insert if insert is not None else {})

    def __contains__(self, backend):
        return backend in self.stab

    def stab_ms(self, backend, n):
        return self.stab[backend]

    def insert_ms(self, backend, n):
        return self.insert.get(backend, 0.0)


def selector_with(stab, current_evidence=(100, 0, 0), **kwargs):
    kwargs.setdefault("candidates", tuple(stab))
    kwargs.setdefault("cost_table", FakeCostTable(stab))
    kwargs.setdefault("min_evidence_ops", 10)
    kwargs.setdefault("trial_candidates", 0)
    selector = AutoSelector(**kwargs)
    stabs, inserts, deletes = current_evidence
    if stabs:
        selector.evidence.observe_stabs("r", {"a": stabs})
    for _ in range(inserts):
        selector.evidence.observe_insert("r", "a")
    for _ in range(deletes):
        selector.evidence.observe_delete("r", "a")
    return selector


def profile_for(selector, current="ibs", size=100, tree=None):
    return AttributeProfile(
        relation="r",
        attribute="a",
        size=size,
        current_backend=current,
        usage=selector.evidence.usage("r", "a"),
        tree=tree,
    )


class TestDecide:
    def test_below_evidence_floor_returns_none(self):
        selector = selector_with(
            {"ibs": 1.0, "flat": 0.1}, current_evidence=(5, 0, 0)
        )
        assert selector.decide(profile_for(selector)) is None

    def test_migrates_to_decisively_cheaper_backend(self):
        selector = selector_with({"ibs": 1.0, "flat": 0.1})
        decision = selector.decide(profile_for(selector))
        assert decision.migrate
        assert decision.chosen_backend == "flat"
        assert "migrate to flat" in decision.reason
        assert decision.costs_ms["flat"] < decision.costs_ms["ibs"]

    def test_hysteresis_keeps_close_calls(self):
        # flat at 0.9x of current does not clear the 0.8 ratio
        selector = selector_with({"ibs": 1.0, "flat": 0.9})
        decision = selector.decide(profile_for(selector))
        assert not decision.migrate
        assert decision.chosen_backend == "ibs"
        assert "kept" in decision.reason

    def test_same_backend_never_rebuilds_without_probe(self):
        # without a live probe the current cost IS the table's price,
        # so best == current can never clear the hysteresis margin
        selector = selector_with({"ibs": 1.0})
        decision = selector.decide(profile_for(selector))
        assert not decision.migrate

    def test_unknown_current_backend_assumes_parity(self):
        selector = selector_with({"ibs": 1.0, "flat": 1.0})
        decision = selector.decide(profile_for(selector, current="weird"))
        assert not decision.migrate
        assert decision.chosen_backend == "weird"

    def test_writes_price_against_insert_cost(self):
        # flat stabs cheaper but inserts are ruinous: a write-heavy
        # window must keep the tree
        table = FakeCostTable(
            {"ibs": 1.0, "flat": 0.1}, {"ibs": 0.1, "flat": 50.0}
        )
        selector = selector_with(
            {"ibs": 1.0, "flat": 0.1},
            cost_table=table,
            current_evidence=(10, 90, 0),
        )
        decision = selector.decide(profile_for(selector))
        assert not decision.migrate

    def test_decision_is_deterministic(self):
        dicts = []
        for _ in range(2):
            selector = selector_with({"ibs": 1.0, "flat": 0.1, "avl": 0.5})
            dicts.append(selector.decide(profile_for(selector)).as_dict())
        assert dicts[0] == dicts[1]

    def test_quarantine_blocks_choice_until_it_expires(self):
        selector = selector_with(
            {"ibs": 1.0, "flat": 0.1}, quarantine_passes=2
        )
        selector.begin_pass()
        decision = selector.decide(profile_for(selector))
        assert decision.chosen_backend == "flat"
        selector.commit(decision, False, error="factory exploded")
        assert decision.error == "factory exploded"
        assert not decision.migrated
        # next pass: flat is quarantined, nothing else beats ibs
        selector.begin_pass()
        decision = selector.decide(profile_for(selector))
        assert not decision.migrate
        # quarantine ages out after quarantine_passes passes
        selector.begin_pass()
        decision = selector.decide(profile_for(selector))
        assert decision.migrate and decision.chosen_backend == "flat"

    def test_commit_success_resets_evidence_and_records_history(self):
        selector = selector_with({"ibs": 1.0, "flat": 0.1})
        decision = selector.decide(profile_for(selector))
        selector.commit(decision, True)
        assert decision.migrated
        assert selector.evidence.usage("r", "a").total == 0
        assert selector.history == [decision]
        report = selector.report()
        assert report["migrations"][0]["chosen_backend"] == "flat"


class _SlowFakeTree:
    """Enumerable tree whose stabs look arbitrarily slow to a fake clock."""

    def __init__(self, n=8):
        self._items = [(i, Interval.closed(i, i + 1)) for i in range(n)]

    def items(self):
        return iter(self._items)

    def stab(self, value):
        return []


class TestLiveProbe:
    def test_probe_triggers_same_backend_rebuild(self):
        # the fake clock advances 1s per reading: the live tree probes
        # at ~seconds per stab while the table prices a healthy ibs at
        # microseconds — exactly the degenerate-shape escape hatch
        ticks = iter(range(1000))
        selector = selector_with(
            {"ibs": 0.0001},
            timer=lambda: float(next(ticks)),
        )
        decision = selector.decide(
            profile_for(selector, tree=_SlowFakeTree())
        )
        assert decision.migrate
        assert decision.chosen_backend == "ibs"
        assert decision.reason.startswith("rebuild on ibs")
        assert "probed" in decision.reason

    def test_trial_requires_enumerable_tree(self):
        selector = selector_with({"ibs": 1.0})
        assert selector._trial_stab_ms("ibs", object()) is None

    def test_empty_candidates_rejected(self):
        with pytest.raises(PredicateError):
            AutoSelector(candidates=())


def build_index(**kwargs):
    index = PredicateIndex(**kwargs)
    for i in range(60):
        low = i * 10
        index.add(
            PredicateBuilder("r")
            .between("a", low, low + 8)
            .build(ident=f"p{i}")
        )
    return index


def force_avl_table():
    # avl priced at zero forces a migration off any probed tree; ibs
    # priced high keeps the decision independent of machine speed
    return FakeCostTable({"ibs": 1.0, "avl": 0.0})


PROBES = [{"a": v} for v in (4, 15, 108, 255, 308, 402, 596, 9999, None)]


def auto_index(**kwargs):
    index = build_index(
        auto_backend=True,
        auto_cost_table=force_avl_table(),
        auto_candidates=("ibs", "avl"),
        min_evidence_ops=16,
        **kwargs,
    )
    # deterministic table-driven choice: no trial probes in tests
    index._selector.trial_candidates = 0
    return index


class TestPredicateIndexMigration:
    def test_match_results_identical_across_migration(self):
        index = auto_index()
        reference = build_index()
        expected_scalar = [
            sorted(p.ident for p in reference.match("r", tup))
            for tup in PROBES
        ]
        expected_batch = reference.match_batch("r", PROBES)
        # warm-up accumulates the evidence that clears the floor
        index.match_batch("r", PROBES)
        before = [
            sorted(p.ident for p in index.match("r", tup)) for tup in PROBES
        ]
        assert before == expected_scalar
        decisions = index.autoselect()
        migrated = [d for d in decisions if d.migrated]
        assert migrated, "the zero-priced avl candidate must win"
        assert index.attribute_backends("r")["a"] == "avl"
        after_scalar = [
            sorted(p.ident for p in index.match("r", tup)) for tup in PROBES
        ]
        after_batch = index.match_batch("r", PROBES)
        assert after_scalar == expected_scalar
        assert [
            [p.ident for p in row] for row in after_batch
        ] == [[p.ident for p in row] for row in expected_batch]

    def test_migration_bumps_epoch_and_keeps_cache_coherent(self):
        index = auto_index()
        index.match_batch("r", PROBES)
        old_tree = index.tree_for("r", "a")
        old_epoch = old_tree.epoch
        # populate the stab cache against the old tree's epoch
        for tup in PROBES:
            index.match("r", tup)
        assert index.autoselect()
        new_tree = index.tree_for("r", "a")
        assert new_tree is not old_tree
        assert new_tree.epoch > old_epoch
        # cached stabs keyed on the old epoch must not leak through
        reference = build_index()
        for tup in PROBES:
            assert sorted(p.ident for p in index.match("r", tup)) == sorted(
                p.ident for p in reference.match("r", tup)
            )

    def test_migration_counts_in_stats_and_report(self):
        index = auto_index()
        index.match_batch("r", PROBES)
        assert index.stats.backend_migrations == 0
        index.autoselect()
        assert index.stats.backend_migrations == 1
        report = index.tuning_report()
        assert report["migrations"][0]["chosen_backend"] == "avl"
        assert "r.a" in report["decisions"]
        # post-migration the evidence window restarted
        assert report["evidence"].get("r", {}).get("a", {"total": 0}).get(
            "total", 0
        ) == 0

    def test_periodic_autoselect_fires_on_interval(self):
        index = auto_index(autoselect_interval=32)
        for _ in range(3):
            index.match_batch("r", PROBES * 2)
        assert index.attribute_backends("r")["a"] == "avl"

    def test_columnar_plane_survives_migration(self):
        pytest.importorskip("numpy")
        index = auto_index(columnar=True)
        reference = build_index(columnar=True)
        expected = [
            [p.ident for p in row]
            for row in reference.match_batch("r", PROBES)
        ]
        assert [
            [p.ident for p in row] for row in index.match_batch("r", PROBES)
        ] == expected
        assert index.autoselect()
        assert [
            [p.ident for p in row] for row in index.match_batch("r", PROBES)
        ] == expected

    def test_failed_migration_is_transactional(self):
        index = auto_index()
        state = index._catalog.relations["r"]
        old_tree = state.trees["a"]
        expected = [
            sorted(p.ident for p in index.match("r", tup)) for tup in PROBES
        ]

        def exploding_factory():
            raise RuntimeError("no such backend today")

        with pytest.raises(RuntimeError):
            migrate_attribute_tree(
                index._catalog,
                index._store,
                "r",
                state,
                "a",
                "boom",
                exploding_factory,
                index._observer,
            )
        assert state.trees["a"] is old_tree
        assert index.stats.backend_migrations == 0
        assert [
            sorted(p.ident for p in index.match("r", tup)) for tup in PROBES
        ] == expected

    def test_entry_dropping_backend_is_rejected_before_commit(self):
        index = auto_index()
        state = index._catalog.relations["r"]
        old_tree = state.trees["a"]

        class Amnesiac:
            def bulk_load(self, pairs):
                pass

            def __len__(self):
                return 0

        with pytest.raises(PredicateError, match="dropped entries"):
            migrate_attribute_tree(
                index._catalog,
                index._store,
                "r",
                state,
                "a",
                "amnesiac",
                Amnesiac,
                index._observer,
            )
        assert state.trees["a"] is old_tree

    def test_run_pass_quarantines_failing_backend_and_continues(self):
        index = auto_index()
        index.match_batch("r", PROBES)
        selector = index._selector
        original = selector.factory_for

        def sabotage(backend):
            if backend == "avl":
                return lambda: (_ for _ in ()).throw(RuntimeError("boom"))
            return original(backend)

        selector.factory_for = sabotage
        decisions = index.autoselect()
        failed = [d for d in decisions if d.migrate and not d.migrated]
        assert failed and failed[0].error
        assert index.attribute_backends("r")["a"] in (None, "ibs")
        assert selector.report()["quarantine"]

    def test_disabled_index_raises(self):
        index = PredicateIndex()
        with pytest.raises(PredicateError, match="auto"):
            index.autoselect()
        with pytest.raises(PredicateError, match="auto"):
            index.tuning_report()


class TestRegistryAndDatabase:
    def test_auto_matcher_is_registered_with_capabilities(self):
        info = DEFAULT_REGISTRY.describe_matcher("auto")
        assert info["capabilities"]["auto_backend"]
        assert info["capabilities"]["self_tuning"]

    def test_create_matcher_auto_builds_selftuning_index(self):
        index = DEFAULT_REGISTRY.create_matcher("auto")
        assert index._selector is not None
        assert index.autoselect() == []  # empty index: nothing to tune

    def test_database_accepts_auto_matcher(self):
        db = Database(matcher="auto")
        assert db.default_matcher == "auto"

    def test_default_candidates_are_registered_backends(self):
        for backend in DEFAULT_CANDIDATES:
            assert backend in DEFAULT_REGISTRY.tree_backends()


class TestConcurrentFacade:
    def make_facade(self):
        facade = ConcurrentPredicateIndex(
            auto_backend=True,
            auto_cost_table=force_avl_table(),
            auto_candidates=("ibs", "avl"),
            min_evidence_ops=16,
        )
        facade._selector.trial_candidates = 0
        for i in range(60):
            low = i * 10
            facade.add(
                PredicateBuilder("r")
                .between("a", low, low + 8)
                .build(ident=f"p{i}")
            )
        return facade

    def test_migration_preserves_results_under_concurrent_readers(self):
        with self.make_facade() as facade:
            expected = {
                tup["a"]: frozenset(facade.match_idents("r", tup))
                for tup in PROBES
                if tup["a"] is not None
            }
            for _ in range(4):  # clear the evidence floor
                for tup in PROBES:
                    facade.match_idents("r", tup)
            mismatches = []
            stop = threading.Event()

            def reader():
                while not stop.is_set():
                    for value, want in expected.items():
                        got = frozenset(facade.match_idents("r", {"a": value}))
                        if got != want:
                            mismatches.append((value, got, want))
                            return

            threads = [threading.Thread(target=reader) for _ in range(2)]
            for thread in threads:
                thread.start()
            try:
                decisions = facade.autoselect()
            finally:
                stop.set()
                for thread in threads:
                    thread.join()
            assert not mismatches
            assert any(d.migrated for d in decisions)
            report = facade.tuning_report()
            assert report["backend_plan"] == {"r": {"a": "avl"}}
            for value, want in expected.items():
                assert frozenset(facade.match_idents("r", {"a": value})) == want

    def test_batch_results_survive_migration(self):
        with self.make_facade() as facade:
            expected = [
                [p.ident for p in row]
                for row in facade.match_batch("r", PROBES)
            ]
            for _ in range(4):
                facade.match_batch("r", PROBES)
            assert any(d.migrated for d in facade.autoselect())
            assert [
                [p.ident for p in row]
                for row in facade.match_batch("r", PROBES)
            ] == expected

    def test_writes_after_migration_land_on_the_plan_backend(self):
        with self.make_facade() as facade:
            for _ in range(4):
                facade.match_batch("r", PROBES)
            assert any(d.migrated for d in facade.autoselect())
            facade.add(
                PredicateBuilder("r").between("a", 7000, 7010).build(ident="late")
            )
            assert "late" in facade.match_idents("r", {"a": 7005})

    def test_disabled_facade_raises(self):
        with ConcurrentPredicateIndex() as facade:
            with pytest.raises(PredicateError, match="auto_backend=True"):
                facade.autoselect()
