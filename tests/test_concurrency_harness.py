"""Tests for the deterministic concurrency harness itself.

Two properties matter:

* **Reproducibility** — the same seed must produce the same schedule,
  the same interleaving, and therefore the same failure, every run.
* **Sensitivity** — the epoch checker must provably catch a race: a
  deliberately-unsynchronized toy structure, driven into a lost update
  by the seeded scheduler, must yield a ConcurrencyViolation; the
  properly-synchronized twin must not.
"""

import pytest

from repro.errors import ConcurrencyError, ConcurrencyViolation
from repro.testing.concurrency import (
    EpochChecker,
    InterleavingScheduler,
    SetReplayer,
    StressDriver,
    Violation,
)
from repro.concurrency import ConcurrentPredicateIndex


# ----------------------------------------------------------------------
# the scheduler
# ----------------------------------------------------------------------


def _three_step_run(seed):
    scheduler = InterleavingScheduler(seed=seed)
    trace = []

    def worker(name):
        for i in range(4):
            trace.append((name, i))
            scheduler.step()

    for name in ("a", "b", "c"):
        scheduler.spawn(worker, name, name=name)
    schedule = scheduler.run()
    return schedule, trace


def test_same_seed_same_schedule_and_trace():
    for seed in (0, 1, 7, 123):
        first = _three_step_run(seed)
        second = _three_step_run(seed)
        assert first == second


def test_different_seeds_differ():
    schedules = {tuple(_three_step_run(seed)[0]) for seed in range(8)}
    assert len(schedules) > 1


def test_threads_run_atomically_between_steps():
    """No preemption except at step(): counter increments can't interleave."""
    scheduler = InterleavingScheduler(seed=3)
    state = {"value": 0}

    def incrementer():
        for _ in range(50):
            # read-modify-write with no step() inside: must be atomic
            # under the cooperative scheduler even though both logical
            # threads are real threads.
            value = state["value"]
            state["value"] = value + 1
            scheduler.step()

    scheduler.spawn(incrementer, name="i1")
    scheduler.spawn(incrementer, name="i2")
    scheduler.run()
    assert state["value"] == 100


def test_scheduler_propagates_worker_exception_deterministically():
    def run_once():
        scheduler = InterleavingScheduler(seed=11)

        def fine():
            for _ in range(3):
                scheduler.step()

        def bad():
            scheduler.step()
            raise ValueError("boom")

        scheduler.spawn(fine, name="fine")
        scheduler.spawn(bad, name="bad")
        with pytest.raises(ValueError):
            scheduler.run()
        return scheduler.schedule

    assert run_once() == run_once()


def test_scheduler_guards_against_runaway_schedules():
    scheduler = InterleavingScheduler(seed=0)

    def spinner():
        while True:
            scheduler.step()

    scheduler.spawn(spinner, name="spin")
    with pytest.raises(ConcurrencyError):
        scheduler.run(max_slices=100)


def test_step_outside_managed_thread_is_noop():
    InterleavingScheduler(seed=0).step()  # must not hang or raise


# ----------------------------------------------------------------------
# the checker vs a deliberately racy structure
# ----------------------------------------------------------------------


class _ToyRegister:
    """An epoch-published set; ``racy=True`` removes the read snapshot
    of the check-then-act window (a classic lost update)."""

    def __init__(self, scheduler, checker, racy):
        self.scheduler = scheduler
        self.checker = checker
        self.racy = racy
        self.items = frozenset()
        self.epoch = 0

    def add(self, item):
        items = self.items
        if self.racy:
            # context-switch point inside the read-modify-write: another
            # writer's add can be lost when we resume.
            self.scheduler.step()
        self.items = items | {item}
        self.epoch += 1
        self.checker.record_op("toy", self.epoch, "add", item)

    def read(self):
        self.checker.record_observation("toy", self.epoch, None, self.items)


def _drive_toy(seed, racy):
    scheduler = InterleavingScheduler(seed=seed)
    checker = EpochChecker()
    register = _ToyRegister(scheduler, checker, racy=racy)

    def writer(item):
        register.add(item)
        scheduler.step()
        register.read()

    for item in ("a", "b", "c"):
        scheduler.spawn(writer, item, name=f"w-{item}")
    scheduler.run()
    return scheduler.schedule, checker.verify(lambda name: SetReplayer())


def _find_racy_seed():
    for seed in range(64):
        _, violations = _drive_toy(seed, racy=True)
        if violations:
            return seed
    raise AssertionError(
        "no seed in range(64) produced the lost update; scheduler is not "
        "exploring interleavings"
    )


def test_checker_catches_the_lost_update():
    seed = _find_racy_seed()
    _, violations = _drive_toy(seed, racy=True)
    assert violations, "checker missed a provable lost update"
    violation = violations[0]
    assert isinstance(violation, Violation)
    assert violation.channel == "toy"
    # the lost update manifests as an element the replay expected but
    # the racy structure dropped
    assert violation.expected - violation.observed


def test_racy_failure_reproduces_exactly_from_its_seed():
    seed = _find_racy_seed()
    runs = [_drive_toy(seed, racy=True) for _ in range(3)]
    schedules = [schedule for schedule, _ in runs]
    verdicts = [
        [(v.channel, v.epoch, v.observed, v.expected) for v in violations]
        for _, violations in runs
    ]
    assert schedules[0] == schedules[1] == schedules[2]
    assert verdicts[0] == verdicts[1] == verdicts[2]
    assert verdicts[0]  # and it *is* a failure


def test_synchronized_twin_passes_every_seed():
    for seed in range(16):
        _, violations = _drive_toy(seed, racy=False)
        assert violations == [], f"false positive at seed {seed}"


def test_checker_rejects_non_monotone_publication_log():
    checker = EpochChecker()
    checker.record_op("ch", 2, "add", "x")
    checker.record_op("ch", 1, "add", "y")
    with pytest.raises(ConcurrencyError):
        checker.verify(lambda name: SetReplayer())


def test_concurrency_violation_message_lists_divergences():
    violation = Violation("ch", 3, {"x": 1}, frozenset({"a"}), frozenset({"b"}))
    error = ConcurrencyViolation([violation])
    assert "ch@3" in str(error) and "missing" in str(error)


# ----------------------------------------------------------------------
# the stress driver plumbing
# ----------------------------------------------------------------------


def test_stress_driver_seed_determines_publication_log():
    """True-thread interleavings vary, but each thread's op script is
    seed-derived: the *multiset* of published operations is identical
    across runs with the same seed."""

    def published_ops(seed):
        idx = ConcurrentPredicateIndex(compaction_threshold=8)
        driver = StressDriver(
            idx, writers=2, readers=2, writer_ops=25, reader_ops=10, seed=seed
        )
        driver.run()
        ops = []
        for relation in driver.relations:
            for _, kind, payload in driver.checker.ops(relation):
                ident = payload if kind == "remove" else payload.ident
                ops.append((relation, kind, ident))
        return sorted(ops)

    assert published_ops(5) == published_ops(5)
    assert published_ops(5) != published_ops(6)


def test_stress_driver_rejects_empty_shapes():
    idx = ConcurrentPredicateIndex()
    with pytest.raises(ConcurrencyError):
        StressDriver(idx, writers=0, readers=1)
