"""The unified maintenance plane: scheduler, clock semantics, differentials.

Four layers of assurance, mirroring the disk tier's test discipline:

* **scheduler unit behaviour** — deterministic due-ness off the op
  clock, priority-then-registration run order, op-space exponential
  backoff, quarantine after repeated failure with manual revival, task
  budgets, and a json-serializable ``report()``;
* **unified op-count semantics** (satellite 1) — exactly one clock per
  index, one tick per matched tuple and per predicate write, batch ops
  tick ``len(batch)``, ``match_with_candidates`` ticks nothing, and a
  frozen index never ticks;
* **differential guarantee** — a maintained index (retune, autoselect,
  compaction, checkpointing, eviction all firing mid-stream) must
  answer every match exactly like a never-ticked twin, across the
  scalar, columnar, auto-selecting, concurrent, and disk
  configurations, over every seeded scenario family — and stay
  equivalent when each ``maint.*`` fault site fires;
* **crash drills** — ``maint.task_raises`` is contained as a
  dead-letter entry, ``maint.tick_during_migration`` aborts before the
  commit point leaving the old tree live, and
  ``maint.checkpoint_preempted`` / budget-preempted checkpoints leave a
  manifest a cold start still recovers from.

Environment knobs (CI's maintenance-stress job turns them up):

* ``MAINT_SEEDS`` — comma-separated differential/drill seeds
  (default 0,1,2).
"""

import json
import os
import random

import pytest

from repro.concurrency.facade import ConcurrentPredicateIndex
from repro.core.intervals import Interval
from repro.core.predicate_index import PredicateIndex
from repro.db import Database
from repro.disk.checkpoint import DiskCheckpointer, recover_concurrent
from repro.errors import InjectedFault, PredicateError
from repro.maintenance import (
    CallbackTask,
    MaintenanceBudget,
    MaintenanceClock,
    MaintenancePolicy,
    MaintenanceScheduler,
)
from repro.match.observer import MatchStatistics, StatsObserver
from repro.predicates.clauses import IntervalClause
from repro.predicates.predicate import Predicate
from repro.rules import RuleEngine
from repro.testing.concurrency import InterleavingScheduler
from repro.testing.faults import FAULT_SITES, FaultInjector, injected
from repro.workloads.scenarios import scenario_names, synthesize

MAINT_SEEDS = [int(s) for s in os.environ.get("MAINT_SEEDS", "0,1,2").split(",")]

MAINT_SITES = [
    "maint.task_raises",
    "maint.tick_during_migration",
    "maint.checkpoint_preempted",
]


def make_pred(rng, relation, i):
    a, b = sorted(round(rng.uniform(-100, 100), 3) for _ in range(2))
    return Predicate(
        relation, [IntervalClause("x", Interval.closed(a, b))], ident=f"{relation}-{i}"
    )


def match_table(index, relation, tuples):
    return [sorted(index.match(relation, t), key=repr) for t in tuples]


def sorted_rows(rows):
    return [sorted(row, key=repr) for row in rows]


# ----------------------------------------------------------------------
# scheduler unit behaviour
# ----------------------------------------------------------------------


class TestSchedulerUnit:
    def test_all_maint_sites_registered(self):
        for site in MAINT_SITES:
            assert site in FAULT_SITES

    def test_fires_on_interval_deterministically(self):
        sched = MaintenanceScheduler()
        fired = []
        sched.register_callback(
            "t", lambda budget, relation: fired.append(sched.clock.ops), interval_ops=10
        )
        for _ in range(35):
            sched.advance(1)
        assert fired == [10, 20, 30]

    def test_bulk_advance_runs_task_once_per_tick(self):
        # a single advance(25) crosses the interval twice but runs the
        # task once — due-ness is re-anchored at the run, not replayed
        sched = MaintenanceScheduler()
        fired = []
        sched.register_callback(
            "t", lambda budget, relation: fired.append(sched.clock.ops), interval_ops=10
        )
        sched.advance(25)
        assert fired == [25]
        sched.advance(10)
        assert fired == [25, 35]

    def test_priority_then_registration_order(self):
        sched = MaintenanceScheduler()
        order = []
        sched.register_callback(
            "low", lambda b, r: order.append("low"), interval_ops=5, priority=1
        )
        sched.register_callback(
            "high", lambda b, r: order.append("high"), interval_ops=5, priority=9
        )
        sched.register_callback(
            "tie", lambda b, r: order.append("tie"), interval_ops=5, priority=1
        )
        sched.advance(5)
        assert order == ["high", "low", "tie"]

    def test_backoff_is_exponential_in_op_space(self):
        policy = MaintenancePolicy(
            backoff_multiplier=2.0, max_backoff_intervals=8.0, quarantine_failures=99
        )
        sched = MaintenanceScheduler(policy)

        def boom(budget, relation):
            raise RuntimeError("maintenance exploded")

        sched.register_callback("boom", boom, interval_ops=5)
        expected_scale = [1, 2, 4, 8, 8]  # capped at max_backoff_intervals
        for scale in expected_scale:
            state = sched._tasks["boom"]
            target = state.next_due_ops
            sched.advance(target - sched.clock.ops)
            assert sched._tasks["boom"].next_due_ops == sched.clock.ops + 5 * scale

    def test_quarantine_and_manual_revival(self):
        policy = MaintenancePolicy(quarantine_failures=2)
        sched = MaintenanceScheduler(policy)
        healthy = {"value": False}

        def flaky(budget, relation):
            if not healthy["value"]:
                raise RuntimeError("still broken")
            return "ok"

        sched.register_callback("flaky", flaky, interval_ops=3)
        for _ in range(30):
            sched.advance(1)
        state = sched._tasks["flaky"]
        assert state.quarantined
        assert state.failures == 2  # quarantine stopped the bleeding
        assert sched.failures[-1].quarantined
        # advance never revives a quarantined task ...
        runs_before = state.runs
        sched.advance(100)
        assert state.runs == runs_before
        # ... a failing manual run raises and stays quarantined ...
        with pytest.raises(RuntimeError):
            sched.run_task("flaky")
        assert sched._tasks["flaky"].quarantined
        # ... and a successful manual run clears it for good
        healthy["value"] = True
        assert sched.run_task("flaky") == "ok"
        assert not sched._tasks["flaky"].quarantined
        sched.advance(3)
        assert sched._tasks["flaky"].runs > runs_before + 1

    def test_advance_never_raises_and_dead_letters(self):
        sched = MaintenanceScheduler()

        def boom(budget, relation):
            raise ValueError("kaboom")

        sched.register_callback("boom", boom, interval_ops=2)
        ran = sched.advance(2, relation="emp")
        assert ran == ["boom"]
        failure = sched.failures[0]
        assert failure.task == "boom"
        assert failure.relation == "emp"
        assert "ValueError" in failure.describe()

    def test_budget_caps_spent_ops(self):
        policy = MaintenancePolicy(budget_ops=3)
        sched = MaintenanceScheduler(policy)
        seen = []

        def worker(budget, relation):
            while not budget.exhausted():
                budget.charge(1)
            seen.append(budget.spent_ops)

        sched.register_callback("worker", worker, interval_ops=1)
        sched.advance(1)
        assert seen == [3]

    def test_timed_trigger_with_injected_clock(self):
        fake = {"now": 0.0}
        policy = MaintenancePolicy(time_source=lambda: fake["now"])
        sched = MaintenanceScheduler(policy)
        fired = []
        sched.register_callback(
            "timed", lambda b, r: fired.append(fake["now"]), interval_seconds=5.0
        )
        sched.advance(1)
        assert fired == []
        fake["now"] = 6.0
        sched.advance(1)
        assert fired == [6.0]

    def test_observer_counts_runs_and_failures(self):
        observer = StatsObserver(MatchStatistics())
        sched = MaintenanceScheduler(observer=observer)
        calls = {"n": 0}

        def flaky(budget, relation):
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("no")

        sched.register_callback("flaky", flaky, interval_ops=2)
        for _ in range(4):
            sched.advance(1)
        assert observer.stats.maintenance_runs == 2
        assert observer.stats.maintenance_failures == 1

    def test_report_is_json_serializable(self):
        sched = MaintenanceScheduler(MaintenancePolicy(budget_ops=4))
        sched.register_callback("t", lambda b, r: None, interval_ops=7)
        sched.register_callback(
            "boom", lambda b, r: 1 / 0, interval_ops=3, cost_class="io"
        )
        sched.advance(9)
        doc = json.loads(json.dumps(sched.report()))
        assert doc["clock_ops"] == 9
        assert set(doc["tasks"]) == {"t", "boom"}
        assert doc["tasks"]["boom"]["failures"] == 1
        assert doc["failures"]

    def test_registration_errors(self):
        sched = MaintenanceScheduler()
        sched.register_callback("t", lambda b, r: None, interval_ops=1)
        with pytest.raises(ValueError):
            sched.register_callback("t", lambda b, r: None, interval_ops=1)
        with pytest.raises(ValueError):
            CallbackTask("", lambda b, r: None, interval_ops=1)
        with pytest.raises(ValueError):
            CallbackTask("x", lambda b, r: None)  # no trigger at all
        with pytest.raises(ValueError):
            CallbackTask("x", lambda b, r: None, interval_ops=0)
        with pytest.raises(ValueError):
            CallbackTask("x", lambda b, r: None, interval_ops=1, cost_class="warp")
        with pytest.raises(KeyError):
            sched.run_task("missing")

    def test_clock_rejects_negative_advance(self):
        clock = MaintenanceClock()
        with pytest.raises(ValueError):
            clock.advance(-1)

    def test_disabled_policy_runs_nothing(self):
        sched = MaintenanceScheduler(MaintenancePolicy(enabled=False))
        fired = []
        sched.register_callback("t", lambda b, r: fired.append(1), interval_ops=1)
        sched.advance(10)
        assert fired == []
        assert sched.clock.ops == 10  # the clock still counts

    def test_budget_time_limit_uses_injected_timer(self):
        fake = {"now": 0.0}
        budget = MaintenanceBudget(seconds=1.0, timer=lambda: fake["now"])
        assert not budget.exhausted()
        fake["now"] = 2.0
        assert budget.exhausted()
        # without a timer a seconds limit is inert, never a crash
        assert not MaintenanceBudget(seconds=0.001).exhausted()


# ----------------------------------------------------------------------
# unified op-count semantics (satellite 1)
# ----------------------------------------------------------------------


class TestUnifiedOpSemantics:
    def _index(self):
        return PredicateIndex(maintenance=MaintenancePolicy(retune_interval=10_000))

    def test_one_tick_per_write_and_per_matched_tuple(self):
        rng = random.Random(0)
        index = self._index()
        clock = index.maintenance_scheduler.clock
        preds = [make_pred(rng, "emp", i) for i in range(6)]
        index.add(preds[0])
        assert clock.ops == 1
        index.add_many(preds[1:5])
        assert clock.ops == 5
        index.remove(preds[4].ident)
        assert clock.ops == 6
        index.match("emp", {"x": 1.0})
        assert clock.ops == 7
        index.match_idents("emp", {"x": 1.0})
        assert clock.ops == 8
        index.match_batch("emp", [{"x": 1.0}, {"x": 2.0}, {"x": 3.0}])
        assert clock.ops == 11
        # the explain/diagnostic path is free
        index.match_with_candidates("emp", {"x": 1.0})
        assert clock.ops == 11
        index.match_batch("emp", [])
        assert clock.ops == 11

    def test_frozen_index_never_ticks(self):
        rng = random.Random(1)
        index = self._index()
        for i in range(4):
            index.add(make_pred(rng, "emp", i))
        index.freeze()
        before = index.maintenance_scheduler.clock.ops
        index.match("emp", {"x": 0.0})
        index.match_batch("emp", [{"x": 0.0}] * 5)
        assert index.maintenance_scheduler.clock.ops == before

    def test_no_bespoke_counters_remain(self):
        # the pre-refactor per-feature counters are gone: one clock only
        index = PredicateIndex(adaptive=True, auto_retune_interval=16)
        assert not hasattr(index, "_tuples_since_retune")
        assert not hasattr(index, "_tuples_since_autoselect")

    def test_legacy_sugar_maps_to_policy_intervals(self):
        index = PredicateIndex(
            adaptive=True, min_feedback_tuples=8, auto_retune_interval=20
        )
        report = index.maintenance_report()
        assert report["enabled"]
        assert report["tasks"]["retune"]["interval_ops"] == 20
        auto = PredicateIndex(auto_backend=True, autoselect_interval=48)
        assert auto.maintenance_report()["tasks"]["autoselect"]["interval_ops"] == 48

    def test_policy_wins_over_legacy_sugar(self):
        index = PredicateIndex(
            adaptive=True,
            auto_retune_interval=20,
            maintenance=MaintenancePolicy(retune_interval=64),
        )
        assert index.maintenance_report()["tasks"]["retune"]["interval_ops"] == 64

    def test_plain_index_has_no_scheduler(self):
        index = PredicateIndex()
        assert index.maintenance_scheduler is None
        report = index.maintenance_report()
        assert report == {"enabled": False, "clock_ops": 0, "tasks": {}, "failures": []}

    def test_retune_and_autoselect_share_one_clock(self):
        rng = random.Random(2)
        index = PredicateIndex(
            adaptive=True,
            min_feedback_tuples=8,
            auto_backend=True,
            min_evidence_ops=8,
            maintenance=MaintenancePolicy(retune_interval=10, autoselect_interval=20),
        )
        for i in range(5):
            index.add(make_pred(rng, "emp", i))
        for _ in range(20):
            index.match("emp", {"x": rng.uniform(-100, 100)})
        report = index.maintenance_report()
        assert report["clock_ops"] == 25
        assert report["tasks"]["retune"]["runs"] >= 2
        assert report["tasks"]["autoselect"]["runs"] >= 1

    def test_scalar_stats_count_maintenance_runs(self):
        rng = random.Random(3)
        index = PredicateIndex(
            adaptive=True,
            min_feedback_tuples=4,
            maintenance=MaintenancePolicy(retune_interval=8),
        )
        for i in range(4):
            index.add(make_pred(rng, "emp", i))
        for _ in range(20):
            index.match("emp", {"x": 0.0})
        assert index.stats.maintenance_runs >= 1
        assert index.stats.maintenance_failures == 0


# ----------------------------------------------------------------------
# capability gating of autoselect candidates (satellite 2)
# ----------------------------------------------------------------------


class TestCapabilityGating:
    GATED = ["segment", "static-interval", "disk"]

    def test_gated_backends_never_reach_tuning_report_candidates(self):
        index = PredicateIndex(
            auto_backend=True,
            auto_candidates=["ibs", "avl"] + self.GATED,
            min_evidence_ops=8,
        )
        report = index.tuning_report()
        assert set(report["candidates"]) == {"ibs", "avl"}
        for name in self.GATED:
            assert name in report["excluded_candidates"]
        reasons = report["excluded_candidates"]
        assert "disk" in reasons and "disk-backed" in reasons["disk"]

    def test_gated_backends_never_chosen_by_autoselect(self):
        rng = random.Random(5)
        index = PredicateIndex(
            auto_backend=True,
            auto_candidates=["ibs", "avl", "flat"] + self.GATED,
            min_evidence_ops=8,
        )
        for i in range(40):
            index.add(make_pred(rng, "emp", i))
        for _ in range(200):
            index.match("emp", {"x": rng.uniform(-100, 100)})
        decisions = index.autoselect()
        report = index.tuning_report()
        gated = set(self.GATED)
        for decision in decisions:
            assert decision.chosen_backend not in gated
        for entry in report["decisions"].values():
            assert entry.get("chosen_backend") not in gated
        for entry in report["migrations"]:
            assert entry.get("chosen_backend") not in gated

    def test_all_candidates_gated_is_a_configuration_error(self):
        with pytest.raises(PredicateError):
            PredicateIndex(auto_backend=True, auto_candidates=self.GATED)

    def test_unknown_candidate_passes_through_ungated(self):
        # unknown names keep the legacy behaviour: accepted here, the
        # error surfaces at trial-build time with the registry's message
        index = PredicateIndex(auto_backend=True, auto_candidates=["ibs", "not-a-tree"])
        assert "not-a-tree" in index.tuning_report()["candidates"]


# ----------------------------------------------------------------------
# determinism under an adversarial interleaving
# ----------------------------------------------------------------------


class TestInterleavedDeterminism:
    @staticmethod
    def _drive(seed):
        sched = MaintenanceScheduler(MaintenancePolicy())
        log = []
        sched.register_callback(
            "tick", lambda b, r: log.append(sched.clock.ops), interval_ops=7, priority=1
        )
        sched.register_callback(
            "slow", lambda b, r: log.append(-sched.clock.ops), interval_ops=13
        )
        il = InterleavingScheduler(seed=seed)

        def worker():
            for _ in range(40):
                sched.advance(1)
                il.step()

        il.spawn(worker, name="a")
        il.spawn(worker, name="b")
        il.run()
        return log, sched.report()["tasks"]

    @pytest.mark.parametrize("seed", MAINT_SEEDS)
    def test_same_seed_same_schedule_same_maintenance(self, seed):
        first = self._drive(seed)
        second = self._drive(seed)
        assert first == second
        log, tasks = first
        assert sum(tasks[name]["runs"] for name in tasks) == len(log)
        assert tasks["tick"]["runs"] + tasks["slow"]["runs"] > 0

    @pytest.mark.parametrize("seed", MAINT_SEEDS)
    def test_concurrent_ticks_are_never_lost(self, seed):
        sched = MaintenanceScheduler(MaintenancePolicy())
        sched.register_callback("t", lambda b, r: None, interval_ops=9)
        il = InterleavingScheduler(seed=seed)

        def worker(n):
            for _ in range(n):
                sched.advance(1)
                il.step()

        il.spawn(worker, 30, name="a")
        il.spawn(worker, 30, name="b")
        il.spawn(worker, 30, name="c")
        il.run()
        assert sched.clock.ops == 90


# ----------------------------------------------------------------------
# the differential guarantee: maintained index ≡ never-ticked twin
# ----------------------------------------------------------------------

CONFIGS = ["scalar", "autoselect", "columnar", "concurrent", "disk"]


def build_index(config, maintained, tmp_path, tag):
    policy = (
        MaintenancePolicy(
            retune_interval=48,
            autoselect_interval=128,
            compact_interval=64,
            checkpoint_interval=96,
            evict_interval=80,
        )
        if maintained
        else None
    )
    checkpointer = None
    if config == "scalar":
        index = PredicateIndex(
            adaptive=True, min_feedback_tuples=16, maintenance=policy
        )
    elif config == "autoselect":
        index = PredicateIndex(
            auto_backend=True, min_evidence_ops=32, maintenance=policy
        )
    elif config == "columnar":
        index = PredicateIndex(columnar=True, maintenance=policy)
    elif config == "concurrent":
        index = ConcurrentPredicateIndex(maintenance=policy)
    elif config == "disk":
        index = ConcurrentPredicateIndex(
            storage="disk",
            data_dir=str(tmp_path / f"{tag}-disk"),
            compaction_threshold=16,
            maintenance=policy,
        )
        if maintained:
            checkpointer = DiskCheckpointer(index)
    else:  # pragma: no cover - parametrize guards this
        raise AssertionError(config)
    return index, checkpointer


def drive_and_collect(index, scenario, rng):
    """Apply one scenario and return every answer the index gave."""
    relation = scenario.spec.relation
    outputs = []
    for predicate in scenario.predicates():
        index.add(predicate)
    for op, payload in scenario.churn():
        if op == "add":
            index.add(payload)
        else:
            index.remove(payload)
    for batch in scenario.batches():
        outputs.append(sorted_rows(index.match_batch(relation, batch)))
    sweep = [{"x": rng.uniform(-120, 120)} for _ in range(60)]
    outputs.append(match_table(index, relation, sweep))
    outputs.append([sorted(index.match_idents(relation, t)) for t in sweep[:10]])
    return outputs


class TestTickVsTwinDifferential:
    @pytest.mark.parametrize("config", CONFIGS)
    @pytest.mark.parametrize("seed", MAINT_SEEDS)
    def test_maintained_index_equals_never_ticked_twin(
        self, tmp_path, config, seed
    ):
        for family in scenario_names():
            scenario = synthesize(family, seed=seed, scale=0.2)
            ticked, checkpointer = build_index(
                config, True, tmp_path, f"{family}-{seed}-t"
            )
            twin, _ = build_index(config, False, tmp_path, f"{family}-{seed}-n")
            got = drive_and_collect(ticked, scenario, random.Random(seed))
            want = drive_and_collect(twin, scenario, random.Random(seed))
            assert got == want, (config, family, seed)
            if config != "disk":
                report = ticked.maintenance_report()
                assert report["enabled"] and report["clock_ops"] > 0
                assert not report["failures"], (config, family, report["failures"])
            if checkpointer is not None:
                checkpointer.close()

    @pytest.mark.parametrize("site", MAINT_SITES)
    @pytest.mark.parametrize("seed", MAINT_SEEDS)
    def test_equivalence_survives_every_maint_fault_site(
        self, tmp_path, site, seed
    ):
        # each site fires on its natural configuration: the scheduler
        # absorbs the injected fault and matching must not notice
        config = {
            "maint.task_raises": "scalar",
            "maint.tick_during_migration": "autoselect",
            "maint.checkpoint_preempted": "disk",
        }[site]
        scenario = synthesize("churn-heavy", seed=seed, scale=0.2)
        ticked, checkpointer = build_index(config, True, tmp_path, f"{site}-{seed}-t")
        twin, _ = build_index(config, False, tmp_path, f"{site}-{seed}-n")
        with injected(FaultInjector(seed=seed)) as injector:
            injector.arm(site, at_hit=1)
            got = drive_and_collect(ticked, scenario, random.Random(seed))
        want = drive_and_collect(twin, scenario, random.Random(seed))
        assert got == want, (site, seed)
        if injector.fired and site == "maint.task_raises":
            report = ticked.maintenance_report()
            assert report["failures"], site
        if checkpointer is not None:
            checkpointer.close()


# ----------------------------------------------------------------------
# crash drills per fault site
# ----------------------------------------------------------------------


class TestMaintCrashDrills:
    @pytest.mark.parametrize("seed", MAINT_SEEDS)
    def test_task_raises_is_contained_and_dead_lettered(self, seed):
        rng = random.Random(seed)
        index = PredicateIndex(
            adaptive=True,
            min_feedback_tuples=4,
            maintenance=MaintenancePolicy(retune_interval=8, quarantine_failures=99),
        )
        for i in range(6):
            index.add(make_pred(rng, "emp", i))
        with injected(FaultInjector(seed=seed)) as injector:
            injector.arm("maint.task_raises", at_hit=1)
            for _ in range(20):
                index.match("emp", {"x": rng.uniform(-100, 100)})
            assert injector.fired
        report = index.maintenance_report()
        assert any("InjectedFault" in line for line in report["failures"])
        # matching carried on; a later tick runs maintenance again
        for _ in range(20):
            index.match("emp", {"x": rng.uniform(-100, 100)})
        after = index.maintenance_report()
        assert after["tasks"]["retune"]["runs"] > report["tasks"]["retune"]["runs"]

    @pytest.mark.parametrize("seed", MAINT_SEEDS)
    def test_tick_during_migration_aborts_before_commit(self, seed):
        from repro.core.flat_ibs_tree import FlatIBSTree
        from repro.match.autoselect import migrate_attribute_tree

        rng = random.Random(seed)
        victim = PredicateIndex(auto_backend=True, min_evidence_ops=8)
        twin = PredicateIndex(auto_backend=True, min_evidence_ops=8)
        for i in range(50):
            pred = make_pred(rng, "emp", i)
            victim.add(pred)
            twin.add(pred)
        probes = [{"x": rng.uniform(-100, 100)} for _ in range(150)]
        state = victim._catalog.relations["emp"]
        old_tree = state.trees["x"]
        backends_before = victim.attribute_backends("emp")
        with injected(FaultInjector(seed=seed)) as injector:
            injector.arm("maint.tick_during_migration", at_hit=1)
            with pytest.raises(InjectedFault):
                migrate_attribute_tree(
                    victim._catalog,
                    victim._store,
                    "emp",
                    state,
                    "x",
                    "flat",
                    FlatIBSTree,
                    victim._observer,
                )
            assert injector.fired
        # the abort landed before the commit point: old tree still live
        assert state.trees["x"] is old_tree
        assert victim.attribute_backends("emp") == backends_before
        assert victim.stats.backend_migrations == 0
        assert match_table(victim, "emp", probes) == match_table(twin, "emp", probes)

    @pytest.mark.parametrize("seed", MAINT_SEEDS)
    def test_checkpoint_preempted_recovers_to_twin(self, tmp_path, seed):
        rng = random.Random(seed)
        victim_dir = str(tmp_path / "victim")
        victim = ConcurrentPredicateIndex(
            storage="disk",
            data_dir=victim_dir,
            compaction_threshold=16,
            maintenance=MaintenancePolicy(checkpoint_interval=40),
        )
        ck = DiskCheckpointer(victim)
        assert "checkpoint" in victim.maintenance_scheduler.tasks()
        twin = ConcurrentPredicateIndex(
            storage="disk", data_dir=str(tmp_path / "twin"), compaction_threshold=16
        )
        preds = [make_pred(rng, "emp", i) for i in range(30)]
        preds += [make_pred(rng, "dept", i) for i in range(30)]
        with injected(FaultInjector(seed=seed)) as injector:
            injector.arm("maint.checkpoint_preempted", at_hit=1)
            for p in preds:
                victim.add(p)
            for _ in range(60):
                victim.match("emp", {"x": rng.uniform(-100, 100)})
            assert injector.fired
        # the scheduler dead-lettered the preempted checkpoint run
        assert any(
            "InjectedFault" in line
            for line in victim.maintenance_report()["failures"]
        )
        ck.close()
        for p in preds:
            twin.add(p)
        recovered = recover_concurrent(victim_dir, compaction_threshold=16)
        tuples = [{"x": rng.uniform(-120, 120)} for _ in range(150)]
        for rel in ("emp", "dept"):
            assert match_table(recovered, rel, tuples) == match_table(
                twin, rel, tuples
            ), (seed, rel)

    @pytest.mark.parametrize("seed", MAINT_SEEDS)
    def test_budgeted_checkpoint_partial_coverage_recovers(self, tmp_path, seed):
        rng = random.Random(seed)
        victim_dir = str(tmp_path / "budget")
        victim = ConcurrentPredicateIndex(storage="disk", data_dir=victim_dir)
        ck = DiskCheckpointer(victim)
        for i in range(20):
            victim.add(make_pred(rng, "emp", i))
        for i in range(20):
            victim.add(make_pred(rng, "dept", i))
        # a budget of one op checkpoints at most one shard per pass;
        # the manifest it publishes must still be a valid recovery point
        ck.checkpoint(budget=MaintenanceBudget(ops=1))
        ck.close()
        # an identical twin rebuilt from the same deterministic stream
        twin = ConcurrentPredicateIndex(
            storage="disk", data_dir=str(tmp_path / "twin")
        )
        rng2 = random.Random(seed)
        for i in range(20):
            twin.add(make_pred(rng2, "emp", i))
        for i in range(20):
            twin.add(make_pred(rng2, "dept", i))
        recovered = recover_concurrent(victim_dir)
        tuples = [{"x": rng.uniform(-120, 120)} for _ in range(120)]
        for rel in ("emp", "dept"):
            assert match_table(recovered, rel, tuples) == match_table(
                twin, rel, tuples
            ), (seed, rel)


# ----------------------------------------------------------------------
# facade and database surfaces
# ----------------------------------------------------------------------


class TestFacadeMaintenance:
    def test_compact_task_fires_and_stats_count(self):
        rng = random.Random(9)
        index = ConcurrentPredicateIndex(
            maintenance=MaintenancePolicy(compact_interval=20)
        )
        for i in range(10):
            index.add(make_pred(rng, "emp", i))
        for _ in range(15):
            index.match("emp", {"x": 0.0})
        report = index.maintenance_report()
        assert report["tasks"]["compact"]["runs"] >= 1
        assert index.maintenance_stats.maintenance_runs >= 1
        assert index.maintenance_stats.maintenance_failures == 0

    def test_evict_task_only_registers_on_disk_storage(self, tmp_path):
        memory = ConcurrentPredicateIndex(
            maintenance=MaintenancePolicy(compact_interval=20, evict_interval=20)
        )
        assert "evict" not in memory.maintenance_scheduler.tasks()
        disk = ConcurrentPredicateIndex(
            storage="disk",
            data_dir=str(tmp_path / "d"),
            maintenance=MaintenancePolicy(evict_interval=20),
        )
        assert "evict" in disk.maintenance_scheduler.tasks()

    def test_policy_threshold_feeds_shard_compaction(self):
        index = ConcurrentPredicateIndex(
            maintenance=MaintenancePolicy(compaction_threshold=7)
        )
        assert index._compaction_threshold == 7
        # an explicit constructor threshold still wins over the policy
        explicit = ConcurrentPredicateIndex(
            compaction_threshold=99,
            maintenance=MaintenancePolicy(compaction_threshold=7),
        )
        assert explicit._compaction_threshold == 99

    def test_facade_without_policy_has_no_scheduler(self):
        index = ConcurrentPredicateIndex()
        assert index.maintenance_scheduler is None
        assert index.maintenance_report()["enabled"] is False


class TestDatabaseSurface:
    def test_policy_threads_through_to_engine_matcher(self):
        policy = MaintenancePolicy(retune_interval=8)
        db = Database(matcher="ibs", maintenance=policy)
        db.create_relation("emp", ["salary"])
        engine = RuleEngine(db)
        sched = engine.matcher.maintenance_scheduler
        assert sched is not None and sched.policy is policy
        engine.create_rule(
            "r",
            on="emp",
            condition="10 <= salary <= 20",
            action=lambda ctx: None,
        )
        for _ in range(10):
            db.insert("emp", {"salary": 15})
        assert sched.clock.ops > 0

    def test_baseline_matchers_ignore_the_policy(self):
        db = Database(
            matcher="sequential", maintenance=MaintenancePolicy(retune_interval=8)
        )
        db.create_relation("emp", ["salary"])
        engine = RuleEngine(db)
        assert not hasattr(engine.matcher, "maintenance_scheduler")
