"""Unit tests for Predicate, PredicateGroup, and clause normalization."""

import pytest

from repro import (
    EqualityClause,
    FunctionClause,
    Interval,
    IntervalClause,
    Predicate,
    PredicateGroup,
)
from repro.errors import PredicateError
from repro.predicates import PredicateBuilder
from repro.predicates.predicate import _Contradiction, normalize_clauses


def is_odd(x):
    return x % 2 == 1


def emp_pred(*clauses):
    return Predicate("emp", clauses)


class TestPredicate:
    def test_conjunction_semantics(self):
        pred = emp_pred(
            IntervalClause("salary", Interval.less_than(20000)),
            IntervalClause("age", Interval.greater_than(50)),
        )
        assert pred.matches({"salary": 15000, "age": 60})
        assert not pred.matches({"salary": 15000, "age": 40})
        assert not pred.matches({"salary": 25000, "age": 60})

    def test_empty_predicate_matches_everything(self):
        assert emp_pred().matches({"anything": 1})
        assert emp_pred().matches({})

    def test_indexable_partition(self):
        pred = emp_pred(
            EqualityClause("dept", "Shoe"),
            FunctionClause("age", is_odd),
        )
        assert len(pred.indexable_clauses()) == 1
        assert len(pred.non_indexable_clauses()) == 1
        assert pred.is_indexable

    def test_not_indexable(self):
        pred = emp_pred(FunctionClause("age", is_odd))
        assert not pred.is_indexable

    def test_attributes_deduplicated_in_order(self):
        pred = emp_pred(
            IntervalClause("b", Interval.at_least(1)),
            IntervalClause("a", Interval.at_least(1)),
            IntervalClause("b", Interval.at_most(9)),
        )
        assert pred.attributes() == ["b", "a"]

    def test_idents_unique_and_stable(self):
        a, b = emp_pred(), emp_pred()
        assert a.ident != b.ident
        c = Predicate("emp", (), ident="custom")
        assert c.ident == "custom"

    def test_identity_semantics(self):
        a = Predicate("emp", (), ident="x")
        b = Predicate("emp", (), ident="x")
        assert a == b and hash(a) == hash(b)

    def test_relation_required(self):
        with pytest.raises(PredicateError):
            Predicate("", ())

    def test_clause_type_checked(self):
        with pytest.raises(PredicateError):
            Predicate("emp", ["not a clause"])

    def test_str(self):
        pred = emp_pred(EqualityClause("dept", "Shoe"))
        assert str(pred) == "emp: dept = 'Shoe'"
        assert str(emp_pred()) == "emp: true"


class TestNormalization:
    def test_merge_intervals_same_attribute(self):
        pred = emp_pred(
            IntervalClause("x", Interval.at_least(3)),
            IntervalClause("x", Interval.at_most(9)),
        )
        norm = pred.normalized()
        assert len(norm.clauses) == 1
        assert norm.clauses[0].interval == Interval.closed(3, 9)

    def test_merge_to_point_becomes_equality(self):
        pred = emp_pred(
            IntervalClause("x", Interval.at_least(5)),
            IntervalClause("x", Interval.at_most(5)),
        )
        norm = pred.normalized()
        assert isinstance(norm.clauses[0], EqualityClause)
        assert norm.clauses[0].value == 5

    def test_contradiction_returns_none(self):
        pred = emp_pred(
            IntervalClause("x", Interval.less_than(3)),
            IntervalClause("x", Interval.greater_than(9)),
        )
        assert pred.normalized() is None

    def test_touching_open_bounds_contradict(self):
        pred = emp_pred(
            IntervalClause("x", Interval.less_than(5)),
            IntervalClause("x", Interval.greater_than(5)),
        )
        assert pred.normalized() is None

    def test_touching_closed_bounds_intersect_to_point(self):
        pred = emp_pred(
            IntervalClause("x", Interval.at_most(5)),
            IntervalClause("x", Interval.at_least(5)),
        )
        norm = pred.normalized()
        assert norm.clauses[0].interval == Interval.point(5)

    def test_function_clauses_pass_through(self):
        fn = FunctionClause("age", is_odd)
        pred = emp_pred(IntervalClause("x", Interval.at_least(1)), fn)
        norm = pred.normalized()
        assert fn in norm.clauses

    def test_normalize_preserves_ident(self):
        pred = emp_pred(IntervalClause("x", Interval.at_least(1)))
        assert pred.normalized().ident == pred.ident

    def test_normalize_clauses_raises_internal(self):
        with pytest.raises(_Contradiction):
            normalize_clauses(
                [
                    IntervalClause("x", Interval.at_most(1)),
                    IntervalClause("x", Interval.at_least(2)),
                ]
            )


class TestPredicateGroup:
    def test_any_semantics(self):
        group = PredicateGroup(
            "emp",
            [
                emp_pred(EqualityClause("dept", "Shoe")),
                emp_pred(EqualityClause("dept", "Toy")),
            ],
        )
        assert group.matches({"dept": "Shoe"})
        assert group.matches({"dept": "Toy"})
        assert not group.matches({"dept": "Food"})

    def test_empty_group(self):
        group = PredicateGroup("emp", [])
        assert group.is_empty
        assert not group.matches({"dept": "Shoe"})
        assert len(group) == 0
        assert str(group) == "emp: false"

    def test_relation_consistency_enforced(self):
        with pytest.raises(PredicateError):
            PredicateGroup("emp", [Predicate("dept", ())])

    def test_iteration(self):
        preds = [emp_pred(), emp_pred()]
        group = PredicateGroup("emp", preds)
        assert list(group) == preds


class TestPredicateBuilder:
    def test_fluent_chain(self):
        pred = (
            PredicateBuilder("emp")
            .between("salary", 20000, 30000)
            .eq("dept", "Shoe")
            .where("age", is_odd)
            .build()
        )
        assert pred.matches({"salary": 25000, "dept": "Shoe", "age": 3})
        assert not pred.matches({"salary": 25000, "dept": "Shoe", "age": 4})
        assert len(pred.clauses) == 3

    def test_comparison_methods(self):
        builder = PredicateBuilder("r")
        pred = builder.lt("a", 5).le("b", 5).gt("c", 5).ge("d", 5).build()
        assert pred.matches({"a": 4, "b": 5, "c": 6, "d": 5})
        assert not pred.matches({"a": 5, "b": 5, "c": 6, "d": 5})

    def test_in_interval_and_clause(self):
        pred = (
            PredicateBuilder("r")
            .in_interval("x", Interval.open(1, 9))
            .clause(EqualityClause("y", 2))
            .build()
        )
        assert pred.matches({"x": 5, "y": 2})
        assert not pred.matches({"x": 1, "y": 2})

    def test_clause_type_checked(self):
        import pytest
        from repro.errors import ClauseError

        with pytest.raises(ClauseError):
            PredicateBuilder("r").clause("nope")

    def test_build_snapshots(self):
        builder = PredicateBuilder("r").eq("x", 1)
        first = builder.build()
        builder.eq("y", 2)
        second = builder.build()
        assert len(first.clauses) == 1
        assert len(second.clauses) == 2
        assert len(builder) == 2

    def test_between_exclusive(self):
        pred = PredicateBuilder("r").between("x", 1, 9, False, False).build()
        assert pred.matches({"x": 5})
        assert not pred.matches({"x": 1})
        assert not pred.matches({"x": 9})
