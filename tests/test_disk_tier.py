"""The disk tier: segments, eviction, checkpoints, and crash drills.

Four layers of assurance:

* **differential conformance** — a sealed :class:`DiskIBSTree` (reads
  straight off the mmap'd segment) must answer every stab exactly like
  the in-memory ``FlatIBSTree`` it was serialised from, including open
  bounds, ±infinity sentinels, and incomparable probe values;
* **corruption detection** — a damaged segment file must be *detected*
  (``CorruptSegmentError``), never silently misread;
* **residency** — under a configured ``memory_budget`` a scripted
  hot/cold access pattern must keep decoded-object residency bounded
  while cold attributes stay answerable from their segments;
* **crash drills** — for every disk fault site
  (``disk.torn_segment``, ``disk.partial_checkpoint``,
  ``disk.mmap_unlink``) and every seed in ``DISK_SEEDS``, recovery
  after the injected crash must answer ``match``/``match_batch``
  identically to a never-crashed twin.

Environment knobs (CI's disk-stress job turns them up):

* ``DISK_SEEDS`` — comma-separated crash-drill seeds (default 0,1,2);
* ``DISK_SCALE`` — predicate count for the bounded-memory scale test.
"""

import glob
import math
import os
import random

import pytest

from repro.concurrency.facade import ConcurrentPredicateIndex
from repro.core.flat_ibs_tree import FlatIBSTree
from repro.core.intervals import MINUS_INF, PLUS_INF, Interval
from repro.core.predicate_index import PredicateIndex
from repro.disk.checkpoint import (
    DiskCheckpointer,
    load_index,
    predicate_from_dict,
    predicate_to_dict,
    read_manifest,
    recover_concurrent,
    save_index,
)
from repro.disk.segment import SegmentReader, write_segment
from repro.disk.store import DiskTreeStore
from repro.disk.tree import DiskIBSTree
from repro.errors import (
    CorruptSegmentError,
    DatabaseError,
    InjectedFault,
    TreeError,
)
from repro.predicates.clauses import EqualityClause, FunctionClause, IntervalClause
from repro.predicates.predicate import Predicate
from repro.testing.faults import FaultInjector, injected

DISK_SEEDS = [int(s) for s in os.environ.get("DISK_SEEDS", "0,1,2").split(",")]
DISK_SCALE = int(os.environ.get("DISK_SCALE", "20000"))

DISK_SITES = ["disk.torn_segment", "disk.partial_checkpoint", "disk.mmap_unlink"]


# ----------------------------------------------------------------------
# workload helpers
# ----------------------------------------------------------------------


def random_interval(rng):
    """A random interval mixing finite, open, point, and unbounded forms."""
    roll = rng.random()
    a, b = sorted(round(rng.uniform(-100, 100), 3) for _ in range(2))
    if roll < 0.60:
        return Interval(a, b, rng.random() < 0.5, rng.random() < 0.5)
    if roll < 0.72:
        return Interval.point(a)
    if roll < 0.82:
        return Interval.at_least(a) if rng.random() < 0.5 else Interval.greater_than(a)
    if roll < 0.92:
        return Interval.at_most(b) if rng.random() < 0.5 else Interval.less_than(b)
    return Interval.unbounded()


def random_items(rng, n):
    return [(random_interval(rng), f"id{i}") for i in range(n)]


def probe_values(rng, items, n=200):
    values = [round(rng.uniform(-120, 120), 3) for _ in range(n)]
    for interval, _ in items[:40]:
        if interval.low is not MINUS_INF:
            values.extend([interval.low, interval.low - 1e-9, interval.low + 1e-9])
        if interval.high is not PLUS_INF:
            values.append(interval.high)
    return values


def oracle(items, x):
    return {ident for interval, ident in items if interval.contains(x)}


def make_pred(rng, relation, i, extra_attr=False):
    clauses = [IntervalClause("x", random_interval(rng))]
    if extra_attr and rng.random() < 0.5:
        clauses.append(EqualityClause("y", rng.randint(0, 4)))
    return Predicate(relation, clauses, ident=f"{relation}-{i}")


def match_table(index, relation, tuples):
    """Sorted match answers for equivalence comparison."""
    return [sorted(index.match(relation, t), key=repr) for t in tuples]


# ----------------------------------------------------------------------
# differential conformance: segment reader vs in-memory tree
# ----------------------------------------------------------------------


class TestSegmentConformance:
    @pytest.mark.parametrize("seed", DISK_SEEDS)
    def test_reader_matches_flat_tree(self, tmp_path, seed):
        rng = random.Random(seed)
        items = random_items(rng, 300)
        tree = FlatIBSTree()
        tree.bulk_load(items)
        path = str(tmp_path / "x.g1.seg")
        write_segment(path, tree, "rel", "x")
        reader = SegmentReader(path)
        try:
            for x in probe_values(rng, items):
                assert reader.stab(x) == tree.stab(x), x
            # stab plane export is byte-for-byte identical
            assert reader.export_stab_plane() == tree.export_stab_plane()
            assert len(reader) == len(tree)
            assert dict(reader.items()) == dict(tree.items())
        finally:
            reader.close()

    def test_open_bounds_and_infinities_survive_the_roundtrip(self, tmp_path):
        items = [
            (Interval.open(10, 20), "o"),
            (Interval.closed_open(10, 20), "co"),
            (Interval.open_closed(10, 20), "oc"),
            (Interval.at_most(10), "low"),
            (Interval.at_least(50), "high"),
            (Interval.unbounded(), "all"),
        ]
        tree = FlatIBSTree()
        tree.bulk_load(items)
        path = str(tmp_path / "b.g1.seg")
        write_segment(path, tree, "rel", "x")
        reader = SegmentReader(path)
        try:
            assert reader.stab(10) == {"co", "low", "all"}
            assert reader.stab(15) == {"o", "co", "oc", "all"}
            assert reader.stab(20) == {"oc", "all"}
            assert reader.stab(-1e9) == {"low", "all"}
            assert reader.stab(1e9) == {"high", "all"}
        finally:
            reader.close()

    def test_incomparable_and_nan_probes(self, tmp_path):
        items = [(Interval.closed(0, 10), "a"), (Interval.unbounded(), "u")]
        tree = FlatIBSTree()
        tree.bulk_load(items)
        path = str(tmp_path / "n.g1.seg")
        write_segment(path, tree, "rel", "x")
        reader = SegmentReader(path)
        try:
            # stab_many maps incomparable values (and None) to None,
            # exactly like the in-memory tree
            table = reader.stab_many(["zzz", None, 5])
            assert table["zzz"] is None
            assert table[None] is None
            assert table[5] == {"a", "u"}
            assert tree.stab_many(["zzz", None, 5]) == table
            # NaN: every comparison is False -> lands in a gap, matches
            # only what the equivalent tree descent reaches
            assert reader.stab(math.nan) == tree.stab(math.nan)
        finally:
            reader.close()

    def test_non_numeric_endpoints_roundtrip(self, tmp_path):
        items = [
            (Interval.closed("apple", "mango"), "fruit"),
            (Interval.closed("banana", "peach"), "snack"),
        ]
        tree = FlatIBSTree()
        tree.bulk_load(items)
        path = str(tmp_path / "s.g1.seg")
        write_segment(path, tree, "rel", "name")
        reader = SegmentReader(path)
        try:
            for probe in ("aardvark", "apple", "cherry", "zebra"):
                assert reader.stab(probe) == tree.stab(probe), probe
        finally:
            reader.close()


class TestDiskTreeContract:
    def test_mutation_after_seal_rehydrates(self, tmp_path):
        tree = DiskIBSTree(str(tmp_path / "t.g1.seg"), relation="r", attribute="x")
        tree.bulk_load([(Interval.closed(0, 10), "a")])
        tree.seal(release=True)
        assert tree.sealed
        tree.insert(Interval.closed(5, 15), "b")
        assert not tree.sealed  # segment is stale now
        assert tree.stab(12) == {"b"}
        assert tree.stab(3) == {"a"}
        tree.seal()
        assert tree.sealed
        assert tree.stab(7) == {"a", "b"}

    def test_frozen_tree_refuses_mutation_and_answers_cold(self, tmp_path):
        tree = DiskIBSTree(str(tmp_path / "f.g1.seg"), relation="r", attribute="x")
        tree.bulk_load([(Interval.closed(0, 10), "a")])
        tree.freeze()
        assert tree.frozen and tree.sealed
        with pytest.raises(TreeError):
            tree.insert(Interval.closed(1, 2), "late")
        assert tree.stab(5) == {"a"}
        # frozen audit works on a throwaway rehydration
        assert tree.audit() == []

    def test_from_segment_cold_attach(self, tmp_path):
        rng = random.Random(5)
        items = random_items(rng, 120)
        tree = DiskIBSTree(str(tmp_path / "c.g1.seg"), relation="r", attribute="x")
        tree.bulk_load(items)
        tree.seal(release=True)
        cold = DiskIBSTree.from_segment(str(tmp_path / "c.g1.seg"))
        assert cold.sealed and cold.epoch == tree.epoch
        for x in probe_values(rng, items, n=60):
            assert cold.stab(x) == oracle(items, x), x


# ----------------------------------------------------------------------
# corruption detection
# ----------------------------------------------------------------------


class TestSegmentCorruption:
    def _segment(self, tmp_path):
        tree = FlatIBSTree()
        tree.bulk_load(random_items(random.Random(1), 50))
        path = str(tmp_path / "v.g1.seg")
        write_segment(path, tree, "rel", "x")
        return path

    def test_truncated_file_detected(self, tmp_path):
        path = self._segment(tmp_path)
        data = open(path, "rb").read()
        open(path, "wb").write(data[: len(data) // 2])
        with pytest.raises(CorruptSegmentError):
            SegmentReader(path)

    def test_bad_magic_detected(self, tmp_path):
        path = self._segment(tmp_path)
        data = bytearray(open(path, "rb").read())
        data[0] ^= 0xFF
        open(path, "wb").write(bytes(data))
        with pytest.raises(CorruptSegmentError):
            SegmentReader(path)

    def test_payload_bitflip_detected_by_verify(self, tmp_path):
        path = self._segment(tmp_path)
        data = bytearray(open(path, "rb").read())
        data[len(data) // 2] ^= 0x01
        open(path, "wb").write(bytes(data))
        reader = SegmentReader(path)  # cheap open-time checks may pass
        try:
            with pytest.raises(CorruptSegmentError):
                reader.verify()
        finally:
            reader.close()

    def test_footer_disagreement_detected(self, tmp_path):
        path = self._segment(tmp_path)
        data = bytearray(open(path, "rb").read())
        data[-4] ^= 0xFF  # inside the footer's length field
        open(path, "wb").write(bytes(data))
        with pytest.raises(CorruptSegmentError):
            SegmentReader(path)


# ----------------------------------------------------------------------
# the disk-tier predicate index
# ----------------------------------------------------------------------


class TestDiskPredicateIndex:
    @pytest.mark.parametrize("seed", DISK_SEEDS)
    def test_matches_memory_tier_exactly(self, tmp_path, seed):
        rng = random.Random(seed)
        disk = PredicateIndex(storage="disk", data_dir=str(tmp_path))
        mem = PredicateIndex()
        preds = [make_pred(rng, "emp", i, extra_attr=True) for i in range(150)]
        for p in preds:
            disk.add(p)
            mem.add(p)
        disk.seal(release=True)  # force reads through the mmap
        tuples = [
            {"x": rng.uniform(-120, 120), "y": rng.randint(0, 4)} for _ in range(300)
        ]
        assert match_table(disk, "emp", tuples) == match_table(mem, "emp", tuples)
        batch_d = disk.match_batch("emp", tuples)
        batch_m = mem.match_batch("emp", tuples)
        assert [sorted(row, key=repr) for row in batch_d] == [
            sorted(row, key=repr) for row in batch_m
        ]

    def test_remove_after_seal(self, tmp_path):
        rng = random.Random(9)
        disk = PredicateIndex(storage="disk", data_dir=str(tmp_path))
        preds = [make_pred(rng, "emp", i) for i in range(40)]
        for p in preds:
            disk.add(p)
        disk.seal(release=True)
        disk.remove("emp-3")
        mem = PredicateIndex()
        for p in preds:
            if p.ident != "emp-3":
                mem.add(p)
        tuples = [{"x": rng.uniform(-120, 120)} for _ in range(150)]
        assert match_table(disk, "emp", tuples) == match_table(mem, "emp", tuples)

    def test_frozen_epoch_stab_cache_coherent_across_seal(self, tmp_path):
        """A sealed-and-frozen index's stab cache keys on tree epochs;
        sealing must not produce answers that diverge from the cache."""
        rng = random.Random(11)
        disk = PredicateIndex(
            storage="disk", data_dir=str(tmp_path), stab_cache_size=64
        )
        preds = [make_pred(rng, "emp", i) for i in range(60)]
        for p in preds:
            disk.add(p)
        tuples = [{"x": rng.uniform(-120, 120)} for _ in range(80)]
        before = match_table(disk, "emp", tuples)  # warms the cache
        disk.seal(release=True)  # same epoch, now served from mmap
        assert match_table(disk, "emp", tuples) == before
        disk.freeze()
        # frozen: repeated probes (cache hits) still agree
        assert match_table(disk, "emp", tuples) == before
        assert match_table(disk, "emp", tuples) == before

    def test_memory_budget_rejected_for_memory_storage(self):
        with pytest.raises(ValueError):
            PredicateIndex(memory_budget=1 << 20)

    def test_function_clause_predicates_still_match(self, tmp_path):
        # not *persistable*, but a live disk index must still route them
        disk = PredicateIndex(storage="disk", data_dir=str(tmp_path))
        disk.add(
            Predicate(
                "emp",
                [FunctionClause("x", lambda v: v % 2 == 1)],
                ident="odd",
            )
        )
        assert {p.ident for p in disk.match("emp", {"x": 3})} == {"odd"}
        assert {p.ident for p in disk.match("emp", {"x": 4})} == set()


# ----------------------------------------------------------------------
# residency and eviction
# ----------------------------------------------------------------------


class TestResidency:
    def test_hot_cold_access_stays_under_budget(self, tmp_path):
        budget = 256 * 1024
        rng = random.Random(21)
        disk = PredicateIndex(
            storage="disk", data_dir=str(tmp_path), memory_budget=budget
        )
        # ten relations, one attribute each; only rel0 stays hot
        for r in range(10):
            for i in range(80):
                disk.add(make_pred(rng, f"rel{r}", i))
        disk.seal(release=True)
        assert disk.resident_bytes() < budget
        peak = 0
        for step in range(300):
            rel = "rel0" if step % 3 else f"rel{rng.randint(1, 9)}"
            disk.match(rel, {"x": rng.uniform(-120, 120)})
            peak = max(peak, disk.resident_bytes())
        # scripted hot/cold access keeps decoded residency bounded even
        # though every relation answered queries
        assert peak <= budget + 64 * 1024, peak

    def test_release_cache_drops_to_near_zero(self, tmp_path):
        rng = random.Random(22)
        tree = DiskIBSTree(str(tmp_path / "r.g1.seg"), relation="r", attribute="x")
        tree.bulk_load(random_items(rng, 200))
        tree.seal(release=True)
        tree.stab(0.0)  # decode some rows
        assert tree.resident_bytes() > 0
        tree.release_cache()
        # only empty-container overhead remains; mmap pages don't count
        assert tree.resident_bytes() < 1024
        assert tree.stab(0.0) == tree.stab(0.0)  # still answers

    def test_store_eviction_skips_dirty_trees(self, tmp_path):
        store = DiskTreeStore(str(tmp_path), memory_budget=1)
        from repro.match.catalog import RelationState

        state = RelationState("r")
        sealed = store.new_tree(state, "a")
        sealed.bulk_load(random_items(random.Random(1), 50))
        sealed.seal(release=False)
        dirty = store.new_tree(state, "b")
        dirty.bulk_load(random_items(random.Random(2), 50))
        # touch both so the LRU knows them; dirty last (hottest)
        sealed.stab(0.0)
        dirty.stab(0.0)
        store.maybe_evict()
        # the dirty tree's contents exist nowhere else — never evicted
        assert len(dirty) == 50
        expected = oracle([(iv, i) for i, iv in dirty.items()], 0.0)
        assert dirty.stab(0.0) == expected

    def test_bounded_memory_at_scale(self, tmp_path):
        """DISK_SCALE predicates (CI disk-stress: 1M) under a fixed budget."""
        budget = 8 * 1024 * 1024
        rng = random.Random(31)
        disk = PredicateIndex(
            storage="disk", data_dir=str(tmp_path), memory_budget=budget
        )
        relations = max(4, DISK_SCALE // 5000)
        per = DISK_SCALE // relations
        for r in range(relations):
            state_preds = []
            for i in range(per):
                a = rng.uniform(-1000, 1000)
                state_preds.append(
                    Predicate(
                        f"rel{r}",
                        [IntervalClause("x", Interval.closed(a, a + 5))],
                        ident=f"r{r}-{i}",
                    )
                )
            for p in state_preds:
                disk.add(p)
            # seal each relation as we go so staging trees don't pile up
            disk.seal(release=True)
        assert disk.resident_bytes() < budget
        peak = 0
        for _ in range(200):
            rel = f"rel{rng.randint(0, relations - 1)}"
            disk.match(rel, {"x": rng.uniform(-1000, 1000)})
            peak = max(peak, disk.resident_bytes())
        assert peak <= budget + budget // 4, peak


# ----------------------------------------------------------------------
# serial save / lazy load
# ----------------------------------------------------------------------


class TestSerialSaveLoad:
    def test_roundtrip_and_laziness(self, tmp_path):
        rng = random.Random(41)
        src = PredicateIndex(storage="disk", data_dir=str(tmp_path))
        preds = [make_pred(rng, "emp", i, extra_attr=True) for i in range(120)]
        for p in preds:
            src.add(p)
        save_index(src)
        loaded = load_index(str(tmp_path))
        # lazy: cold attach decodes nothing up front
        assert loaded.resident_bytes() < 512 * 1024
        tuples = [
            {"x": rng.uniform(-120, 120), "y": rng.randint(0, 4)} for _ in range(200)
        ]
        assert match_table(loaded, "emp", tuples) == match_table(src, "emp", tuples)
        # and the loaded index is mutable: adds keep working
        loaded.add(
            Predicate(
                "emp",
                [IntervalClause("x", Interval.closed(5000, 5001))],
                ident="late",
            )
        )
        # (unbounded-above random predicates may match too; the point is
        # that the freshly added one is served alongside the cold ones)
        assert "late" in {p.ident for p in loaded.match("emp", {"x": 5000.5})}

    def test_save_requires_disk_storage(self):
        with pytest.raises(DatabaseError):
            save_index(PredicateIndex())

    def test_function_clause_rejected_by_codec(self):
        pred = Predicate("r", [FunctionClause("x", lambda v: True)], ident="f")
        with pytest.raises(DatabaseError):
            predicate_to_dict(pred)

    def test_codec_roundtrips_exotic_values(self):
        pred = Predicate(
            "r",
            [
                IntervalClause("x", Interval.at_least(3)),
                IntervalClause("z", Interval.less_than(7.5)),
                EqualityClause("y", ("tuple", 1)),
            ],
            ident=("composite", 42),
        )
        back = predicate_from_dict(predicate_to_dict(pred))
        assert back.ident == ("composite", 42)
        assert back.relation == "r"
        intervals = {
            c.attribute: c.interval
            for c in back.clauses
            if isinstance(c, IntervalClause)
        }
        assert intervals["x"].low == 3 and intervals["x"].high is PLUS_INF
        assert intervals["z"].high == 7.5 and not intervals["z"].high_inclusive


# ----------------------------------------------------------------------
# crash drills: every disk fault site, every seed, twin equivalence
# ----------------------------------------------------------------------


def _drill_workload(rng, n_base=60, n_tail=15):
    base = [make_pred(rng, "emp", i, extra_attr=True) for i in range(n_base)]
    base += [make_pred(rng, "dept", i) for i in range(n_base // 2)]
    tail = [make_pred(rng, "emp", 1000 + i) for i in range(n_tail)]
    removes = ["emp-2", "dept-5"]
    return base, tail, removes


def _apply(index, base, tail, removes, checkpointer=None):
    for p in base:
        index.add(p)
    if checkpointer is not None:
        checkpointer.checkpoint()
    for p in tail:
        index.add(p)
    for ident in removes:
        index.remove(ident)


class TestCrashDrills:
    @pytest.mark.parametrize("seed", DISK_SEEDS)
    @pytest.mark.parametrize("site", DISK_SITES)
    def test_recovery_matches_never_crashed_twin(self, tmp_path, site, seed):
        rng = random.Random(seed)
        base, tail, removes = _drill_workload(rng)

        # the twin never touches a fault and never crashes
        twin = ConcurrentPredicateIndex(
            storage="disk", data_dir=str(tmp_path / "twin"), compaction_threshold=16
        )
        _apply(twin, base, tail, removes)

        # the victim crashes at `site` during its second checkpoint
        victim_dir = str(tmp_path / "victim")
        victim = ConcurrentPredicateIndex(
            storage="disk", data_dir=victim_dir, compaction_threshold=16
        )
        ck = DiskCheckpointer(victim)
        _apply(victim, base, tail, removes, checkpointer=ck)
        with injected(FaultInjector(seed=seed)) as injector:
            injector.arm(site, at_hit=1)
            try:
                ck.checkpoint()
            except InjectedFault:
                pass  # the crash
            assert injector.fired, f"{site} never fired"
        ck.close()

        recovered = recover_concurrent(victim_dir, compaction_threshold=16)
        tuples = [
            {"x": rng.uniform(-120, 120), "y": rng.randint(0, 4)} for _ in range(250)
        ]
        for rel in ("emp", "dept"):
            assert match_table(recovered, rel, tuples) == match_table(
                twin, rel, tuples
            ), (site, seed, rel)
        rows_r = recovered.match_batch("emp", tuples)
        rows_t = twin.match_batch("emp", tuples)
        assert [sorted(r, key=repr) for r in rows_r] == [
            sorted(r, key=repr) for r in rows_t
        ], (site, seed)

    @pytest.mark.parametrize("seed", DISK_SEEDS)
    def test_crash_before_first_checkpoint_recovers_from_journal(
        self, tmp_path, seed
    ):
        rng = random.Random(seed + 100)
        preds = [make_pred(rng, "emp", i) for i in range(30)]
        d = str(tmp_path / "j")
        index = ConcurrentPredicateIndex(storage="disk", data_dir=d)
        ck = DiskCheckpointer(index)
        for p in preds:
            index.add(p)
        # no checkpoint ever completed: recovery is pure journal replay
        ck.close()
        recovered = recover_concurrent(d)
        twin = ConcurrentPredicateIndex(storage="disk", data_dir=str(tmp_path / "t"))
        for p in preds:
            twin.add(p)
        tuples = [{"x": rng.uniform(-120, 120)} for _ in range(120)]
        assert match_table(recovered, "emp", tuples) == match_table(
            twin, "emp", tuples
        )

    def test_unlinked_segment_rebuilds_from_predicate_records(self, tmp_path):
        """disk.mmap_unlink converts to a real unlink; the next cold start
        must rebuild the lost attribute from the predicate records."""
        rng = random.Random(77)
        d = str(tmp_path / "u")
        index = ConcurrentPredicateIndex(storage="disk", data_dir=d)
        ck = DiskCheckpointer(index)
        preds = [make_pred(rng, "emp", i) for i in range(40)]
        for p in preds:
            index.add(p)
        ck.checkpoint()
        with injected(FaultInjector()) as injector:
            injector.arm("disk.mmap_unlink", at_hit=1)
            ck.checkpoint()  # GC unlinks a manifest-referenced segment
            assert injector.fired
        ck.close()
        manifest = read_manifest(d)
        referenced = [
            os.path.join(d, meta["file"])
            for entry in manifest.values()
            for meta in entry["segments"].values()
        ]
        assert any(not os.path.exists(p) for p in referenced)
        recovered = recover_concurrent(d)
        twin = ConcurrentPredicateIndex(storage="disk", data_dir=str(tmp_path / "t"))
        for p in preds:
            twin.add(p)
        tuples = [{"x": rng.uniform(-120, 120)} for _ in range(150)]
        assert match_table(recovered, "emp", tuples) == match_table(
            twin, "emp", tuples
        )

    def test_torn_segment_write_leaves_no_readable_segment(self, tmp_path):
        tree = FlatIBSTree()
        tree.bulk_load(random_items(random.Random(3), 60))
        path = str(tmp_path / "torn.g1.seg")
        with injected(FaultInjector()) as injector:
            injector.arm("disk.torn_segment", at_hit=1)
            with pytest.raises(InjectedFault):
                write_segment(path, tree, "rel", "x")
        # the atomic-rename discipline means the target never appeared
        assert not os.path.exists(path)
        leftovers = glob.glob(str(tmp_path / "*.tmp"))
        for leftover in leftovers:
            # any abandoned temp file must not parse as a segment
            with pytest.raises((CorruptSegmentError, OSError)):
                SegmentReader(leftover)

    def test_partial_checkpoint_preserves_previous_manifest(self, tmp_path):
        rng = random.Random(55)
        d = str(tmp_path / "p")
        index = ConcurrentPredicateIndex(storage="disk", data_dir=d)
        ck = DiskCheckpointer(index)
        for i in range(20):
            index.add(make_pred(rng, "emp", i))
        ck.checkpoint()
        before = read_manifest(d)
        for i in range(20, 30):
            index.add(make_pred(rng, "emp", i))
        with injected(FaultInjector()) as injector:
            injector.arm("disk.partial_checkpoint", at_hit=1)
            with pytest.raises(InjectedFault):
                ck.checkpoint()
        ck.close()
        # the old manifest is byte-identical — still a valid recovery point
        assert read_manifest(d) == before


# ----------------------------------------------------------------------
# incremental checkpoints
# ----------------------------------------------------------------------


class TestIncrementalCheckpoint:
    def test_clean_shards_are_skipped(self, tmp_path):
        rng = random.Random(61)
        d = str(tmp_path)
        index = ConcurrentPredicateIndex(storage="disk", data_dir=d)
        ck = DiskCheckpointer(index)
        for i in range(20):
            index.add(make_pred(rng, "emp", i))
        for i in range(20):
            index.add(make_pred(rng, "dept", i))
        first = ck.checkpoint()
        # only emp changes; dept's manifest entry must be reused verbatim
        dept_entry = read_manifest(d)["dept"]
        index.add(make_pred(rng, "emp", 99))
        second = ck.checkpoint()
        assert second["dept"] == first["dept"]
        assert read_manifest(d)["dept"] == dept_entry
        assert second["emp"] > first["emp"]
        ck.close()

    def test_journal_compacts_to_checkpointed_tail(self, tmp_path):
        rng = random.Random(62)
        d = str(tmp_path)
        index = ConcurrentPredicateIndex(storage="disk", data_dir=d)
        ck = DiskCheckpointer(index)
        for i in range(25):
            index.add(make_pred(rng, "emp", i))
        ck.checkpoint()
        assert ck.compact_journal() == 0  # everything covered
        index.add(make_pred(rng, "emp", 50))
        assert ck.compact_journal() == 1  # one op past the manifest
        ck.close()
