"""Tests for the public Interval.intersection API."""

from hypothesis import given

from repro import Interval
from tests.conftest import intervals, query_points


class TestIntersection:
    def test_overlapping(self):
        assert Interval.closed(1, 5).intersection(
            Interval.closed(3, 9)
        ) == Interval.closed(3, 5)

    def test_disjoint(self):
        assert Interval.closed(1, 2).intersection(Interval.closed(5, 9)) is None

    def test_touching_closed(self):
        assert Interval.closed(1, 3).intersection(
            Interval.closed(3, 9)
        ) == Interval.point(3)

    def test_touching_open(self):
        assert Interval.closed_open(1, 3).intersection(Interval.closed(3, 9)) is None
        assert Interval.closed(1, 3).intersection(Interval.open_closed(3, 9)) is None

    def test_containment(self):
        big = Interval.unbounded()
        small = Interval.open(1, 5)
        assert big.intersection(small) == small
        assert small.intersection(big) == small

    def test_inclusivity_tightens(self):
        result = Interval.closed(1, 9).intersection(Interval.open(1, 9))
        assert result == Interval.open(1, 9)

    def test_unbounded_sides(self):
        assert Interval.at_most(5).intersection(
            Interval.at_least(3)
        ) == Interval.closed(3, 5)

    @given(a=intervals(), b=intervals())
    def test_commutative(self, a, b):
        assert a.intersection(b) == b.intersection(a)

    @given(a=intervals(), b=intervals(), x=query_points)
    def test_membership_property(self, a, b, x):
        """x in a∩b  <=>  x in a and x in b."""
        both = a.intersection(b)
        in_both = both is not None and both.contains(x)
        assert in_both == (a.contains(x) and b.contains(x))

    @given(a=intervals())
    def test_self_intersection_identity(self, a):
        assert a.intersection(a) == a
