"""FlatIBSTree-specific behaviour: interning, bitsets, caches, free lists.

The cross-backend query semantics (stab/stab_into/stab_many equal to
brute force, validate after arbitrary scripts) are covered by the
parametrized suites in ``test_ibs_tree_properties.py``; this module
pins down the flat representation itself.
"""

import random

import pytest

from repro import FlatIBSTree, IBSTree, Interval
from repro.errors import DuplicateIntervalError, UnknownIntervalError


def build(pairs):
    tree = FlatIBSTree()
    for ident, interval in pairs:
        tree.insert(interval, ident)
    return tree


class TestInterning:
    def test_bits_are_dense_and_recycled(self):
        tree = build(
            [("A", Interval.closed(0, 10)), ("B", Interval.closed(5, 15))]
        )
        bit_a = tree._bit_of["A"]
        tree.delete("A")
        assert bit_a in tree._free_bits
        tree.insert(Interval.closed(2, 4), "C")
        # the freed bit is reused, so the bitset universe stays dense
        assert tree._bit_of["C"] == bit_a
        assert not tree._free_bits
        assert tree.stab(3) == {"C"}
        assert tree.stab(12) == {"B"}
        tree.validate()

    def test_auto_ident_skips_taken_names(self):
        tree = FlatIBSTree()
        tree.insert(Interval.closed(0, 1), 0)
        auto = tree.insert(Interval.closed(0, 1))
        assert auto != 0
        assert tree.stab(0) == {0, auto}

    def test_duplicate_and_unknown_idents(self):
        tree = build([("A", Interval.closed(0, 10))])
        with pytest.raises(DuplicateIntervalError):
            tree.insert(Interval.closed(1, 2), "A")
        with pytest.raises(UnknownIntervalError):
            tree.delete("missing")
        with pytest.raises(UnknownIntervalError):
            tree.get("missing")
        with pytest.raises(UnknownIntervalError):
            tree.markers_of("missing")

    def test_registry_views(self):
        pairs = [("A", Interval.closed(0, 10)), ("B", Interval.open(3, 9))]
        tree = build(pairs)
        assert len(tree) == 2 and bool(tree)
        assert "A" in tree and "missing" not in tree
        assert sorted(tree) == ["A", "B"]
        assert dict(tree.items()) == dict(pairs)
        assert tree.get("B") == Interval.open(3, 9)
        tree.clear()
        assert len(tree) == 0 and not tree and tree.node_count == 0


class TestNodeFreeList:
    def test_deleted_endpoint_nodes_are_reused(self):
        tree = build(
            [("A", Interval.closed(0, 10)), ("B", Interval.closed(20, 30))]
        )
        slots_before = len(tree._value)
        tree.delete("B")
        assert tree._free_nodes  # B's endpoint nodes went to the free list
        tree.insert(Interval.closed(40, 50), "C")
        assert len(tree._value) <= slots_before  # storage was recycled
        assert tree.stab(45) == {"C"}
        tree.validate()


class TestStabMask:
    def test_mask_decodes_to_stab(self):
        tree = build(
            [
                ("A", Interval.closed(0, 10)),
                ("B", Interval.closed(5, 15)),
                ("C", Interval.at_least(12)),
            ]
        )
        for x in (-1, 0, 5, 10, 12, 15, 99):
            assert tree._decode(tree.stab_mask(x)) == tree.stab(x)

    def test_masks_or_into_union(self):
        tree = build(
            [
                ("A", Interval.closed(0, 10)),
                ("B", Interval.closed(5, 15)),
                ("C", Interval.at_least(12)),
            ]
        )
        union_mask = tree.stab_mask(3) | tree.stab_mask(14)
        assert tree._decode(union_mask) == tree.stab(3) | tree.stab(14)


class TestDecodeCache:
    def test_cache_fills_on_stab_and_clears_on_mutation(self):
        tree = build(
            [("A", Interval.closed(0, 10)), ("B", Interval.closed(5, 15))]
        )
        tree.stab(7)
        assert tree._slot_cache  # decoded slots were memoized
        tree.insert(Interval.closed(6, 8), "C")
        assert not tree._slot_cache  # wholesale invalidation on insert
        assert tree.stab(7) == {"A", "B", "C"}
        assert tree._slot_cache
        tree.delete("A")
        assert not tree._slot_cache  # ... and on delete
        assert tree.stab(7) == {"B", "C"}

    def test_cached_answers_track_mutations(self):
        """Interleaved stabs and mutations never serve stale sets."""
        rng = random.Random(7)
        flat, reference = FlatIBSTree(), IBSTree()
        live = []
        for step in range(120):
            if live and rng.random() < 0.3:
                ident = live.pop(rng.randrange(len(live)))
                flat.delete(ident)
                reference.delete(ident)
            else:
                a = rng.randint(0, 60)
                interval = Interval.closed(a, a + rng.randint(0, 20))
                flat.insert(interval, step)
                reference.insert(interval, step)
                live.append(step)
            x = rng.randint(-5, 90)
            assert flat.stab(x) == reference.stab(x)
        flat.validate()


class TestStabManyEdges:
    def test_incomparable_value_maps_to_none(self):
        tree = build([("A", Interval.closed(0, 10))])
        answers = tree.stab_many([5, "zzz"])
        assert answers[5] == {"A"}
        assert answers["zzz"] is None
        with pytest.raises(TypeError):
            tree.stab("zzz")

    def test_stab_into_is_all_or_nothing(self):
        tree = build([("A", Interval.closed(0, 10))])
        out = {"kept"}
        with pytest.raises(TypeError):
            tree.stab_into("zzz", out)
        assert out == {"kept"}

    def test_empty_tree_and_empty_input(self):
        tree = FlatIBSTree()
        assert tree.stab_many([]) == {}
        assert tree.stab_many([1, 2]) == {1: set(), 2: set()}


class TestOverlapping:
    def test_overlapping_matches_brute_force(self):
        rng = random.Random(11)
        pairs = []
        for k in range(60):
            a = rng.randint(0, 80)
            pairs.append((k, Interval.closed(a, a + rng.randint(0, 25))))
        tree = build(pairs)
        by_ident = dict(pairs)
        for _ in range(40):
            a = rng.randint(-5, 90)
            query = Interval.closed(a, a + rng.randint(0, 30))
            expected = {k for k, iv in by_ident.items() if iv.overlaps(query)}
            assert tree.overlapping(query) == expected


class TestDiagnostics:
    def test_dump_and_repr(self):
        tree = build(
            [("A", Interval.closed(0, 10)), ("B", Interval.closed(5, 15))]
        )
        assert "FlatIBSTree" in repr(tree)
        text = tree.dump()
        assert "A" in text and "B" in text

    def test_marker_statistics(self):
        tree = build(
            [("A", Interval.closed(0, 10)), ("B", Interval.closed(5, 15))]
        )
        assert tree.marker_count == sum(
            tree.markers_of(ident) for ident in tree
        )
        assert tree.height >= 1
        assert tree.node_count == len({0, 10, 5, 15})
