"""Unit and property tests for repro.core.intervals."""

import pickle

import pytest
from hypothesis import given, strategies as st

from repro import Interval, IntervalError, MINUS_INF, PLUS_INF, is_infinite
from tests.conftest import domain_values, intervals, query_points


class TestConstruction:
    def test_closed(self):
        iv = Interval.closed(2, 7)
        assert iv.low == 2 and iv.high == 7
        assert iv.low_inclusive and iv.high_inclusive

    def test_open(self):
        iv = Interval.open(2, 7)
        assert not iv.low_inclusive and not iv.high_inclusive

    def test_half_open(self):
        assert Interval.closed_open(2, 7).low_inclusive
        assert not Interval.closed_open(2, 7).high_inclusive
        assert not Interval.open_closed(2, 7).low_inclusive
        assert Interval.open_closed(2, 7).high_inclusive

    def test_point(self):
        iv = Interval.point(5)
        assert iv.is_point
        assert iv.contains(5)
        assert not iv.contains(4)

    def test_unbounded_constructors(self):
        assert Interval.at_most(9).contains(-(10**9))
        assert not Interval.at_most(9).contains(10)
        assert Interval.less_than(9).contains(8)
        assert not Interval.less_than(9).contains(9)
        assert Interval.at_least(3).contains(10**9)
        assert not Interval.greater_than(3).contains(3)
        assert Interval.unbounded().contains(0)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(IntervalError):
            Interval.closed(7, 2)

    def test_degenerate_open_rejected(self):
        with pytest.raises(IntervalError):
            Interval(5, 5, True, False)
        with pytest.raises(IntervalError):
            Interval.open(5, 5)

    def test_bad_infinity_placement_rejected(self):
        with pytest.raises(IntervalError):
            Interval(PLUS_INF, 5)
        with pytest.raises(IntervalError):
            Interval(1, MINUS_INF)

    def test_infinite_bounds_never_inclusive(self):
        iv = Interval(MINUS_INF, 5, True, True)
        assert not iv.low_inclusive  # forced open

    def test_from_operator(self):
        assert Interval.from_operator("=", 5) == Interval.point(5)
        assert Interval.from_operator("<", 5) == Interval.less_than(5)
        assert Interval.from_operator("<=", 5) == Interval.at_most(5)
        assert Interval.from_operator(">", 5) == Interval.greater_than(5)
        assert Interval.from_operator(">=", 5) == Interval.at_least(5)
        with pytest.raises(IntervalError):
            Interval.from_operator("~", 5)

    def test_immutability(self):
        iv = Interval.closed(1, 2)
        with pytest.raises(AttributeError):
            iv.low = 0
        with pytest.raises(AttributeError):
            del iv.high

    def test_string_domain(self):
        iv = Interval.closed("apple", "mango")
        assert iv.contains("banana")
        assert not iv.contains("zebra")
        assert Interval.at_most("m").contains("apple")


class TestContains:
    def test_boundary_semantics(self):
        assert Interval.closed(2, 7).contains(2)
        assert Interval.closed(2, 7).contains(7)
        assert not Interval.open(2, 7).contains(2)
        assert not Interval.open(2, 7).contains(7)
        assert Interval.open(2, 7).contains(3)

    def test_infinities_not_contained(self):
        assert not Interval.unbounded().contains(PLUS_INF)
        assert not Interval.unbounded().contains(MINUS_INF)


class TestOverlapsAndCovers:
    def test_overlap_basic(self):
        assert Interval.closed(1, 5).overlaps(Interval.closed(4, 9))
        assert not Interval.closed(1, 3).overlaps(Interval.closed(4, 9))

    def test_adjacency_inclusivity(self):
        assert Interval.closed(1, 3).overlaps(Interval.closed(3, 5))
        assert not Interval.closed_open(1, 3).overlaps(Interval.closed(3, 5))
        assert not Interval.closed(1, 3).overlaps(Interval.open_closed(3, 5))

    def test_covers(self):
        assert Interval.closed(1, 9).covers(Interval.closed(2, 8))
        assert Interval.closed(1, 9).covers(Interval.closed(1, 9))
        assert not Interval.open(1, 9).covers(Interval.closed(1, 9))
        assert Interval.unbounded().covers(Interval.closed(-100, 100))

    @given(a=intervals(), b=intervals())
    def test_overlap_symmetry(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(a=intervals(), b=intervals(), x=query_points)
    def test_covers_implies_contains(self, a, b, x):
        if a.covers(b) and b.contains(x):
            assert a.contains(x)


class TestValueSemantics:
    def test_equality_and_hash(self):
        assert Interval.closed(1, 2) == Interval.closed(1, 2)
        assert Interval.closed(1, 2) != Interval.closed_open(1, 2)
        assert hash(Interval.point(3)) == hash(Interval.point(3))
        assert Interval.at_most(5) == Interval.at_most(5)

    def test_in_operator(self):
        assert 3 in Interval.closed(1, 5)
        assert 9 not in Interval.closed(1, 5)

    def test_endpoints(self):
        assert list(Interval.closed(1, 5).endpoints()) == [1, 5]
        assert list(Interval.point(3).endpoints()) == [3]
        assert list(Interval.at_most(5).endpoints()) == [5]
        assert list(Interval.unbounded().endpoints()) == []

    def test_measure(self):
        assert Interval.closed(2, 7).measure() == 5.0
        assert Interval.point(2).measure() == 0.0
        assert Interval.at_most(2).measure() is None
        assert Interval.closed("a", "b").measure() is None

    @given(iv=intervals())
    def test_str_parse_roundtrip(self, iv):
        assert Interval.parse(str(iv)) == iv

    def test_parse_errors(self):
        with pytest.raises(IntervalError):
            Interval.parse("nope")
        with pytest.raises(IntervalError):
            Interval.parse("[1; 2]")
        with pytest.raises(IntervalError):
            Interval.parse("[foo(, 2]")

    def test_parse_string_bounds(self):
        iv = Interval.parse("['a', 'm')")
        assert iv.contains("b")
        assert not iv.contains("m")


class TestInfinitySentinels:
    def test_ordering_against_values(self):
        assert MINUS_INF < 0 < PLUS_INF
        assert MINUS_INF < "anything" < PLUS_INF
        assert MINUS_INF <= MINUS_INF
        assert PLUS_INF >= PLUS_INF
        assert not (MINUS_INF < MINUS_INF)
        assert not (PLUS_INF > PLUS_INF)
        assert MINUS_INF < PLUS_INF

    def test_equality_is_identity(self):
        assert MINUS_INF == MINUS_INF
        assert MINUS_INF != PLUS_INF
        assert MINUS_INF != float("-inf")

    def test_is_infinite(self):
        assert is_infinite(MINUS_INF) and is_infinite(PLUS_INF)
        assert not is_infinite(0)
        assert not is_infinite(float("inf"))

    def test_pickle_preserves_identity(self):
        assert pickle.loads(pickle.dumps(MINUS_INF)) is MINUS_INF
        assert pickle.loads(pickle.dumps(PLUS_INF)) is PLUS_INF
        iv = pickle.loads(pickle.dumps(Interval.at_most(5)))
        assert iv == Interval.at_most(5)
        assert iv.low is MINUS_INF

    def test_repr(self):
        assert repr(MINUS_INF) == "-inf"
        assert repr(PLUS_INF) == "+inf"
