"""Tests for transactional mutations: all-or-nothing semantics,
savepoints, compensating events, and mid-cascade rollback."""

import pytest

from repro import AbortMutation, CollectAction, Database, RuleEngine
from repro.db import Transaction
from repro.errors import TransactionError, TupleError


@pytest.fixture
def db():
    database = Database()
    database.create_relation("emp", ["name", "salary", "dept"])
    database.create_relation("log", ["message"])
    return database


def snapshot(db):
    """Tuple-level image of every relation, tids included."""
    return {
        name: dict(db.relation(name).scan())
        for name in db.relations()
    }


class TestAllOrNothing:
    def test_commit_keeps_all_mutations(self, db):
        with db.transaction():
            db.insert("emp", {"name": "A", "salary": 100})
            db.insert("log", {"message": "hired A"})
        assert db.count("emp") == 1
        assert db.count("log") == 1

    def test_exception_rolls_back_across_relations(self, db):
        db.insert("emp", {"name": "keep", "salary": 1})
        before = snapshot(db)
        with pytest.raises(RuntimeError, match="boom"):
            with db.transaction():
                db.insert("emp", {"name": "A", "salary": 100})
                db.insert("log", {"message": "hired A"})
                raise RuntimeError("boom")
        assert snapshot(db) == before

    def test_rollback_undoes_update_and_delete(self, db):
        tid = db.insert("emp", {"name": "A", "salary": 100})
        other = db.insert("emp", {"name": "B", "salary": 50})
        before = snapshot(db)
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.update("emp", tid, {"salary": 999})
                db.delete("emp", other)
                raise RuntimeError("abort")
        assert snapshot(db) == before

    def test_rolled_back_insert_does_not_recycle_tid(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.insert("emp", {"name": "gone", "salary": 1})
                raise RuntimeError("abort")
        tid = db.insert("emp", {"name": "kept", "salary": 2})
        # the rolled-back tuple's tid is burned, not reissued
        assert db.relation("emp").get(tid)["name"] == "kept"
        assert db.count("emp") == 1

    def test_transaction_object_exposed(self, db):
        assert db.in_transaction is False
        assert db.current_transaction is None
        with db.transaction() as txn:
            assert isinstance(txn, Transaction)
            assert db.in_transaction is True
            assert db.current_transaction is txn
            db.insert("emp", {"name": "A"})
            assert len(txn) == 1
        assert db.in_transaction is False

    def test_recording_outside_active_transaction_fails(self, db):
        with db.transaction() as txn:
            pass
        with pytest.raises(TransactionError):
            txn._record(("insert", db.relation("emp"), "emp", 1))


class TestNestedTransactions:
    def test_inner_failure_keeps_outer_work(self, db):
        with db.transaction():
            db.insert("emp", {"name": "outer", "salary": 1})
            with pytest.raises(RuntimeError):
                with db.transaction():
                    db.insert("emp", {"name": "inner", "salary": 2})
                    raise RuntimeError("inner failure")
            db.insert("emp", {"name": "after", "salary": 3})
        names = {t["name"] for t in db.select("emp")}
        assert names == {"outer", "after"}

    def test_nested_yields_same_transaction(self, db):
        with db.transaction() as outer:
            with db.transaction() as inner:
                assert inner is outer

    def test_outer_failure_rolls_back_committed_inner(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction():
                with db.transaction():
                    db.insert("emp", {"name": "inner", "salary": 2})
                raise RuntimeError("outer failure")
        assert db.count("emp") == 0


class TestCompensatingEvents:
    def test_rollback_fires_compensating_events(self, db):
        events = []
        db.subscribe(events.append)
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.insert("emp", {"name": "A", "salary": 100})
                raise RuntimeError("abort")
        compensating = [e for e in events if e.compensating]
        assert len(compensating) == 1
        assert type(compensating[0]).__name__ == "DeleteEvent"
        assert compensating[0].old["name"] == "A"

    def test_rollback_order_is_lifo(self, db):
        tid = db.insert("emp", {"name": "A", "salary": 1})
        events = []
        db.subscribe(events.append)
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.insert("emp", {"name": "B", "salary": 2})
                db.update("emp", tid, {"salary": 9})
                db.delete("emp", tid)
                raise RuntimeError("abort")
        kinds = [type(e).__name__ for e in events if e.compensating]
        # undo delete (re-insert), undo update, undo insert (delete)
        assert kinds == ["InsertEvent", "UpdateEvent", "DeleteEvent"]

    def test_bulk_insert_veto_fires_compensating_events(self, db):
        events = []

        def veto(event):
            events.append(event)
            if not event.compensating and getattr(event, "events", None):
                raise AbortMutation("batch rejected")

        db.subscribe(veto)
        with pytest.raises(AbortMutation):
            db.bulk_insert("emp", [{"name": "A"}, {"name": "B"}])
        assert db.count("emp") == 0
        compensating = [e for e in events if e.compensating]
        assert len(compensating) == 2  # one delete per rolled-back row

    def test_bulk_update_validation_failure_rolls_back(self):
        from repro.db import INTEGER

        db = Database()
        db.create_relation("scores", [("v", INTEGER)])
        t1 = db.bulk_insert("scores", [{"v": 1}, {"v": 2}])[0]
        with pytest.raises(TupleError):
            db.bulk_update("scores", {t1: {"v": "not-an-int"}})
        assert sorted(t["v"] for t in db.select("scores")) == [1, 2]


class TestMidCascadeRollback:
    """A failure mid-cascade must leave the db exactly as an untouched
    clone: rule-action side effects roll back with their trigger."""

    @staticmethod
    def build(populate):
        db = Database()
        db.create_relation("emp", ["name", "salary", "dept"])
        db.create_relation("audit", ["who", "note"])
        engine = RuleEngine(db, on_error="propagate")
        engine.create_rule(
            "audit-high",
            on="emp",
            condition="salary > 100",
            action=lambda ctx: ctx.db.insert(
                "audit", {"who": ctx.tuple["name"], "note": "high"}
            ),
        )
        populate(db)
        return db, engine

    def test_failure_matches_untouched_clone(self):
        def populate(db):
            db.insert("emp", {"name": "base", "salary": 150})

        db, _ = self.build(populate)
        clone, _ = self.build(populate)
        assert snapshot(db) == snapshot(clone)

        with pytest.raises(RuntimeError):
            with db.transaction():
                db.insert("emp", {"name": "A", "salary": 500})  # cascades
                assert db.count("audit") == 2  # cascade landed
                db.insert("emp", {"name": "B", "salary": 200})  # cascades
                raise RuntimeError("mid-cascade failure")

        # every mutation of the failed transaction — including the
        # rule-action cascades — is gone; the db equals the clone
        assert snapshot(db) == snapshot(clone)

    def test_abort_mutation_rolls_back_trigger_and_cascade(self):
        def populate(db):
            pass

        db, engine = self.build(populate)
        clone, _ = self.build(populate)

        def veto_and_cascade(ctx):
            ctx.db.insert("audit", {"who": ctx.tuple["name"], "note": "x"})
            raise AbortMutation("rejected after cascading")

        # lower priority: the veto fires after audit-high's cascade has
        # already committed its own (per-firing) transaction — only the
        # enclosing user transaction makes the whole cascade atomic
        engine.create_rule(
            "veto",
            on="emp",
            condition="salary > 1000",
            action=veto_and_cascade,
            priority=-1,
        )
        with pytest.raises(AbortMutation):
            with db.transaction():
                db.insert("emp", {"name": "rich", "salary": 5000})
        assert snapshot(db) == snapshot(clone)

    def test_successful_cascade_commits(self):
        def populate(db):
            pass

        db, _ = self.build(populate)
        with db.transaction():
            db.insert("emp", {"name": "A", "salary": 500})
        assert db.count("emp") == 1
        assert db.count("audit") == 1


class TestRuleEngineIntegration:
    def test_collect_actions_see_committed_batch(self, db):
        engine = RuleEngine(db)
        collect = CollectAction()
        engine.create_rule("all", on="emp", condition="salary > 10", action=collect)
        db.bulk_insert("emp", [{"name": "A", "salary": 20}, {"name": "B", "salary": 5}])
        assert [rec[1]["name"] for rec in collect.records] == ["A"]
