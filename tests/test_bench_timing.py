"""Tests for the timing helpers and working-memory internals."""

import time

import pytest

from repro.bench.timing import best_of, time_per_op, time_total
from repro.errors import RuleError
from repro.production.memory import WorkingMemory


class TestTiming:
    def test_time_total_positive(self):
        elapsed = time_total(lambda: sum(range(1000)))
        assert elapsed >= 0

    def test_time_per_op_divides(self):
        per_op = time_per_op(lambda: time.sleep(0.01), operations=10)
        assert 0.0005 < per_op < 0.05

    def test_time_per_op_validates(self):
        with pytest.raises(ValueError):
            time_per_op(lambda: None, operations=0)

    def test_best_of_takes_minimum(self):
        values = iter([3.0, 1.0, 2.0])
        assert best_of(lambda: next(values), repeats=3) == 1.0
        with pytest.raises(ValueError):
            best_of(lambda: 1.0, repeats=0)

    def test_gc_state_restored(self):
        import gc

        assert gc.isenabled()
        time_total(lambda: None)
        assert gc.isenabled()
        gc.disable()
        try:
            time_total(lambda: None)
            assert not gc.isenabled()
        finally:
            gc.enable()


class TestWorkingMemory:
    def test_insert_assigns_ids_and_timetags(self):
        wm = WorkingMemory()
        a = wm.insert("t", {"v": 1})
        b = wm.insert("t", {"v": 2})
        assert b.wme_id > a.wme_id
        assert b.timetag > a.timetag
        assert len(wm) == 2
        assert a.wme_id in wm

    def test_remove(self):
        wm = WorkingMemory()
        wme = wm.insert("t", {})
        assert wm.remove(wme.wme_id) is wme
        with pytest.raises(RuleError):
            wm.remove(wme.wme_id)
        assert wm.get(wme.wme_id) is None

    def test_touch_refreshes_timetag(self):
        wm = WorkingMemory()
        wme = wm.insert("t", {"v": 1, "w": 2})
        old, new = wm.touch(wme.wme_id, {"v": 9})
        assert old.attributes == {"v": 1, "w": 2}
        assert new.attributes == {"v": 9, "w": 2}
        assert new.timetag > old.timetag
        assert new.wme_id == old.wme_id
        assert wm.get(wme.wme_id) is new

    def test_by_type(self):
        wm = WorkingMemory()
        wm.insert("a", {})
        wm.insert("b", {})
        wm.insert("a", {})
        assert len(list(wm.by_type("a"))) == 2
        assert len(list(wm.by_type("c"))) == 0

    def test_type_validated(self):
        with pytest.raises(RuleError):
            WorkingMemory().insert("", {})

    def test_iteration(self):
        wm = WorkingMemory()
        wm.insert("a", {"k": 1})
        assert [w.wme_type for w in wm] == ["a"]
