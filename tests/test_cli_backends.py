"""The ``backends`` / ``describe`` CLI subcommands.

Exercises :func:`repro.__main__.main` in-process; the output contract
matters because the CI lint job and humans both read it.
"""

import pytest

from repro.__main__ import main
from repro.match.registry import DEFAULT_REGISTRY


def test_backends_lists_every_registration(capsys):
    assert main(["repro", "backends"]) == 0
    out = capsys.readouterr().out
    for name in DEFAULT_REGISTRY.tree_backends():
        assert f"  {name}" in out
    for name in DEFAULT_REGISTRY.matchers():
        assert f"  {name}" in out


@pytest.mark.parametrize("name", ["ibs", "segment", "rtree-1d"])
def test_describe_backend_shows_capabilities(capsys, name):
    assert main(["repro", "describe", name]) == 0
    out = capsys.readouterr().out
    info = DEFAULT_REGISTRY.describe_backend(name)
    assert f"tree backend {name!r}" in out
    assert info["description"] in out
    for flag in ("supports_dynamic_insert", "supports_open_bounds"):
        answer = "yes" if info[flag] else "no"
        assert f"{flag:<24} {answer}" in out


def test_describe_matcher_only_name(capsys):
    assert main(["repro", "describe", "sequential"]) == 0
    out = capsys.readouterr().out
    assert "matcher 'sequential'" in out
    assert "tree backend" not in out


def test_describe_dual_name_shows_both(capsys):
    # "ibs" names both a tree backend and a matcher
    assert main(["repro", "describe", "ibs"]) == 0
    out = capsys.readouterr().out
    assert "tree backend 'ibs'" in out
    assert "matcher 'ibs'" in out


def test_describe_unknown_fails(capsys):
    assert main(["repro", "describe", "no-such-thing"]) == 2
    err = capsys.readouterr().err
    assert "no-such-thing" in err


def test_describe_requires_argument(capsys):
    assert main(["repro", "describe"]) == 2
    assert "usage" in capsys.readouterr().err


def test_unknown_command_mentions_new_subcommands(capsys):
    assert main(["repro", "bogus"]) == 2
    err = capsys.readouterr().err
    assert "backends" in err and "describe" in err and "tune" in err
    assert "segments" in err


def test_describe_disk_matcher_shows_disk_backed(capsys):
    assert main(["repro", "describe", "disk"]) == 0
    out = capsys.readouterr().out
    assert "tree backend 'disk'" in out
    assert "matcher 'disk'" in out
    assert "disk_backed" in out


def test_segments_requires_argument(capsys):
    assert main(["repro", "segments"]) == 2
    assert "usage" in capsys.readouterr().err


def test_segments_rejects_missing_directory(tmp_path, capsys):
    assert main(["repro", "segments", str(tmp_path / "nope")]) == 2
    assert "not a directory" in capsys.readouterr().err


def test_segments_empty_directory(tmp_path, capsys):
    assert main(["repro", "segments", str(tmp_path)]) == 0
    assert "no segment files" in capsys.readouterr().out


def test_segments_lists_and_verifies(tmp_path, capsys):
    from repro.core.intervals import Interval
    from repro.core.predicate_index import PredicateIndex
    from repro.predicates import IntervalClause, Predicate

    index = PredicateIndex(storage="disk", data_dir=str(tmp_path))
    for i in range(8):
        index.add(
            Predicate(
                "emp",
                [IntervalClause("salary", Interval.closed(i, i + 5))],
                ident=i,
            )
        )
    index.seal()
    assert main(["repro", "segments", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "ok" in out and "emp.salary" in out and "0 corrupt" in out


def test_segments_flags_corruption(tmp_path, capsys):
    import glob
    import os

    from repro.core.intervals import Interval
    from repro.core.predicate_index import PredicateIndex
    from repro.predicates import IntervalClause, Predicate

    index = PredicateIndex(storage="disk", data_dir=str(tmp_path))
    index.add(
        Predicate("emp", [IntervalClause("salary", Interval.closed(1, 9))], ident=0)
    )
    index.seal(release=True)
    victim = glob.glob(os.path.join(str(tmp_path), "**", "*.seg"), recursive=True)[0]
    data = bytearray(open(victim, "rb").read())
    data[len(data) // 2] ^= 0xFF  # flip one payload byte
    open(victim, "wb").write(bytes(data))
    assert main(["repro", "segments", str(tmp_path)]) == 1
    assert "CORRUPT" in capsys.readouterr().out


def test_tune_prints_cost_table_and_picks(capsys):
    assert main(["repro", "tune", "--quick", "--seed", "7"]) == 0
    out = capsys.readouterr().out
    assert "calibrated backend costs" in out
    # every auto-selection candidate backend gets a cost-model line
    for backend in ("ibs", "avl", "rb", "flat"):
        assert f"  {backend}" in out
        assert "stab@1000" in out
    # every scenario family gets a picks section with live backends
    assert "per-attribute picks" in out
    from repro.workloads.scenarios import scenario_names

    for family in scenario_names():
        assert f"  {family}:" in out
    assert "live backends:" in out
    # decisions print with their pricing rationale (arrow notation)
    assert " -> " in out


def test_tune_bad_seed_is_usage_error(capsys):
    assert main(["repro", "tune", "--seed", "nope"]) == 2
    assert "usage" in capsys.readouterr().err


def test_tune_seed_flag_without_value_is_usage_error(capsys):
    assert main(["repro", "tune", "--seed"]) == 2
    assert "usage" in capsys.readouterr().err


def test_maintenance_prints_task_table(capsys):
    assert main(["repro", "maintenance", "--quick", "--seed", "7"]) == 0
    out = capsys.readouterr().out
    assert "unified maintenance plane" in out
    assert "policy:" in out
    from repro.workloads.scenarios import scenario_names

    for family in scenario_names():
        assert f"  {family}:" in out
    assert "clock_ops=" in out
    assert "retune" in out and "autoselect" in out
    assert "runs=" in out and "next_due_ops=" in out
    # a healthy run dead-letters nothing
    assert "dead-letter" not in out


def test_maintenance_bad_seed_is_usage_error(capsys):
    assert main(["repro", "maintenance", "--seed", "nope"]) == 2
    assert "usage" in capsys.readouterr().err


def test_unknown_command_mentions_maintenance(capsys):
    assert main(["repro", "bogus"]) == 2
    assert "maintenance" in capsys.readouterr().err
