"""Property test: compiled conditions vs a direct AST evaluator.

The compiler lowers conditions through NNF and DNF into disjoint
predicate machinery; this oracle evaluates the *parsed AST* directly
(short-circuit boolean semantics over the tuple), so any divergence
exposes a normalization bug.
"""

from typing import Any, Dict, Optional

from hypothesis import given, strategies as st

from repro.lang import compile_condition, parse_condition
from repro.lang.ast_nodes import (
    AndNode,
    ComparisonNode,
    FunctionNode,
    LikeNode,
    LiteralNode,
    Node,
    NotNode,
    OrNode,
)

FNS = {"isodd": lambda x: x % 2 == 1}

_OPS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def evaluate_ast(node: Node, tup: Dict[str, Any]) -> bool:
    """Direct three-valued-collapsed evaluation of a condition AST."""
    if isinstance(node, LiteralNode):
        return node.value
    if isinstance(node, AndNode):
        return all(evaluate_ast(child, tup) for child in node.children)
    if isinstance(node, OrNode):
        return any(evaluate_ast(child, tup) for child in node.children)
    if isinstance(node, NotNode):
        return not evaluate_ast(node.child, tup)
    if isinstance(node, FunctionNode):
        value = tup.get(node.attribute)
        if value is None:
            return False
        return bool(FNS[node.name.lower()](value))
    if isinstance(node, LikeNode):
        raise NotImplementedError  # not generated below
    assert isinstance(node, ComparisonNode)
    attr_positions = set(node.attr_positions)
    for index, op in enumerate(node.operators):
        left = node.operands[index]
        right = node.operands[index + 1]
        left_value = tup.get(left) if index in attr_positions else left
        right_value = tup.get(right) if (index + 1) in attr_positions else right
        if (index in attr_positions and left_value is None) or (
            (index + 1) in attr_positions and right_value is None
        ):
            return False
        if not _OPS[op](left_value, right_value):
            return False
    return True


# -- random condition text generation -----------------------------------

attributes = st.sampled_from(["x", "y"])
constants = st.integers(min_value=0, max_value=12)
operators = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])


@st.composite
def comparison_text(draw) -> str:
    attr = draw(attributes)
    op = draw(operators)
    const = draw(constants)
    if draw(st.booleans()):
        return f"{attr} {op} {const}"
    flipped = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
    return f"{const} {flipped[op]} {attr}"


@st.composite
def chain_text(draw) -> str:
    lo = draw(constants)
    hi = lo + draw(st.integers(min_value=0, max_value=8))
    attr = draw(attributes)
    return f"{lo} <= {attr} <= {hi}"


@st.composite
def atom_text(draw) -> str:
    kind = draw(st.integers(min_value=0, max_value=3))
    if kind == 0:
        return draw(comparison_text())
    if kind == 1:
        return draw(chain_text())
    if kind == 2:
        return f"isodd({draw(attributes)})"
    return draw(st.sampled_from(["true", "false"]))


@st.composite
def condition_text(draw, depth: int = 2) -> str:
    if depth == 0:
        return draw(atom_text())
    kind = draw(st.integers(min_value=0, max_value=3))
    if kind == 0:
        return draw(atom_text())
    if kind == 1:
        left = draw(condition_text(depth=depth - 1))
        right = draw(condition_text(depth=depth - 1))
        return f"({left} and {right})"
    if kind == 2:
        left = draw(condition_text(depth=depth - 1))
        right = draw(condition_text(depth=depth - 1))
        return f"({left} or {right})"
    inner = draw(condition_text(depth=depth - 1))
    return f"not ({inner})"


tuples = st.fixed_dictionaries(
    {
        "x": st.one_of(st.none(), st.integers(min_value=-2, max_value=14)),
        "y": st.one_of(st.none(), st.integers(min_value=-2, max_value=14)),
    }
)


class TestCompilerAgainstOracle:
    from hypothesis import settings

    @settings(max_examples=300, deadline=None)
    @given(text=condition_text(), tup=tuples)
    def test_compiled_equals_direct_evaluation(self, text, tup):
        ast = parse_condition(text)
        compiled = compile_condition("r", text, FNS)
        expected = evaluate_ast(ast, tup)
        if tup["x"] is None or tup["y"] is None:
            # NULL semantics diverge from boolean logic under negation
            # (SQL-style: clauses on NULL are false, and the compiler
            # pushes negation into clauses).  Only compare when the
            # condition never touches the NULL attribute.
            touched = _touched_attributes(ast)
            if ("x" in touched and tup["x"] is None) or (
                "y" in touched and tup["y"] is None
            ):
                return
        assert compiled.matches(tup) == expected, text


def _touched_attributes(node: Node) -> set:
    if isinstance(node, ComparisonNode):
        return {node.operands[k] for k in node.attr_positions}
    if isinstance(node, FunctionNode):
        return {node.attribute}
    if isinstance(node, NotNode):
        return _touched_attributes(node.child)
    if isinstance(node, (AndNode, OrNode)):
        out = set()
        for child in node.children:
            out |= _touched_attributes(child)
        return out
    return set()
