"""Tests for the condition language: lexer, parser, compiler."""

import pytest
from hypothesis import given, strategies as st

from repro import compile_condition
from repro.errors import LexError, ParseError
from repro.lang import parse_condition, tokenize
from repro.lang.ast_nodes import (
    AndNode,
    ComparisonNode,
    FunctionNode,
    LiteralNode,
    NotNode,
    OrNode,
)
from repro.lang.tokens import TokenType

FNS = {"isodd": lambda x: x % 2 == 1, "longname": lambda s: len(s) > 5}


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize('salary <= 30000 and dept = "Shoe"')
        kinds = [t.type for t in tokens]
        assert kinds == [
            TokenType.IDENT,
            TokenType.OPERATOR,
            TokenType.NUMBER,
            TokenType.AND,
            TokenType.IDENT,
            TokenType.OPERATOR,
            TokenType.STRING,
            TokenType.EOF,
        ]

    def test_numbers(self):
        values = [t.value for t in tokenize("1 2.5 -3 +4 1e3 2.5e-2 .75")[:-1]]
        assert values == [1, 2.5, -3, 4, 1000.0, 0.025, 0.75]
        assert isinstance(values[0], int)
        assert isinstance(values[1], float)

    def test_strings_and_escapes(self):
        tokens = tokenize("'it\\'s' \"two\\nlines\"")
        assert tokens[0].value == "it's"
        assert tokens[1].value == "two\nlines"

    def test_keywords_case_insensitive(self):
        kinds = [t.type for t in tokenize("AND Or NOT In BETWEEN TRUE false")[:-1]]
        assert kinds == [
            TokenType.AND,
            TokenType.OR,
            TokenType.NOT,
            TokenType.IN,
            TokenType.BETWEEN,
            TokenType.BOOLEAN,
            TokenType.BOOLEAN,
        ]

    def test_operators(self):
        values = [t.value for t in tokenize("= == != <> < <= > >=")[:-1]]
        assert values == ["=", "==", "<>", "<>", "<", "<=", ">", ">="]

    def test_qualified_reference(self):
        kinds = [t.type for t in tokenize("emp.salary")[:-1]]
        assert kinds == [TokenType.IDENT, TokenType.DOT, TokenType.IDENT]

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_unexpected_character(self):
        with pytest.raises(LexError) as info:
            tokenize("a ^ b")
        assert info.value.position == 2

    def test_number_then_dot_ident(self):
        # "1.x" must not lex the dot into the number
        tokens = tokenize("x < 1 . y")
        assert tokens[2].value == 1


class TestParser:
    def test_precedence_or_lowest(self):
        node = parse_condition("a = 1 and b = 2 or c = 3")
        assert isinstance(node, OrNode)
        assert isinstance(node.children[0], AndNode)

    def test_parentheses(self):
        node = parse_condition("a = 1 and (b = 2 or c = 3)")
        assert isinstance(node, AndNode)
        assert isinstance(node.children[1], OrNode)

    def test_not(self):
        node = parse_condition("not a = 1")
        assert isinstance(node, NotNode)

    def test_chained_comparison(self):
        node = parse_condition("1 <= x <= 10")
        assert isinstance(node, ComparisonNode)
        assert node.operators == ("<=", "<=")
        assert node.attr_positions == (1,)

    def test_function_call(self):
        node = parse_condition("isodd(age)")
        assert isinstance(node, FunctionNode)
        assert node.attribute == "age"

    def test_in_desugars_to_or(self):
        node = parse_condition("dept in ('a', 'b')")
        assert isinstance(node, OrNode)
        assert len(node.children) == 2

    def test_single_in_is_equality(self):
        node = parse_condition("dept in ('a')")
        assert isinstance(node, ComparisonNode)

    def test_between_desugars_to_chain(self):
        node = parse_condition("x between 3 and 9")
        assert isinstance(node, ComparisonNode)
        assert node.operators == ("<=", "<=")

    def test_boolean_literal(self):
        assert isinstance(parse_condition("true"), LiteralNode)

    def test_errors(self):
        for bad in [
            "salary <",
            "and x = 1",
            "x = ",
            "(x = 1",
            "x in ()",
            "x in (1,)",
            "x not 5",
            "5 in (1, 2)",
            "5 between 1 and 3",
            "x = 1 extra",
            "f(1)",
        ]:
            with pytest.raises(ParseError):
                parse_condition(bad)

    def test_constant_only_comparison_allowed(self):
        # the compiler folds these to a boolean
        node = parse_condition("1 < 2")
        assert isinstance(node, ComparisonNode)
        assert node.attr_positions == ()

    def test_str_round_trips_reparse(self):
        for text in [
            "a = 1 and b = 2 or not c < 3",
            "1 <= x <= 10",
            "isodd(age) and x between 1 and 2",
        ]:
            node = parse_condition(text)
            assert str(parse_condition(str(node))) == str(node)


class TestCompiler:
    def check(self, condition, matching, non_matching, relation="emp"):
        compiled = compile_condition(relation, condition, FNS)
        for tup in matching:
            assert compiled.matches(tup), (condition, tup)
        for tup in non_matching:
            assert not compiled.matches(tup), (condition, tup)
        return compiled

    def test_paper_examples(self):
        self.check(
            "salary < 20000 and age > 50",
            [{"salary": 1, "age": 51}],
            [{"salary": 1, "age": 50}, {"salary": 20000, "age": 51}],
        )
        self.check(
            "20000 <= salary <= 30000",
            [{"salary": 20000}, {"salary": 30000}],
            [{"salary": 19999}, {"salary": 30001}],
        )
        self.check(
            'job = "Salesperson"',
            [{"job": "Salesperson"}],
            [{"job": "Manager"}],
        )
        self.check(
            'isodd(age) and dept = "Shoe"',
            [{"age": 3, "dept": "Shoe"}],
            [{"age": 4, "dept": "Shoe"}, {"age": 3, "dept": "Toy"}],
        )

    def test_disjunction_splits_predicates(self):
        compiled = compile_condition("emp", "age < 3 or age > 9")
        assert len(compiled.group) == 2
        for pred in compiled.group:
            assert len(pred.clauses) == 1

    def test_not_equal_splits(self):
        compiled = compile_condition("emp", "age <> 5")
        assert len(compiled.group) == 2
        assert compiled.matches({"age": 4})
        assert compiled.matches({"age": 6})
        assert not compiled.matches({"age": 5})

    def test_negated_range(self):
        compiled = self.check(
            "not (10 <= age <= 20)",
            [{"age": 9}, {"age": 21}],
            [{"age": 10}, {"age": 15}, {"age": 20}],
        )
        assert len(compiled.group) == 2

    def test_double_negation(self):
        self.check("not not age = 4", [{"age": 4}], [{"age": 5}])

    def test_de_morgan(self):
        self.check(
            "not (age < 5 and salary < 100)",
            [{"age": 9, "salary": 1}, {"age": 1, "salary": 200}],
            [{"age": 1, "salary": 1}],
        )
        self.check(
            "not (age < 5 or salary < 100)",
            [{"age": 9, "salary": 200}],
            [{"age": 1, "salary": 200}, {"age": 9, "salary": 1}],
        )

    def test_negated_function(self):
        self.check("not isodd(age)", [{"age": 4}], [{"age": 3}])

    def test_in_and_not_in(self):
        self.check(
            'dept in ("a", "b")',
            [{"dept": "a"}, {"dept": "b"}],
            [{"dept": "c"}],
        )
        self.check(
            'dept not in ("a", "b")',
            [{"dept": "c"}],
            [{"dept": "a"}, {"dept": "b"}],
        )

    def test_between_and_not_between(self):
        self.check("age between 3 and 9", [{"age": 3}, {"age": 9}], [{"age": 2}])
        self.check("age not between 3 and 9", [{"age": 2}, {"age": 10}], [{"age": 5}])

    def test_reversed_operands(self):
        self.check("100 > age", [{"age": 99}], [{"age": 100}])
        self.check("5 = age", [{"age": 5}], [{"age": 4}])

    def test_constant_folding(self):
        compiled = compile_condition("emp", "1 < 2 and age = 3")
        assert compiled.matches({"age": 3})
        compiled = compile_condition("emp", "2 < 1 or age = 3")
        assert compiled.matches({"age": 3})
        assert not compiled.matches({"age": 4})
        assert compile_condition("emp", "2 < 1 and age = 3").group.is_empty

    def test_contradictions_dropped(self):
        compiled = compile_condition("emp", "age > 9 and age < 3")
        assert compiled.group.is_empty
        compiled = compile_condition("emp", "(age > 9 and age < 3) or age = 5")
        assert len(compiled.group) == 1

    def test_duplicate_conjuncts_deduplicated(self):
        compiled = compile_condition("emp", "age = 5 or age = 5")
        assert len(compiled.group) == 1

    def test_always_true(self):
        compiled = compile_condition("emp", "true")
        assert compiled.always_true
        assert compiled.matches({"anything": 1})
        compiled2 = compile_condition("emp", "age = 5 or age <> 5 or age = 5")
        # tautology via <> split: matches everything with non-null age
        assert compiled2.matches({"age": 1})

    def test_qualified_attribute(self):
        self.check("emp.age > 5", [{"age": 6}], [{"age": 5}])
        with pytest.raises(ParseError):
            compile_condition("emp", "dept.age > 5")

    def test_attr_attr_comparison_rejected(self):
        with pytest.raises(ParseError):
            compile_condition("emp", "age = salary")

    def test_unknown_function(self):
        with pytest.raises(ParseError) as info:
            compile_condition("emp", "nosuch(age)", FNS)
        assert "isodd" in str(info.value)

    def test_function_names_case_insensitive(self):
        self.check("IsOdd(age)", [{"age": 3}], [{"age": 4}])

    def test_interval_merge_in_conjunct(self):
        compiled = compile_condition("emp", "age >= 3 and age <= 9 and age >= 5")
        pred = list(compiled.group)[0]
        assert len(pred.clauses) == 1

    def test_dnf_explosion_guard(self):
        from repro.lang import MAX_DNF_CONJUNCTS

        clauses = " and ".join(f"(a{k} = 1 or a{k} = 2)" for k in range(13))
        with pytest.raises(ParseError):
            compile_condition("emp", clauses)

    def test_chained_with_constants(self):
        self.check("1 <= 2 <= age", [{"age": 3}], [{"age": 1}])

    def test_uncomparable_constants(self):
        with pytest.raises(ParseError):
            compile_condition("emp", '1 < "two"')

    @given(age=st.integers(-20, 60), lo=st.integers(0, 20), hi=st.integers(21, 40))
    def test_range_equivalence_property(self, age, lo, hi):
        compiled = compile_condition("emp", f"{lo} <= age <= {hi}")
        assert compiled.matches({"age": age}) == (lo <= age <= hi)
        negated = compile_condition("emp", f"not ({lo} <= age <= {hi})")
        assert negated.matches({"age": age}) == (not lo <= age <= hi)
