"""Tests for the Figure 6 rotation marker rewrites."""

import random

from hypothesis import given, strategies as st

from repro import AVLIBSTree, IBSTree, Interval
from repro.core.rotations import balance_factor, node_height, rotate_left, rotate_right
from tests.conftest import intervals


def build_random_tree(seed: int, n: int) -> tuple:
    rng = random.Random(seed)
    tree = IBSTree()
    live = {}
    for k in range(n):
        a = rng.randint(0, 30)
        b = rng.randint(0, 30)
        lo, hi = min(a, b), max(a, b)
        shape = rng.random()
        if shape < 0.3:
            iv = Interval.point(lo)
        elif shape < 0.5:
            iv = Interval.at_most(hi)
        else:
            iv = Interval(lo, hi, rng.random() < 0.5 or lo == hi, rng.random() < 0.5 or lo == hi)
        tree.insert(iv, k)
        live[k] = iv
    return tree, live


def all_answers(tree):
    return {x: tree.stab(x) for x in [v / 2 for v in range(-2, 64)]}


class TestSingleRotations:
    """Rotating any eligible node preserves all stabbing answers."""

    def test_rotate_right_everywhere(self):
        for seed in range(25):
            tree, live = build_random_tree(seed, 12)
            nodes = self._collect(tree._root)
            for node in nodes:
                if node.left is not None:
                    before = all_answers(tree)
                    rotate_right(tree, node)
                    tree.validate()
                    assert all_answers(tree) == before, seed
                    break  # one rotation per tree instance

    def test_rotate_left_everywhere(self):
        for seed in range(25):
            tree, live = build_random_tree(seed, 12)
            nodes = self._collect(tree._root)
            for node in nodes:
                if node.right is not None:
                    before = all_answers(tree)
                    rotate_left(tree, node)
                    tree.validate()
                    assert all_answers(tree) == before, seed
                    break

    def test_rotate_back_and_forth(self):
        """rotate_right then rotate_left at the same spot is an identity
        for query answers (marker layout may legitimately differ)."""
        tree, live = build_random_tree(99, 15)
        node = tree._root
        if node.left is None:
            return
        before = all_answers(tree)
        new_root = rotate_right(tree, node)
        rotate_left(tree, new_root)
        tree.validate()
        assert all_answers(tree) == before

    def test_rotation_at_non_root(self):
        tree, live = build_random_tree(7, 20)
        # find a deep node with a left child
        stack = [tree._root]
        target = None
        while stack:
            node = stack.pop()
            if node is None:
                continue
            if node is not tree._root and node.left is not None:
                target = node
                break
            stack.extend([node.left, node.right])
        if target is None:
            return
        before = all_answers(tree)
        rotate_right(tree, target)
        tree.validate()
        assert all_answers(tree) == before

    def _collect(self, root):
        out = []
        stack = [root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            out.append(node)
            stack.extend([node.left, node.right])
        return out


class TestRotationChains:
    """Random rotation storms keep the tree valid."""

    def test_rotation_storm(self):
        rng = random.Random(13)
        tree, live = build_random_tree(13, 25)
        before = all_answers(tree)
        for _ in range(60):
            nodes = TestSingleRotations()._collect(tree._root)
            node = rng.choice(nodes)
            if rng.random() < 0.5 and node.left is not None:
                rotate_right(tree, node)
            elif node.right is not None:
                rotate_left(tree, node)
        tree.validate()
        assert all_answers(tree) == before


class TestHelpers:
    def test_node_height_and_balance(self):
        tree = IBSTree()
        tree.insert(Interval.closed(5, 10), "a")
        tree.insert(Interval.closed(1, 3), "b")
        root = tree._root
        assert node_height(None) == 0
        assert node_height(root) == tree.height
        assert isinstance(balance_factor(root), int)

    def test_rotate_requires_child(self):
        import pytest

        tree = IBSTree()
        tree.insert(Interval.point(5), "p")
        with pytest.raises(ValueError):
            rotate_right(tree, tree._root)
        with pytest.raises(ValueError):
            rotate_left(tree, tree._root)


class TestAVLUsesRotationsCorrectly:
    @given(ivs=st.lists(intervals(), min_size=1, max_size=30))
    def test_sorted_inserts_stay_balanced(self, ivs):
        tree = AVLIBSTree()
        ordered = sorted(ivs, key=lambda iv: (str(type(iv.low)), str(iv.low), str(iv.high)))
        for k, iv in enumerate(ordered):
            tree.insert(iv, k)
        tree.validate()
        for x in [v / 2 for v in range(-2, 86)]:
            expected = {k for k, iv in enumerate(ordered) if iv.contains(x)}
            assert tree.stab(x) == expected
