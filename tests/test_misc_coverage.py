"""Gap-filling tests for smaller surfaces across the package."""

import pytest

from repro import CollectAction, Database, RuleEngine
from repro.errors import UnknownRelationError


class TestDatabaseSelectWithFunctions:
    def test_select_condition_with_function(self):
        db = Database()
        db.create_relation("r", ["x"])
        db.insert_many("r", [{"x": k} for k in range(6)])
        rows = db.select("r", "isodd(x)", functions={"isodd": lambda v: v % 2 == 1})
        assert sorted(r["x"] for r in rows) == [1, 3, 5]

    def test_repr(self):
        db = Database()
        assert "(empty)" in repr(db)
        db.create_relation("r", ["x"])
        db.insert("r", {"x": 1})
        assert "r(1)" in repr(db)


class TestDeferredJoins:
    def test_join_rule_in_deferred_mode(self):
        db = Database()
        db.create_relation("emp", ["name", "dept"])
        db.create_relation("dept", ["dname"])
        engine = RuleEngine(db, mode="deferred")
        pairs = []
        engine.create_join_rule(
            "jr", "emp", "dept", "emp.dept = dept.dname",
            lambda ctx: pairs.append(ctx.bindings["emp"]["name"]),
        )
        db.insert("emp", {"name": "A", "dept": "Shoe"})
        db.insert("dept", {"dname": "Shoe"})
        assert pairs == []  # deferred: nothing fired yet
        fired = engine.run()
        assert fired == 1
        assert pairs == ["A"]


class TestMonitorWithJoinsAndRules:
    def test_monitor_sees_rule_driven_mutations(self):
        db = Database()
        db.create_relation("r", ["x", "flag"])
        engine = RuleEngine(db)
        from repro import UpdateAction

        engine.create_rule(
            "mark_big", on="r", condition="x > 10 and flag = 0",
            action=UpdateAction({"flag": 1}),
        )
        flagged = engine.monitor("flagged", on="r", condition="flag = 1")
        db.insert("r", {"x": 50, "flag": 0})
        db.insert("r", {"x": 5, "flag": 0})
        assert len(flagged) == 1  # the rule's own update entered the view


class TestIndexDescribeMultiMode:
    def test_describe_counts_multi_clause_trees(self):
        from repro import EqualityClause, PredicateIndex
        from repro.predicates import Predicate

        index = PredicateIndex(multi_clause=True)
        index.add(Predicate("r", [EqualityClause("a", 1), EqualityClause("b", 2)]))
        description = index.describe()["r"]
        assert description["trees"] == {"a": 1, "b": 1}
        assert repr(index).startswith("<PredicateIndex 1 predicates")


class TestEventProperties:
    def test_base_event_is_abstract(self):
        from repro.db.events import Event

        event = Event("r", 1)
        with pytest.raises(NotImplementedError):
            event.kind
        with pytest.raises(NotImplementedError):
            event.tuple


class TestPackagingMetadata:
    def test_license_file_exists(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        assert (root / "LICENSE").exists()
        assert (root / "CHANGELOG.md").exists()
        assert (root / "src" / "repro" / "py.typed").exists()

    def test_docs_exist(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            assert (root / name).exists(), name
        assert (root / "docs" / "paper_mapping.md").exists()
