"""Tests for database JSON persistence."""

import io
import json

import pytest

from repro import Database
from repro.db import (
    INTEGER,
    STRING,
    database_from_dict,
    database_to_dict,
    integer_range,
    load_database,
    save_database,
)
from repro.db.types import Domain
from repro.errors import DatabaseError


def sample_db() -> Database:
    db = Database()
    db.create_relation(
        "emp", [("name", STRING), ("age", INTEGER), "dept"]
    )
    db.create_relation("scores", [("v", integer_range(0, 100))])
    db.insert("emp", {"name": "A", "age": 3, "dept": "Shoe"})
    db.insert("emp", {"name": "B", "age": 9})
    db.insert("scores", {"v": 50})
    return db


class TestRoundTrip:
    def test_dict_round_trip(self):
        db = sample_db()
        data = database_to_dict(db)
        restored = database_from_dict(data)
        assert restored.relations() == db.relations()
        assert restored.select("emp") == db.select("emp")
        assert restored.select("scores") == db.select("scores")

    def test_domains_survive(self):
        restored = database_from_dict(database_to_dict(sample_db()))
        schema = restored.relation("emp").schema
        assert schema.attribute("age").domain.name == "integer"
        scores = restored.relation("scores").schema
        assert scores.attribute("v").domain.low == 0
        from repro.errors import TupleError

        with pytest.raises(TupleError):
            restored.insert("scores", {"v": 500})

    def test_file_round_trip(self, tmp_path):
        db = sample_db()
        path = tmp_path / "snapshot.json"
        save_database(db, path)
        restored = load_database(path)
        assert restored.select("emp") == db.select("emp")
        # the file is plain JSON
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-database"

    def test_stream_round_trip(self):
        db = sample_db()
        buffer = io.StringIO()
        save_database(db, buffer)
        buffer.seek(0)
        restored = load_database(buffer)
        assert restored.select("emp") == db.select("emp")

    def test_statistics_rebuilt_on_load(self):
        restored = database_from_dict(database_to_dict(sample_db()))
        stats = restored.relation("emp").statistics
        assert stats.row_count == 2
        assert stats.attribute("age").max_value == 9


class TestValidation:
    def test_bad_format_rejected(self):
        with pytest.raises(DatabaseError):
            database_from_dict({"format": "something-else"})

    def test_bad_version_rejected(self):
        data = database_to_dict(sample_db())
        data["version"] = 99
        with pytest.raises(DatabaseError):
            database_from_dict(data)

    def test_unserialisable_value_rejected(self):
        db = Database()
        db.create_relation("r", ["x"])
        db.insert("r", {"x": object()})
        with pytest.raises(DatabaseError):
            database_to_dict(db)

    def test_custom_domain_degrades_to_any(self):
        db = Database()
        custom = Domain("weird", lambda v: True)
        db.create_relation("r", [("x", custom)])
        db.insert("r", {"x": 1})
        restored = database_from_dict(database_to_dict(db))
        assert restored.relation("r").schema.attribute("x").domain.name == "any"

    def test_unknown_domain_kind_rejected(self):
        data = database_to_dict(sample_db())
        data["relations"][0]["attributes"][0]["domain"] = {"kind": "martian"}
        with pytest.raises(DatabaseError):
            database_from_dict(data)


class TestBatchedReplay:
    def journaled_run(self, tmp_path):
        """Build a snapshot + journal with mixed mutations after checkpoint."""
        from repro.db import OperationJournal

        db = sample_db()
        snapshot = tmp_path / "snap.json"
        journal_path = tmp_path / "ops.journal"
        save_database(db, snapshot)
        journal = OperationJournal(journal_path)
        journal.attach(db)
        tids = {tup["name"]: tid for tid, tup in db.relation("emp").scan()}
        db.insert("emp", {"name": "C", "age": 4})
        db.insert("emp", {"name": "D", "age": 5})
        db.insert("scores", {"v": 70})
        db.update("emp", tids["A"], {"dept": "Hat"})
        db.delete("emp", tids["B"])
        journal.detach()
        return db, snapshot, journal_path

    def test_silent_replay_remains_the_default(self, tmp_path):
        from repro.db import recover_database

        db, snapshot, journal_path = self.journaled_run(tmp_path)
        events = []
        recovered = recover_database(
            snapshot, journal_path, on_load=lambda d: d.subscribe(events.append)
        )
        assert recovered.select("emp") == db.select("emp")
        assert events == []  # notify defaults to False

    def test_notifying_replay_batches_consecutive_same_relation_ops(
        self, tmp_path
    ):
        from repro.db import BatchEvent, recover_database

        db, snapshot, journal_path = self.journaled_run(tmp_path)
        events = []
        recovered = recover_database(
            snapshot,
            journal_path,
            on_load=lambda d: d.subscribe(events.append),
            notify=True,
        )
        assert recovered.select("emp") == db.select("emp")
        assert recovered.select("scores") == db.select("scores")
        assert all(isinstance(e, BatchEvent) for e in events)
        # runs of consecutive same-relation ops collapse to one batch:
        # [emp, emp], [scores], [emp, emp]
        assert [(e.relation, len(e)) for e in events] == [
            ("emp", 2),
            ("scores", 1),
            ("emp", 2),
        ]
        kinds = [sub.kind for batch in events for sub in batch]
        assert kinds == ["insert", "insert", "insert", "update", "delete"]
        # update and delete events carry their images for the matcher
        update = events[2].events[0]
        assert update.old["dept"] == "Shoe" and update.new["dept"] == "Hat"
        delete = events[2].events[1]
        assert delete.old["name"] == "B"

    def test_notifying_replay_drives_batched_matching(self, tmp_path):
        from repro import PredicateIndex
        from repro.db import BatchEvent, recover_database
        from repro.predicates import PredicateBuilder

        _, snapshot, journal_path = self.journaled_run(tmp_path)
        idx = PredicateIndex()
        ident = idx.add(PredicateBuilder("emp").between("age", 4, 9).build())
        matched = []

        def attach(db):
            def on_event(event):
                if isinstance(event, BatchEvent):
                    images = [e.tuple for e in event]
                    for image, preds in zip(
                        images, idx.match_batch(event.relation, images)
                    ):
                        matched.extend((image["name"], p.ident) for p in preds)

            db.subscribe(on_event)

        recover_database(snapshot, journal_path, on_load=attach, notify=True)
        assert idx.stats.batches_matched > 0
        assert ("C", ident) in matched and ("D", ident) in matched
        assert all(name != "A" or ident != i for name, i in matched if name == "A")


class TestMainModule:
    def test_info_and_demo(self, capsys):
        from repro.__main__ import main

        assert main(["repro"]) == 0
        assert "SIGMOD 1990" in capsys.readouterr().out
        assert main(["repro", "demo"]) == 0
        out = capsys.readouterr().out
        assert "stab(5)" in out and "fired for Lee" in out
        assert main(["repro", "nonsense"]) == 2
