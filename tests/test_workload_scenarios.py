"""The seeded workload synthesizer behind the auto-selection sweep.

The families must be deterministic under a pinned seed (the committed
``BENCH_autoselect.json`` is only reproducible if the workload is),
must never consume ambient ``random`` state, and must scale down
cleanly for the CI smoke pass.
"""

import random

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    SCENARIO_FAMILIES,
    ScenarioSpec,
    scenario_names,
    synthesize,
)


def fingerprint(scenario):
    predicates = tuple(
        (p.ident, tuple(str(c) for c in p.clauses)) for p in scenario.predicates()
    )
    batches = tuple(
        tuple(tuple(sorted(t.items())) for t in batch)
        for batch in scenario.batches()
    )
    churn = tuple(
        (op, payload.ident if hasattr(payload, "ident") else payload)
        for op, payload in scenario.churn()
    )
    return predicates, batches, churn


def test_at_least_five_families():
    assert len(scenario_names()) >= 5
    assert set(scenario_names()) == set(SCENARIO_FAMILIES)


@pytest.mark.parametrize("family", scenario_names())
def test_same_seed_same_workload(family):
    a = synthesize(family, seed=11, scale=0.25)
    b = synthesize(family, seed=11, scale=0.25)
    assert fingerprint(a) == fingerprint(b)


@pytest.mark.parametrize("family", scenario_names())
def test_different_seed_different_workload(family):
    a = synthesize(family, seed=11, scale=0.25)
    b = synthesize(family, seed=12, scale=0.25)
    assert fingerprint(a) != fingerprint(b)


@pytest.mark.parametrize("family", scenario_names())
def test_ambient_random_state_untouched(family):
    # every generator must draw from its own explicit random.Random —
    # a synthesizer that consumes module-level state would couple the
    # benchmark to whatever ran before it
    random.seed(1234)
    before = random.getstate()
    synthesize(family, seed=5, scale=0.25)
    assert random.getstate() == before


def test_family_seed_streams_are_independent():
    # the per-family stream is keyed "family:seed", so two families at
    # the same seed must not replay each other's draws
    a = synthesize("uniform-stabs", seed=3, scale=0.25)
    b = synthesize("zipf-stabs", seed=3, scale=0.25)
    assert fingerprint(a) != fingerprint(b)


def test_scale_shrinks_predicates_and_batches():
    full = synthesize("uniform-stabs", seed=1)
    quick = synthesize("uniform-stabs", seed=1, scale=0.25)
    assert len(quick.predicates()) < len(full.predicates())
    assert len(quick.batches()) < len(full.batches())
    assert quick.total_stabs() < full.total_stabs()


def test_scaled_spec_floors():
    spec = ScenarioSpec(family="uniform-stabs", predicates=10, batches=3)
    tiny = spec.scaled(0.01)
    assert tiny.predicates >= 8
    assert tiny.batches >= 2


def test_scaled_rejects_nonpositive_factor():
    spec = ScenarioSpec(family="uniform-stabs")
    with pytest.raises(WorkloadError):
        spec.scaled(0)


def test_churn_family_carries_events():
    scenario = synthesize("churn-heavy", seed=2, scale=0.25)
    ops = {op for op, _ in scenario.churn()}
    assert ops == {"add", "remove"}


def test_adversarial_endpoints_strictly_ascend():
    scenario = synthesize("adversarial-unbalanced", seed=2, scale=0.25)
    lows = []
    for predicate in scenario.predicates():
        clause = predicate.clauses[0]
        lows.append(clause.interval.low)
    assert lows == sorted(lows)
    assert len(set(lows)) == len(lows)


def test_hot_attribute_family_spans_attributes():
    scenario = synthesize("hot-attribute", seed=2, scale=0.25)
    attributes = {
        clause.attribute
        for predicate in scenario.predicates()
        for clause in predicate.clauses
    }
    assert attributes == {"a", "b", "c"}


def test_unknown_family_raises():
    with pytest.raises(WorkloadError, match="unknown scenario family"):
        synthesize("no-such-family")


def test_unknown_override_raises():
    with pytest.raises(WorkloadError):
        synthesize("uniform-stabs", bogus_knob=7)
