"""Logical counters must be path-independent.

The :class:`~repro.match.observer.MatchStatistics` counters split into
logical (describe the matching problem) and physical (describe the work
actually done).  The batch path, the stab cache, and the residual memo
all reduce *physical* work, but a per-tuple loop and a single
``match_batch`` call over the same workload must report identical
*logical* counts — same tuples, same probes, same partial matches, same
residual outcomes.  These tests pin that symmetry, which is what makes
the counters trustworthy inputs to the Section 5.2 cost model.
"""

import pytest

from repro.core.predicate_index import PredicateIndex
from repro.match.observer import MatchStatistics
from repro.workloads.generator import ScenarioConfig, ScenarioWorkload

N_TUPLES = 200


@pytest.fixture(scope="module")
def workload():
    # predicates() draws from an advancing RNG, so generate the
    # predicate set once and share it between the indexes under
    # comparison — the symmetry claim is about one workload.
    scenario = ScenarioWorkload(
        ScenarioConfig(
            predicates_per_relation=80,
            indexable_fraction=0.85,
            seed=7,
        )
    )
    return scenario, scenario.predicates()["r0"]


def loaded_index(workload, **options):
    _, predicates = workload
    index = PredicateIndex(**options)
    for predicate in predicates:
        index.add(predicate)
    return index


def results_and_stats(index, tuples, mode):
    if mode == "per-tuple":
        results = [index.match("r0", tup) for tup in tuples]
    elif mode == "per-tuple-idents":
        results = [index.match_idents("r0", tup) for tup in tuples]
    else:
        results = index.match_batch("r0", tuples)
    return results, index.stats.logical_counts()


@pytest.mark.parametrize("options", [
    {},
    {"tree_factory": "flat"},
    {"stab_cache_size": 64},
    {"multi_clause": True},
    # the columnar plane must report the same logical counts as the
    # scalar paths; without NumPy the option is inert and this row
    # degenerates to a second "flat" run, which is still a valid check
    {"tree_factory": "flat", "columnar": True},
], ids=["default", "flat", "stab-cache", "multi-clause", "columnar"])
def test_batch_reports_same_logical_counts(workload, options):
    tuples = workload[0].tuples(N_TUPLES)

    serial = loaded_index(workload, **options)
    serial_results, serial_logical = results_and_stats(serial, tuples, "per-tuple")

    batched = loaded_index(workload, **options)
    batch_results, batch_logical = results_and_stats(batched, tuples, "batch")

    assert [set(p.ident for p in r) for r in serial_results] == [
        set(p.ident for p in r) for r in batch_results
    ]
    assert serial_logical == batch_logical


def test_idents_path_reports_same_logical_counts(workload):
    tuples = workload[0].tuples(N_TUPLES)

    by_pred = loaded_index(workload)
    _, pred_logical = results_and_stats(by_pred, tuples, "per-tuple")

    by_ident = loaded_index(workload)
    _, ident_logical = results_and_stats(by_ident, tuples, "per-tuple-idents")

    assert pred_logical == ident_logical


def test_physical_counters_differ_where_expected(workload):
    tuples = workload[0].tuples(N_TUPLES)

    serial = loaded_index(workload)
    results_and_stats(serial, tuples, "per-tuple")

    batched = loaded_index(workload)
    results_and_stats(batched, tuples, "batch")

    assert batched.stats.batches_matched == 1
    assert serial.stats.batches_matched == 0
    # the batch path groups probes into shared tree descents
    assert batched.stats.trees_searched <= serial.stats.trees_searched


def test_logical_counters_is_declared_subset():
    stats = MatchStatistics()
    assert set(stats.LOGICAL_COUNTERS) <= set(stats.as_dict())
    assert set(stats.logical_counts()) == set(stats.LOGICAL_COUNTERS)


def test_counts_reflect_workload_shape(workload):
    tuples = workload[0].tuples(50)
    index = loaded_index(workload)
    results_and_stats(index, tuples, "batch")
    logical = index.stats.logical_counts()
    assert logical["tuples_matched"] == 50
    assert logical["probes"] > 0
    assert logical["full_matches"] <= logical["partial_matches"] + logical[
        "non_indexable_tested"
    ]
