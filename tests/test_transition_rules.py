"""Tests for Ariel-style transition rules (when_old conditions)."""

import pytest

from repro import CollectAction, Database, RuleEngine
from repro.errors import RuleError


@pytest.fixture
def setup():
    db = Database()
    db.create_relation("emp", ["name", "salary"])
    engine = RuleEngine(db)
    collect = CollectAction()
    engine.create_rule(
        "crossed_up",
        on="emp",
        condition="salary > 30000",
        when_old="salary <= 30000",
        action=collect,
    )
    return db, engine, collect


class TestTransitionSemantics:
    def test_fires_on_upward_crossing(self, setup):
        db, engine, collect = setup
        tid = db.insert("emp", {"name": "A", "salary": 20000})
        assert len(collect.records) == 0  # insert: no old image
        db.update("emp", tid, {"salary": 40000})
        assert len(collect.records) == 1

    def test_no_fire_when_already_above(self, setup):
        db, engine, collect = setup
        tid = db.insert("emp", {"name": "A", "salary": 50000})
        db.update("emp", tid, {"salary": 60000})  # stayed above: no edge
        assert len(collect.records) == 0

    def test_no_fire_on_downward_or_below(self, setup):
        db, engine, collect = setup
        tid = db.insert("emp", {"name": "A", "salary": 50000})
        db.update("emp", tid, {"salary": 10000})  # downward crossing
        db.update("emp", tid, {"salary": 20000})  # still below
        assert len(collect.records) == 0

    def test_refires_on_each_crossing(self, setup):
        db, engine, collect = setup
        tid = db.insert("emp", {"name": "A", "salary": 10000})
        db.update("emp", tid, {"salary": 40000})
        db.update("emp", tid, {"salary": 10000})
        db.update("emp", tid, {"salary": 99999})
        assert len(collect.records) == 2

    def test_insert_events_excluded_by_default(self, setup):
        db, engine, collect = setup
        assert engine.rule("crossed_up").on_events == frozenset({"update"})

    def test_rule_is_transition(self, setup):
        _, engine, _ = setup
        assert engine.rule("crossed_up").is_transition
        assert engine.rule("crossed_up").old_source == "salary <= 30000"

    def test_non_transition_unaffected(self):
        db = Database()
        db.create_relation("emp", ["name", "salary"])
        engine = RuleEngine(db)
        collect = CollectAction()
        engine.create_rule(
            "plain", on="emp", condition="salary > 30000", action=collect
        )
        db.insert("emp", {"name": "A", "salary": 50000})
        assert len(collect.records) == 1
        assert not engine.rule("plain").is_transition

    def test_unsatisfiable_old_condition_rejected(self):
        db = Database()
        db.create_relation("emp", ["name", "salary"])
        engine = RuleEngine(db)
        with pytest.raises(RuleError):
            engine.create_rule(
                "dead",
                on="emp",
                condition="salary > 0",
                when_old="salary > 9 and salary < 3",
                action=lambda ctx: None,
            )

    def test_downward_transition_rule(self):
        db = Database()
        db.create_relation("stock", ["item", "level"])
        engine = RuleEngine(db)
        collect = CollectAction()
        engine.create_rule(
            "went_empty",
            on="stock",
            condition="level = 0",
            when_old="level > 0",
            action=collect,
        )
        tid = db.insert("stock", {"item": "x", "level": 5})
        db.update("stock", tid, {"level": 0})
        db.update("stock", tid, {"level": 0})  # still empty: no new edge?
        # second update: old level 0 does not match "level > 0": no fire
        assert len(collect.records) == 1

    def test_context_old_image_available(self, setup):
        db, engine, collect = setup
        seen = {}
        engine.create_rule(
            "grab",
            on="emp",
            condition="salary > 30000",
            when_old="salary <= 30000",
            action=lambda ctx: seen.update(old=ctx.old["salary"],
                                           new=ctx.tuple["salary"]),
        )
        tid = db.insert("emp", {"name": "A", "salary": 100})
        db.update("emp", tid, {"salary": 40000})
        assert seen == {"old": 100, "new": 40000}

    def test_explicit_on_events_override(self):
        db = Database()
        db.create_relation("emp", ["name", "salary"])
        engine = RuleEngine(db)
        collect = CollectAction()
        engine.create_rule(
            "bye_rich",
            on="emp",
            condition="true",
            when_old="salary > 90000",
            on_events=("delete",),
            action=collect,
        )
        tid = db.insert("emp", {"name": "A", "salary": 99000})
        db.delete("emp", tid)
        # delete events have no separate old attribute: DeleteEvent.old
        assert len(collect.records) == 1
