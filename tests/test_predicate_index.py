"""Tests for the Figure 1 two-level predicate index."""

import random

import pytest
from hypothesis import given, strategies as st

from repro import (
    AVLIBSTree,
    EqualityClause,
    FunctionClause,
    Interval,
    IntervalClause,
    Predicate,
    PredicateIndex,
)
from repro.errors import PredicateError, UnknownIntervalError
from repro.lang import compile_condition


def is_odd(x):
    return x % 2 == 1


FNS = {"isodd": is_odd}


def build_random_predicates(seed, count, relations=("r", "s")):
    rng = random.Random(seed)
    predicates = []
    for _ in range(count):
        relation = rng.choice(relations)
        clauses = []
        for _ in range(rng.randint(1, 3)):
            attr = rng.choice(["a", "b", "c"])
            kind = rng.random()
            if kind < 0.3:
                clauses.append(EqualityClause(attr, rng.randint(0, 20)))
            elif kind < 0.7:
                lo = rng.randint(0, 15)
                clauses.append(
                    IntervalClause(attr, Interval.closed(lo, lo + rng.randint(0, 8)))
                )
            elif kind < 0.85:
                clauses.append(IntervalClause(attr, Interval.at_least(rng.randint(0, 20))))
            else:
                clauses.append(FunctionClause(attr, is_odd))
        pred = Predicate(relation, clauses).normalized()
        if pred is not None:
            predicates.append(pred)
    return predicates


class TestEquivalenceWithBruteForce:
    @pytest.mark.parametrize("seed", range(5))
    def test_match_equals_brute_force(self, seed):
        predicates = build_random_predicates(seed, 80)
        index = PredicateIndex()
        for pred in predicates:
            index.add(pred)
        rng = random.Random(seed + 1000)
        for _ in range(200):
            relation = rng.choice(["r", "s"])
            tup = {attr: rng.randint(0, 22) for attr in ["a", "b", "c"]}
            expected = {
                p.ident for p in predicates if p.relation == relation and p.matches(tup)
            }
            assert index.match_idents(relation, tup) == expected

    def test_with_avl_trees(self):
        predicates = build_random_predicates(7, 60)
        index = PredicateIndex(tree_factory=AVLIBSTree)
        for pred in predicates:
            index.add(pred)
        rng = random.Random(77)
        for _ in range(100):
            tup = {attr: rng.randint(0, 22) for attr in ["a", "b", "c"]}
            expected = {
                p.ident for p in predicates if p.relation == "r" and p.matches(tup)
            }
            assert index.match_idents("r", tup) == expected

    def test_removal_keeps_equivalence(self):
        predicates = build_random_predicates(3, 60)
        index = PredicateIndex()
        for pred in predicates:
            index.add(pred)
        rng = random.Random(33)
        removed = rng.sample(predicates, 30)
        for pred in removed:
            index.remove(pred.ident)
        remaining = [p for p in predicates if p not in removed]
        for _ in range(100):
            relation = rng.choice(["r", "s"])
            tup = {attr: rng.randint(0, 22) for attr in ["a", "b", "c"]}
            expected = {
                p.ident for p in remaining if p.relation == relation and p.matches(tup)
            }
            assert index.match_idents(relation, tup) == expected


class TestStructure:
    def test_most_selective_clause_indexed(self):
        index = PredicateIndex()
        pred = Predicate(
            "r",
            [
                IntervalClause("wide", Interval.at_least(0)),
                EqualityClause("narrow", 5),
            ],
        )
        index.add(pred)
        assert index.indexed_attribute(pred.ident) == "narrow"
        assert index.tree_for("r", "narrow") is not None
        assert index.tree_for("r", "wide") is None

    def test_non_indexable_list(self):
        index = PredicateIndex()
        pred = Predicate("r", [FunctionClause("a", is_odd)])
        index.add(pred)
        assert index.indexed_attribute(pred.ident) is None
        assert index.match_idents("r", {"a": 3}) == {pred.ident}
        assert index.match_idents("r", {"a": 4}) == set()

    def test_empty_predicate_matches_all(self):
        index = PredicateIndex()
        pred = Predicate("r", [])
        index.add(pred)
        assert index.match_idents("r", {"x": 1}) == {pred.ident}

    def test_unknown_relation_matches_nothing(self):
        index = PredicateIndex()
        assert index.match("nope", {"x": 1}) == []

    def test_null_attribute_skips_tree(self):
        index = PredicateIndex()
        pred = Predicate("r", [EqualityClause("a", 5)])
        index.add(pred)
        assert index.match_idents("r", {"a": None}) == set()
        assert index.match_idents("r", {}) == set()

    def test_contradictory_predicate_rejected(self):
        index = PredicateIndex()
        pred = Predicate(
            "r",
            [
                IntervalClause("a", Interval.at_most(1)),
                IntervalClause("a", Interval.at_least(2)),
            ],
        )
        with pytest.raises(PredicateError):
            index.add(pred)

    def test_duplicate_ident_rejected(self):
        index = PredicateIndex()
        pred = Predicate("r", [EqualityClause("a", 1)], ident="p")
        index.add(pred)
        with pytest.raises(PredicateError):
            index.add(Predicate("r", [EqualityClause("a", 2)], ident="p"))

    def test_remove_unknown(self):
        with pytest.raises(UnknownIntervalError):
            PredicateIndex().remove("nope")

    def test_remove_cleans_empty_structures(self):
        index = PredicateIndex()
        pred = Predicate("r", [EqualityClause("a", 1)])
        index.add(pred)
        index.remove(pred.ident)
        assert len(index) == 0
        assert index.relations() == []
        assert index.tree_for("r", "a") is None

    def test_get_and_contains(self):
        index = PredicateIndex()
        pred = Predicate("r", [EqualityClause("a", 1)])
        index.add(pred)
        assert index.get(pred.ident).ident == pred.ident
        assert pred.ident in index
        with pytest.raises(UnknownIntervalError):
            index.get("nope")
        with pytest.raises(UnknownIntervalError):
            index.indexed_attribute("nope")

    def test_predicates_for_and_describe(self):
        index = PredicateIndex()
        for cond in ["a = 1", "b >= 2", "isodd(c)"]:
            for pred in compile_condition("r", cond, FNS).group:
                index.add(pred)
        assert len(index.predicates_for("r")) == 3
        assert index.predicates_for("missing") == []
        description = index.describe()
        assert description["r"]["predicates"] == 3
        assert description["r"]["non_indexable"] == 1
        assert set(description["r"]["trees"]) == {"a", "b"}


class TestMatchStatistics:
    def test_counters(self):
        index = PredicateIndex()
        for pred in compile_condition("r", "a = 1 or isodd(b)", FNS).group:
            index.add(pred)
        index.match("r", {"a": 1, "b": 2})
        stats = index.stats
        assert stats.tuples_matched == 1
        assert stats.trees_searched == 1
        assert stats.partial_matches == 1
        assert stats.non_indexable_tested == 1
        assert stats.full_matches == 1
        stats.reset()
        assert stats.tuples_matched == 0
        assert "tuples_matched" in stats.as_dict()

    def test_partial_match_without_full_match(self):
        index = PredicateIndex()
        pred = Predicate(
            "r", [EqualityClause("a", 1), EqualityClause("b", 2)]
        )
        index.add(pred)
        index.stats.reset()
        matches = index.match("r", {"a": 1, "b": 99})
        assert matches == []
        assert index.stats.partial_matches == 1
        assert index.stats.full_matches == 0
