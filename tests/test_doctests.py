"""Run the doctest examples embedded in module and class docstrings."""

import doctest

import pytest

import repro.core.ibs_tree
import repro.core.intervals
import repro.predicates.builder

MODULES = [
    repro.core.ibs_tree,
    repro.core.intervals,
    repro.predicates.builder,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module.__name__}"


def test_ibs_tree_docstring_example_is_checked():
    """The IBSTree class docstring carries a runnable example."""
    assert ">>>" in repro.core.ibs_tree.IBSTree.__doc__
