"""Tests for the main-memory database substrate."""

import pytest

from repro import AbortMutation, Database, SchemaError, TupleError
from repro.db import (
    ANY,
    Attribute,
    BOOLEAN,
    Domain,
    FLOAT,
    INTEGER,
    InsertEvent,
    DeleteEvent,
    Schema,
    STRING,
    UpdateEvent,
    integer_range,
)
from repro.errors import UnknownAttributeError, UnknownRelationError


class TestDomains:
    def test_integer(self):
        INTEGER.validate(5)
        INTEGER.validate(None)  # NULL always ok
        with pytest.raises(SchemaError):
            INTEGER.validate(5.5)
        with pytest.raises(SchemaError):
            INTEGER.validate(True)  # bools are not integers here

    def test_string_float_boolean_any(self):
        STRING.validate("x")
        with pytest.raises(SchemaError):
            STRING.validate(5)
        FLOAT.validate(5.5)
        FLOAT.validate(5)
        BOOLEAN.validate(True)
        with pytest.raises(SchemaError):
            BOOLEAN.validate(1)
        ANY.validate(object())

    def test_integer_range(self):
        dom = integer_range(1, 10)
        dom.validate(5)
        with pytest.raises(SchemaError):
            dom.validate(0)
        with pytest.raises(SchemaError):
            dom.validate(11)
        assert dom.bounded()
        with pytest.raises(SchemaError):
            integer_range(10, 1)


class TestSchema:
    def test_attribute_specs(self):
        schema = Schema("r", ["plain", ("typed", INTEGER), Attribute("attr", STRING)])
        assert schema.attribute_names == ["plain", "typed", "attr"]
        assert schema.attribute("typed").domain is INTEGER
        assert "plain" in schema
        assert len(schema) == 3

    def test_bad_names(self):
        with pytest.raises(SchemaError):
            Schema("r", ["1bad"])
        with pytest.raises(SchemaError):
            Schema("r", ["has space"])
        with pytest.raises(SchemaError):
            Schema("", ["x"])
        with pytest.raises(SchemaError):
            Schema("r", [])

    def test_duplicate_attribute(self):
        with pytest.raises(SchemaError):
            Schema("r", ["x", "x"])

    def test_unknown_attribute(self):
        schema = Schema("r", ["x"])
        with pytest.raises(UnknownAttributeError):
            schema.attribute("y")

    def test_validate_tuple(self):
        schema = Schema("r", [("x", INTEGER), "y"])
        tup = schema.validate_tuple({"x": 1})
        assert tup == {"x": 1, "y": None}
        with pytest.raises(TupleError):
            schema.validate_tuple({"z": 1})
        with pytest.raises(TupleError):
            schema.validate_tuple({"x": "nope"})
        with pytest.raises(TupleError):
            schema.validate_tuple([1, 2])

    def test_validate_update(self):
        schema = Schema("r", [("x", INTEGER)])
        assert schema.validate_update({"x": 2}) == {"x": 2}
        with pytest.raises(UnknownAttributeError):
            schema.validate_update({"nope": 1})


class TestDatabase:
    def make(self):
        db = Database()
        db.create_relation("emp", ["name", ("age", INTEGER), "dept"])
        return db

    def test_create_and_lookup(self):
        db = self.make()
        assert "emp" in db
        assert db.relations() == ["emp"]
        assert db.relation("emp").name == "emp"
        with pytest.raises(UnknownRelationError):
            db.relation("nope")
        with pytest.raises(SchemaError):
            db.create_relation("emp", ["x"])

    def test_drop(self):
        db = self.make()
        db.drop_relation("emp")
        assert "emp" not in db
        with pytest.raises(UnknownRelationError):
            db.drop_relation("emp")

    def test_insert_get_update_delete(self):
        db = self.make()
        tid = db.insert("emp", {"name": "A", "age": 3})
        assert db.count("emp") == 1
        assert db.relation("emp").get(tid)["name"] == "A"
        new = db.update("emp", tid, {"age": 4})
        assert new["age"] == 4
        old = db.delete("emp", tid)
        assert old["age"] == 4
        assert db.count("emp") == 0
        with pytest.raises(TupleError):
            db.update("emp", tid, {"age": 9})

    def test_insert_many_and_select(self):
        db = self.make()
        db.insert_many(
            "emp",
            [{"name": "A", "age": 3}, {"name": "B", "age": 9}, {"name": "C", "age": 5}],
        )
        rows = db.select("emp", "age >= 5")
        assert sorted(r["name"] for r in rows) == ["B", "C"]
        assert len(db.select("emp")) == 3

    def test_events_fire_in_order(self):
        db = self.make()
        events = []
        db.subscribe(events.append)
        tid = db.insert("emp", {"name": "A", "age": 1})
        db.update("emp", tid, {"age": 2})
        db.delete("emp", tid)
        kinds = [type(e) for e in events]
        assert kinds == [InsertEvent, UpdateEvent, DeleteEvent]
        assert events[0].tuple == {"name": "A", "age": 1, "dept": None}
        assert events[1].old["age"] == 1 and events[1].new["age"] == 2
        assert events[2].tuple["age"] == 2
        assert events[2].kind == "delete"

    def test_unsubscribe(self):
        db = self.make()
        events = []
        unsubscribe = db.subscribe(events.append)
        unsubscribe()
        unsubscribe()  # idempotent
        db.insert("emp", {"name": "A"})
        assert events == []

    def test_abort_rolls_back_insert(self):
        db = self.make()

        def veto(event):
            if event.kind == "insert" and event.tuple["age"] == 13:
                raise AbortMutation("unlucky")

        db.subscribe(veto)
        db.insert("emp", {"name": "ok", "age": 12})
        with pytest.raises(AbortMutation):
            db.insert("emp", {"name": "bad", "age": 13})
        assert db.count("emp") == 1

    def test_abort_rolls_back_update(self):
        db = self.make()
        tid = db.insert("emp", {"name": "A", "age": 1})

        def veto(event):
            if event.kind == "update":
                raise AbortMutation("frozen")

        db.subscribe(veto)
        with pytest.raises(AbortMutation):
            db.update("emp", tid, {"age": 99})
        assert db.relation("emp").get(tid)["age"] == 1

    def test_abort_rolls_back_delete(self):
        db = self.make()
        tid = db.insert("emp", {"name": "A", "age": 1})

        def veto(event):
            if event.kind == "delete":
                raise AbortMutation("keep")

        db.subscribe(veto)
        with pytest.raises(AbortMutation):
            db.delete("emp", tid)
        assert db.count("emp") == 1
        assert db.relation("emp").get(tid)["name"] == "A"


class TestRelation:
    def test_scan_and_lookup(self):
        db = Database()
        rel = db.create_relation("r", ["x", "y"])
        tids = [db.insert("r", {"x": k % 3, "y": k}) for k in range(9)]
        assert len(list(rel.scan())) == 9
        assert sorted(rel.lookup("x", 1)) == [tids[1], tids[4], tids[7]]
        with pytest.raises(UnknownAttributeError):
            rel.lookup("z", 1)

    def test_select_callable(self):
        db = Database()
        rel = db.create_relation("r", ["x"])
        db.insert_many("r", [{"x": k} for k in range(5)])
        picked = rel.select(lambda t: t["x"] > 2)
        assert sorted(t["x"] for _, t in picked) == [3, 4]

    def test_restore_guard(self):
        db = Database()
        rel = db.create_relation("r", ["x"])
        tid = db.insert("r", {"x": 1})
        with pytest.raises(TupleError):
            rel.restore(tid, {"x": 2})


class TestStatisticsMaintenance:
    def test_row_count_and_min_max(self):
        db = Database()
        rel = db.create_relation("r", ["x"])
        for v in [5, 1, 9]:
            db.insert("r", {"x": v})
        stats = rel.statistics
        assert stats.row_count == 3
        attr = stats.attribute("x")
        assert attr.min_value == 1 and attr.max_value == 9
        assert attr.distinct == 3

    def test_update_and_delete_adjust_counts(self):
        db = Database()
        rel = db.create_relation("r", ["x"])
        tid = db.insert("r", {"x": 5})
        db.update("r", tid, {"x": 7})
        attr = rel.statistics.attribute("x")
        assert attr.value_counts.get(5) is None
        assert attr.value_counts[7] == 1
        db.delete("r", tid)
        assert rel.statistics.row_count == 0

    def test_tracking_disabled(self):
        db = Database()
        rel = db.create_relation("r", ["x"], track_statistics=False)
        db.insert("r", {"x": 5})
        assert rel.statistics.row_count == 0
