"""Tests for RuleEngine.explain and miscellaneous engine surfaces."""

import pytest

from repro import CollectAction, Database, RuleEngine


@pytest.fixture
def engine_db():
    db = Database()
    db.create_relation("emp", ["name", "age", "salary"])
    db.create_relation("other", ["x"])
    engine = RuleEngine(db)
    engine.create_rule(
        "senior", on="emp", condition="age > 50", action=lambda ctx: None
    )
    engine.create_rule(
        "split", on="emp", condition="salary < 10 or salary > 90",
        action=lambda ctx: None,
    )
    engine.create_rule(
        "elsewhere", on="other", condition="x = 1", action=lambda ctx: None
    )
    return engine, db


class TestExplain:
    def test_matched_and_unmatched(self, engine_db):
        engine, _ = engine_db
        report = {r["rule"]: r for r in engine.explain("emp", {"age": 60, "salary": 50})}
        assert set(report) == {"senior", "split"}  # only emp rules
        assert report["senior"]["matched"] is True
        assert report["senior"]["via"] == ["emp: age > 50"]
        assert report["split"]["matched"] is False
        assert report["split"]["via"] == []

    def test_disjunct_attribution(self, engine_db):
        engine, _ = engine_db
        report = {r["rule"]: r for r in engine.explain("emp", {"age": 1, "salary": 95})}
        assert report["split"]["matched"] is True
        assert report["split"]["via"] == ["emp: salary > 90"]

    def test_condition_and_events_included(self, engine_db):
        engine, _ = engine_db
        record = engine.explain("emp", {"age": 60, "salary": 50})[0]
        assert record["condition"] == "age > 50"
        assert record["events"] == ["insert", "update"]
        assert record["enabled"] is True

    def test_unknown_relation_empty(self, engine_db):
        engine, _ = engine_db
        assert engine.explain("ghost", {"x": 1}) == []

    def test_disabled_rule_still_reported(self, engine_db):
        engine, _ = engine_db
        engine.rule("senior").enabled = False
        report = {r["rule"]: r for r in engine.explain("emp", {"age": 60, "salary": 50})}
        assert report["senior"]["enabled"] is False
        # matching is a property of the condition, not the enable flag
        assert report["senior"]["matched"] is True


class TestAgendaSurface:
    def test_len_bool_clear(self):
        from repro.rules import Agenda
        from repro.rules.rule import Rule
        from repro.predicates import PredicateGroup

        agenda = Agenda()
        assert not agenda and len(agenda) == 0
        rule = Rule("r", "rel", PredicateGroup("rel", []), lambda ctx: None)
        agenda.post(rule, object())
        assert agenda and len(agenda) == 1
        agenda.clear()
        assert len(agenda) == 0

    def test_pop_order_priority_then_recency(self):
        from repro.rules import Agenda
        from repro.rules.rule import Rule
        from repro.predicates import PredicateGroup

        agenda = Agenda()

        def rule(name, priority):
            return Rule(name, "rel", PredicateGroup("rel", []), lambda ctx: None,
                        priority=priority)

        first_low = rule("low1", 1)
        second_low = rule("low2", 1)
        high = rule("high", 9)
        agenda.post(first_low, "a")
        agenda.post(second_low, "b")
        agenda.post(high, "c")
        names = [agenda.pop()[0].name for _ in range(3)]
        assert names == ["high", "low2", "low1"]  # priority, then recency
