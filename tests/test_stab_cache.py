"""Epoch-versioned stab cache: hits, coherence, and the batch path.

The cache memoizes ``tree.stab(value)`` results keyed by
``(attribute, tree_epoch, value)``.  Coherence rests entirely on the
epoch component: every tree mutation bumps the epoch, so stale entries
become unreachable without any invalidation scan.  These tests pin that
contract — a cached answer must never survive an insert, delete,
migration, or rebuild that could change it.
"""

import random

import pytest

from repro import (
    FlatIBSTree,
    IBSTree,
    Interval,
    IntervalClause,
    Predicate,
    PredicateIndex,
)
from repro.predicates import PredicateBuilder

BACKENDS = [IBSTree, FlatIBSTree]


def interval_pred(ident, low, high, attribute="x", relation="r"):
    return Predicate(
        relation, [IntervalClause(attribute, Interval.closed(low, high))], ident=ident
    )


def idents(predicates):
    return sorted(p.ident for p in predicates)


@pytest.mark.parametrize("factory", BACKENDS)
def test_repeated_stabs_hit_the_cache(factory):
    idx = PredicateIndex(tree_factory=factory, stab_cache_size=32)
    for i in range(6):
        idx.add(interval_pred(f"p{i}", i * 10, i * 10 + 15))
    baseline = idx.stats.trees_searched
    first = idx.match("r", {"x": 12})
    assert idx.stats.trees_searched == baseline + 1
    second = idx.match("r", {"x": 12})
    assert idents(first) == idents(second)
    assert idx.stats.stab_cache_hits == 1
    # a cache hit does not probe the tree again
    assert idx.stats.trees_searched == baseline + 1


def test_cache_disabled_by_default():
    idx = PredicateIndex()
    idx.add(interval_pred("p0", 0, 10))
    idx.match("r", {"x": 5})
    idx.match("r", {"x": 5})
    assert idx.stats.stab_cache_hits == 0
    assert idx.stats.trees_searched == 2


@pytest.mark.parametrize("factory", BACKENDS)
def test_insert_invalidates_cached_answer(factory):
    idx = PredicateIndex(tree_factory=factory, stab_cache_size=32)
    idx.add(interval_pred("p0", 0, 10))
    assert idents(idx.match("r", {"x": 5})) == ["p0"]
    idx.add(interval_pred("p1", 4, 6))
    assert idents(idx.match("r", {"x": 5})) == ["p0", "p1"]


@pytest.mark.parametrize("factory", BACKENDS)
def test_delete_invalidates_cached_answer(factory):
    idx = PredicateIndex(tree_factory=factory, stab_cache_size=32)
    idx.add(interval_pred("p0", 0, 10))
    idx.add(interval_pred("p1", 4, 6))
    assert idents(idx.match("r", {"x": 5})) == ["p0", "p1"]
    idx.remove("p1")
    assert idents(idx.match("r", {"x": 5})) == ["p0"]
    idx.remove("p0")
    assert idx.match("r", {"x": 5}) == []


@pytest.mark.parametrize("factory", BACKENDS)
def test_rebuild_invalidates_cache(factory):
    idx = PredicateIndex(tree_factory=factory, stab_cache_size=32)
    for i in range(8):
        idx.add(interval_pred(f"p{i}", i, i + 20))
    before = idents(idx.match("r", {"x": 10}))
    idx.verify_and_rebuild()
    assert idents(idx.match("r", {"x": 10})) == before


def test_migration_invalidates_cache():
    idx = PredicateIndex(
        stab_cache_size=32,
        adaptive=True,
        min_feedback_tuples=8,
    )
    ident = idx.add(
        PredicateBuilder("r").eq("a", 5).between("b", 0, 100).build()
    )
    # warm the cache on the "a" tree, with feedback showing the entry
    # clause admitting every tuple
    for _ in range(10):
        assert idx.match("r", {"a": 5, "b": 500}) == []
    assert idx.retune("r") == [ident]
    rel = idx._relations["r"]
    assert rel.indexed_under[ident] == ("b",)
    # post-migration answers are correct on both the old and new attribute
    assert idents(idx.match("r", {"a": 5, "b": 50})) == [ident]
    assert idx.match("r", {"a": 5, "b": 500}) == []


@pytest.mark.parametrize("factory", BACKENDS)
def test_batch_path_uses_and_fills_the_cache(factory):
    idx = PredicateIndex(tree_factory=factory, stab_cache_size=64)
    for i in range(6):
        idx.add(interval_pred(f"p{i}", i * 10, i * 10 + 15))
    tuples = [{"x": 12}, {"x": 40}, {"x": 12}]
    first = idx.match_batch("r", tuples)
    # within one batch duplicates are deduped, not cache hits; a second
    # batch over the same values is all hits
    hits_after_first = idx.stats.stab_cache_hits
    second = idx.match_batch("r", tuples)
    assert idx.stats.stab_cache_hits > hits_after_first
    assert [idents(r) for r in first] == [idents(r) for r in second]
    # and the single-tuple path shares the same cache
    assert idents(idx.match("r", {"x": 40})) == idents(first[1])


@pytest.mark.parametrize("factory", BACKENDS)
def test_batch_path_cache_coherent_across_mutations(factory):
    rng = random.Random(7)
    idx = PredicateIndex(tree_factory=factory, stab_cache_size=16)
    plain = PredicateIndex(tree_factory=factory)  # no cache: the oracle
    for i in range(20):
        low = rng.randint(0, 80)
        high = low + rng.randint(0, 20)
        for target in (idx, plain):
            target.add(interval_pred(f"p{i}", low, high))
    tuples = [{"x": rng.randint(-5, 110)} for _ in range(40)]
    for round_number in range(6):
        got = idx.match_batch("r", tuples)
        expected = plain.match_batch("r", tuples)
        assert [idents(r) for r in got] == [idents(r) for r in expected]
        # mutate both between rounds
        victim = f"p{rng.randrange(20)}"
        if victim in idx:
            idx.remove(victim)
            plain.remove(victim)
        low = rng.randint(0, 80)
        fresh = interval_pred(f"n{round_number}", low, low + 10)
        idx.add(fresh)
        plain.add(interval_pred(f"n{round_number}", low, low + 10))


def test_retune_bumps_tree_epochs():
    """Migration must retire the old generation: any tree the retune
    touches ends on a strictly higher epoch, so cached stabs keyed by
    ``(attribute, tree_epoch, value)`` can never resurface."""
    idx = PredicateIndex(
        stab_cache_size=32,
        adaptive=True,
        min_feedback_tuples=8,
    )
    ident = idx.add(
        PredicateBuilder("r").eq("a", 5).between("b", 0, 100).build()
    )
    for _ in range(10):
        idx.match("r", {"a": 5, "b": 500})
    before = idx.tree_epochs("r")
    assert idx.retune("r") == [ident]
    after = idx.tree_epochs("r")
    # the source tree is gone (or re-created on a later epoch), and the
    # destination tree's epoch does not collide with any retired one
    assert after != before
    for attribute, epoch in after.items():
        assert attribute not in before or epoch > before[attribute]
    # the migration destination now carries the entry clause
    assert "b" in after and "a" not in after
    # retiring the source tree raised the floor: a future "a" tree can
    # never reuse a retired ("a", epoch) cache key
    assert idx._relations["r"].epoch_floor > before["a"]


@pytest.mark.parametrize("factory", BACKENDS)
def test_verify_and_rebuild_bumps_tree_epochs(factory):
    """A rebuild replaces every tree; each replacement must land on an
    epoch above the retired generation's, never reusing a cache key."""
    idx = PredicateIndex(tree_factory=factory, stab_cache_size=32)
    for i in range(8):
        idx.add(interval_pred(f"p{i}", i, i + 20))
    idx.match("r", {"x": 10})  # warm the cache on the old generation
    before = idx.tree_epochs("r")
    # force the rebuild path even on a healthy index
    idx._rebuild_relation("r", idx._relations["r"])
    after = idx.tree_epochs("r")
    assert set(after) == set(before)
    for attribute, epoch in after.items():
        assert epoch > before[attribute], (
            f"tree {attribute!r} reused epoch {epoch} after rebuild"
        )
    # and the cached pre-rebuild answer is unreachable: fresh match agrees
    # with an uncached oracle
    oracle = PredicateIndex(tree_factory=factory)
    for i in range(8):
        oracle.add(interval_pred(f"p{i}", i, i + 20))
    assert idents(idx.match("r", {"x": 10})) == idents(
        oracle.match("r", {"x": 10})
    )


@pytest.mark.parametrize("factory", BACKENDS)
def test_verify_and_rebuild_on_corruption_bumps_epochs(factory):
    """The public self-healing entry point also retires old epochs."""
    idx = PredicateIndex(tree_factory=factory, stab_cache_size=32)
    for i in range(8):
        idx.add(interval_pred(f"p{i}", i, i + 20))
    before = idx.tree_epochs("r")
    report = idx.verify_and_rebuild()
    after = idx.tree_epochs("r")
    if report["rebuilt"]:
        for attribute, epoch in after.items():
            assert epoch > before.get(attribute, -1)
    else:
        # healthy index: no rebuild, epochs untouched
        assert after == before


def test_tree_epochs_unknown_relation_is_empty():
    assert PredicateIndex().tree_epochs("nope") == {}


def test_cache_evicts_least_recently_used():
    idx = PredicateIndex(stab_cache_size=2)
    for i in range(3):
        idx.add(interval_pred(f"p{i}", i * 10, i * 10 + 5))
    idx.match("r", {"x": 2})    # cache {2}
    idx.match("r", {"x": 12})   # cache {2, 12}
    idx.match("r", {"x": 2})    # hit, refreshes 2
    idx.match("r", {"x": 22})   # evicts 12
    assert idx.stats.stab_cache_hits == 1
    searched = idx.stats.trees_searched
    idx.match("r", {"x": 12})   # miss again: it was evicted
    assert idx.stats.trees_searched == searched + 1
    idx.match("r", {"x": 2})    # still cached? (evicted by the re-probe of 12)
    assert idx.stats.stab_cache_hits >= 1
    assert len(idx._relations["r"].stab_cache) <= 2


def test_unhashable_values_bypass_the_cache():
    idx = PredicateIndex(stab_cache_size=8)
    idx.add(interval_pred("p0", 0, 10))
    # a list value is unhashable: the match must still work, uncached
    assert idx.match("r", {"x": [1, 2]}) == []
    assert idx.stats.stab_cache_hits == 0
    assert idents(idx.match("r", {"x": 5})) == ["p0"]


def test_stats_reset_clears_cache_counter():
    idx = PredicateIndex(stab_cache_size=8)
    idx.add(interval_pred("p0", 0, 10))
    idx.match("r", {"x": 5})
    idx.match("r", {"x": 5})
    assert idx.stats.stab_cache_hits == 1
    idx.stats.reset()
    assert idx.stats.stab_cache_hits == 0
    assert idx.stats.clause_migrations == 0


def test_freeze_swaps_cache_to_plain_dict():
    """freeze() must leave only GIL-atomic cache operations behind.

    OrderedDict insertion also splices a C-level linked list, which
    concurrent lock-free readers can corrupt — so freezing replaces the
    LRU odict with a plain dict (and the append-only discipline never
    needs the LRU methods again).
    """
    from collections import OrderedDict

    idx = PredicateIndex(stab_cache_size=8)
    for i in range(4):
        idx.add(interval_pred(f"p{i}", i * 10, i * 10 + 15))
    idx.match("r", {"x": 12})  # warm one entry through the odict path
    assert isinstance(idx._relations["r"].stab_cache, OrderedDict)
    idx.freeze()
    cache = idx._relations["r"].stab_cache
    assert type(cache) is dict
    assert len(cache) == 1  # warm entries survive the swap
    # frozen matching still caches (append-only) and still hits
    hits = idx.stats.stab_cache_hits
    assert idents(idx.match("r", {"x": 12})) == ["p0", "p1"]
    assert idx.stats.stab_cache_hits == hits + 1
    idx.match("r", {"x": 32})
    assert idents(idx.match("r", {"x": 32})) == ["p2", "p3"]
    assert type(idx._relations["r"].stab_cache) is dict
