"""Tests for the Section 5.2 cost model."""

import pytest

from repro.bench.cost_model import (
    MIN_MEASURED_MS,
    CostParameters,
    _fit_log_curve,
    calibrate,
    calibrate_backends,
    measured_match_cost_ms,
    predicate_match_cost,
)


def ticking_timer(tick=0.001):
    """Deterministic fake clock: advances *tick* seconds per reading."""
    state = {"now": 0.0}

    def timer():
        state["now"] += tick
        return state["now"]

    return timer


def frozen_timer():
    """A clock that never advances: every measured span is zero."""
    return lambda: 1.0


class TestPaperArithmetic:
    def test_derived_quantities(self):
        params = CostParameters()
        assert params.attributes_searched == 5  # 15 / 3
        assert params.non_indexable_count == pytest.approx(20.0)  # 10% of 200
        assert params.residual_tests == pytest.approx(20.0)  # 0.1 * 200

    def test_index_probe_matches_paper(self):
        """0.1 + 5*0.13 + 20*0.02 = 1.15 (the paper prints 1.1)."""
        breakdown = predicate_match_cost(CostParameters())
        assert breakdown.hash_ms == pytest.approx(0.1)
        assert breakdown.tree_search_ms == pytest.approx(0.65)
        assert breakdown.non_indexable_ms == pytest.approx(0.4)
        assert breakdown.index_probe_ms == pytest.approx(1.15)

    def test_residual_matches_paper(self):
        """20 residual tests * 0.05 msec = 1 msec."""
        breakdown = predicate_match_cost(CostParameters())
        assert breakdown.residual_ms == pytest.approx(1.0)

    def test_total_matches_paper(self):
        """Paper: ~2.1 msec total per tuple."""
        breakdown = predicate_match_cost(CostParameters())
        assert breakdown.total_ms == pytest.approx(2.15)
        assert abs(breakdown.total_ms - 2.1) < 0.1

    def test_as_dict(self):
        d = predicate_match_cost().as_dict()
        assert d["total_ms"] == pytest.approx(2.15)
        assert set(d) == {
            "hash_ms",
            "tree_search_ms",
            "non_indexable_ms",
            "index_probe_ms",
            "residual_ms",
            "total_ms",
        }


class TestScaling:
    def test_more_predicates_cost_more(self):
        small = predicate_match_cost(CostParameters(predicates_per_relation=100))
        large = predicate_match_cost(CostParameters(predicates_per_relation=400))
        assert large.total_ms > small.total_ms

    def test_fully_indexable_removes_brute_force(self):
        breakdown = predicate_match_cost(CostParameters(indexable_fraction=1.0))
        assert breakdown.non_indexable_ms == 0.0

    def test_selectivity_drives_residual(self):
        sharp = predicate_match_cost(CostParameters(clause_selectivity=0.01))
        blunt = predicate_match_cost(CostParameters(clause_selectivity=0.5))
        assert blunt.residual_ms > sharp.residual_ms


class TestCalibration:
    def test_calibrated_constants_positive_and_fast(self):
        params = calibrate(samples=300)
        assert 0 < params.hash_cost_ms < 1.0
        assert 0 < params.ibs_search_cost_ms < 1.0
        assert 0 < params.sequential_test_cost_ms < 1.0
        assert 0 < params.full_test_cost_ms < 1.0
        # shape is preserved from the defaults
        assert params.attributes_searched == 5

    def test_measured_cost_reasonable(self):
        ms = measured_match_cost_ms(tuples=50)
        assert 0 < ms < 50  # sub-50ms/tuple even on slow machines

    def test_calibrated_prediction_near_measurement(self):
        """The model should predict the measured cost within ~6x.

        (The formula ignores set-union overhead and per-candidate
        retrieval, so it systematically underestimates; the check is
        that it lands in the right order of magnitude, which is all the
        paper's model claims.)
        """
        params = calibrate(samples=500)
        predicted = predicate_match_cost(params).total_ms
        measured = measured_match_cost_ms(tuples=100)
        assert predicted < measured * 6
        assert measured < predicted * 60

    def test_calibrate_accepts_injected_timer(self):
        from dataclasses import asdict

        a = asdict(calibrate(samples=20, timer=ticking_timer()))
        b = asdict(calibrate(samples=20, timer=ticking_timer()))
        assert a == b

    def test_calibrate_zero_elapsed_floors_at_min_measured(self):
        params = calibrate(samples=20, timer=frozen_timer())
        assert params.hash_cost_ms >= MIN_MEASURED_MS
        assert params.ibs_search_cost_ms >= MIN_MEASURED_MS
        assert params.sequential_test_cost_ms >= MIN_MEASURED_MS
        assert params.full_test_cost_ms >= MIN_MEASURED_MS


class TestBackendCalibration:
    QUICK = dict(samples=20, sizes=(16, 128))

    def test_deterministic_under_pinned_seed_and_clock(self):
        a = calibrate_backends(seed=5, timer=ticking_timer(), **self.QUICK)
        b = calibrate_backends(seed=5, timer=ticking_timer(), **self.QUICK)
        assert a.as_dict() == b.as_dict()
        assert set(a.backends()) == set(b.backends())

    def test_zero_elapsed_floors_every_model(self):
        # a quantised (or broken) clock must never price an operation
        # at zero — a free backend would win every decision
        table = calibrate_backends(seed=5, timer=frozen_timer(), **self.QUICK)
        for backend in table.backends():
            for n in (1, 16, 1024):
                assert table.stab_ms(backend, n) >= MIN_MEASURED_MS
                assert table.insert_ms(backend, n) >= MIN_MEASURED_MS

    def test_fitted_curves_monotone_in_tree_size(self):
        table = calibrate_backends(seed=5, **self.QUICK)
        for backend in table.backends():
            stabs = [table.stab_ms(backend, n) for n in (4, 64, 1024, 8192)]
            inserts = [table.insert_ms(backend, n) for n in (4, 64, 1024, 8192)]
            assert stabs == sorted(stabs)
            assert inserts == sorted(inserts)

    def test_requires_two_sizes(self):
        with pytest.raises(ValueError):
            calibrate_backends(sizes=(64,))

    def test_fit_clamps_negative_slope(self):
        # a bigger tree measuring cheaper is noise, not a speedup
        base, slope = _fit_log_curve(1.0, 0.5, 64, 512)
        assert slope == 0.0
        assert base == 1.0

    def test_fit_floors_base(self):
        base, slope = _fit_log_curve(0.0, 0.0, 64, 512)
        assert base >= MIN_MEASURED_MS
        assert slope == 0.0

    def test_subset_of_backends(self):
        table = calibrate_backends(backends=("ibs", "avl"), seed=5, **self.QUICK)
        assert set(table.backends()) == {"ibs", "avl"}
        assert "ibs" in table and "flat" not in table
