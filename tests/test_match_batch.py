"""Batched matching: ``match_batch`` must equal per-tuple ``match``.

The batched fast path shares index probes across a batch (one grouped
stab per distinct value per attribute), skips the entry clause the stab
already proved, and memoizes residual tests on duplicate-heavy batches.
None of that may change a single answer: every test here compares
against the per-tuple path, which the brute-force suites already pin to
the paper's semantics.
"""

import functools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    AbortMutation,
    BatchEvent,
    CollectAction,
    Database,
    EqualityClause,
    FlatIBSTree,
    FunctionClause,
    IBSTree,
    Interval,
    IntervalClause,
    MINUS_INF,
    Predicate,
    PredicateIndex,
    RuleEngine,
)


def is_odd(x):
    return x % 2 == 1


BACKENDS = {"ibs": IBSTree, "flat": FlatIBSTree}
ATTRS = ["a", "b", "c"]


def build_predicates(rng, count):
    predicates = []
    while len(predicates) < count:
        clauses = []
        for _ in range(rng.randint(1, 3)):
            attr = rng.choice(ATTRS)
            kind = rng.random()
            if kind < 0.25:
                clauses.append(EqualityClause(attr, rng.randint(0, 20)))
            elif kind < 0.55:
                lo = rng.randint(0, 15)
                hi = lo + rng.randint(0, 8)
                if lo == hi:
                    interval = Interval.closed(lo, hi)
                else:
                    interval = Interval(
                        lo, hi, rng.random() < 0.8, rng.random() < 0.8
                    )
                clauses.append(IntervalClause(attr, interval))
            elif kind < 0.7:
                clauses.append(
                    IntervalClause(attr, Interval.at_least(rng.randint(0, 20)))
                )
            elif kind < 0.85:
                clauses.append(
                    IntervalClause(attr, Interval.at_most(rng.randint(0, 20)))
                )
            else:
                clauses.append(FunctionClause(attr, is_odd, name="is_odd"))
        pred = Predicate("r", clauses).normalized()
        if pred is not None:
            predicates.append(pred)
    return predicates


def random_batch(rng, size, duplicate_heavy=False):
    if duplicate_heavy:
        pool = [
            {attr: rng.randint(0, 22) for attr in ATTRS} for _ in range(max(1, size // 4))
        ]
        return [dict(rng.choice(pool)) for _ in range(size)]
    return [{attr: rng.randint(0, 22) for attr in ATTRS} for _ in range(size)]


def ident_rows(rows):
    return [{pred.ident for pred in row} for row in rows]


class TestDifferential:
    """match_batch([t1..tn]) == [match(t1)..match(tn)] in every mode."""

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    @pytest.mark.parametrize("multi_clause", [False, True])
    @pytest.mark.parametrize("seed", range(4))
    def test_randomized(self, backend, multi_clause, seed):
        rng = random.Random(seed)
        predicates = build_predicates(rng, 40)
        index = PredicateIndex(
            tree_factory=BACKENDS[backend], multi_clause=multi_clause
        )
        for pred in predicates:
            index.add(pred)
        for trial in range(6):
            batch = random_batch(rng, 25, duplicate_heavy=trial % 2 == 0)
            expected = [index.match_idents("r", tup) for tup in batch]
            assert ident_rows(index.match_batch("r", batch)) == expected
        # removal keeps the compiled-residual table consistent
        for pred in predicates[::3]:
            index.remove(pred.ident)
        batch = random_batch(rng, 20)
        expected = [index.match_idents("r", tup) for tup in batch]
        assert ident_rows(index.match_batch("r", batch)) == expected

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    @settings(max_examples=40, deadline=None)
    @given(
        batch=st.lists(
            st.fixed_dictionaries(
                {attr: st.integers(min_value=-2, max_value=25) for attr in ATTRS}
            ),
            max_size=20,
        )
    )
    def test_hypothesis_batches(self, backend, batch):
        index = PredicateIndex(tree_factory=BACKENDS[backend])
        for pred in build_predicates(random.Random(99), 30):
            index.add(pred)
        expected = [index.match_idents("r", tup) for tup in batch]
        assert ident_rows(index.match_batch("r", batch)) == expected

    def test_missing_attributes_treated_as_per_tuple(self):
        index = PredicateIndex()
        for pred in build_predicates(random.Random(5), 25):
            index.add(pred)
        batch = [{"a": 3}, {"b": 7, "c": 2}, {}]
        expected = [index.match_idents("r", tup) for tup in batch]
        assert ident_rows(index.match_batch("r", batch)) == expected


@functools.total_ordering
class UnhashablePoint:
    """Comparable with ints but not hashable — defeats value grouping."""

    __hash__ = None

    def __init__(self, v):
        self.v = v

    def _key(self, other):
        return other.v if isinstance(other, UnhashablePoint) else other

    def __eq__(self, other):
        return self.v == self._key(other)

    def __lt__(self, other):
        return self.v < self._key(other)


class TestFallbacks:
    """Values the grouped stab cannot handle fall back, answers unchanged."""

    def test_unhashable_value_falls_back(self):
        index = PredicateIndex()
        index.add(Predicate("r", [IntervalClause("a", Interval.closed(0, 10))]))
        index.add(Predicate("r", [IntervalClause("a", Interval.closed(20, 30))]))
        batch = [{"a": UnhashablePoint(5)}, {"a": 25}, {"a": 99}]
        expected = [index.match_idents("r", tup) for tup in batch]
        assert ident_rows(index.match_batch("r", batch)) == expected
        assert expected[0] and expected[1] and not expected[2]

    def test_sentinel_value_falls_back(self):
        index = PredicateIndex()
        index.add(Predicate("r", [IntervalClause("a", Interval.closed(0, 10))]))
        index.add(Predicate("r", [IntervalClause("a", Interval.at_most(50))]))
        batch = [{"a": MINUS_INF}, {"a": 5}, {"a": 40}]
        expected = [index.match_idents("r", tup) for tup in batch]
        assert ident_rows(index.match_batch("r", batch)) == expected

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_one_adversarial_tuple_does_not_degrade_the_batch(self, backend):
        """Unbatchable values fall back per *tuple*, not per batch.

        The rest of the batch must still go through the batched stages
        (one batch route event), and the logical counters must stay
        path-independent — the fallback tuples report theirs through
        the per-tuple path's own events.
        """
        def loaded():
            index = PredicateIndex(tree_factory=BACKENDS[backend])
            index.add(
                Predicate("r", [IntervalClause("a", Interval.closed(0, 10))], ident=1)
            )
            index.add(
                Predicate("r", [IntervalClause("b", Interval.at_most(5))], ident=2)
            )
            return index

        batch = [
            {"a": UnhashablePoint(5), "b": 3},
            {"a": 5, "b": 100},
            {"a": MINUS_INF},
            {"a": 7},
            {"b": None},
        ]
        serial = loaded()
        expected = [serial.match_idents("r", tup) for tup in batch]
        batched = loaded()
        assert ident_rows(batched.match_batch("r", batch)) == expected
        assert batched.stats.batches_matched == 1
        assert serial.stats.logical_counts() == batched.stats.logical_counts()

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_none_valued_equals_missing_key(self, backend):
        """The NULL rule: a ``None``-valued attribute behaves exactly
        like a missing key on the per-tuple and the batched path, for
        results and for logical counters alike."""
        def loaded():
            index = PredicateIndex(tree_factory=BACKENDS[backend])
            index.add(
                Predicate("r", [IntervalClause("a", Interval.closed(0, 10))], ident=1)
            )
            index.add(
                Predicate(
                    "r", [FunctionClause("a", is_odd, negated=True)], ident=2
                )
            )
            return index

        null_batch = [{"a": None, "b": 1}, {"a": None}]
        missing_batch = [{"b": 1}, {}]
        runs = {}
        for name, batch in (("null", null_batch), ("missing", missing_batch)):
            serial = loaded()
            per_tuple = [serial.match_idents("r", tup) for tup in batch]
            batched = loaded()
            rows = ident_rows(batched.match_batch("r", batch))
            assert rows == per_tuple
            assert serial.stats.logical_counts() == batched.stats.logical_counts()
            runs[name] = (rows, batched.stats.logical_counts())
        assert runs["null"] == runs["missing"]

    def test_stab_many_null_rule(self):
        """``stab_many`` maps ``None`` to ``None`` on every tree shape —
        including the empty tree, where a descent-based answer would
        accidentally return the empty set — matching the pipeline's
        pre-probe NULL skip."""
        from repro.baselines import IntervalList

        for factory in (IBSTree, FlatIBSTree, IntervalList):
            empty = factory()
            assert empty.stab_many([None]) == {None: None}
            loaded = factory()
            loaded.insert(Interval.closed(0, 10), "i")
            table = loaded.stab_many([None, 5, 99])
            assert table[None] is None
            assert table[5] == {"i"}
            assert table[99] == set()

    def test_unknown_relation_and_empty_batch(self):
        index = PredicateIndex()
        assert index.match_batch("nowhere", [{"a": 1}, {"a": 2}]) == [[], []]
        assert index.match_batch("nowhere", []) == []


class TestMemoization:
    """Residual memoization: on for duplicate-heavy batches, always sound."""

    def test_interval_residual_memoizes_duplicates(self):
        index = PredicateIndex()
        index.add(
            Predicate(
                "r",
                [
                    EqualityClause("a", 1),  # entry clause (most selective)
                    IntervalClause("b", Interval.at_most(50)),  # open residual
                ],
            )
        )
        batch = [{"a": 1, "b": 2}] * 5
        rows = index.match_batch("r", batch)
        assert all(len(row) == 1 for row in rows)
        assert index.stats.residual_memo_hits == 4

    def test_function_residual_never_memoized(self):
        index = PredicateIndex()
        index.add(
            Predicate(
                "r",
                [EqualityClause("a", 1), FunctionClause("b", is_odd, name="is_odd")],
            )
        )
        batch = [{"a": 1, "b": 3}] * 5
        rows = index.match_batch("r", batch)
        assert all(len(row) == 1 for row in rows)
        assert index.stats.residual_memo_hits == 0

    def test_equal_but_distinct_types_stay_correct(self):
        """2 == 2.0 share a memo key; only type-blind tests may be cached."""
        index = PredicateIndex()
        index.add(
            Predicate(
                "r",
                [
                    EqualityClause("a", 1),
                    FunctionClause("b", lambda v: isinstance(v, int), name="is_int"),
                ],
            )
        )
        batch = [{"a": 1, "b": 2}, {"a": 1, "b": 2.0}] * 3
        expected = [index.match_idents("r", tup) for tup in batch]
        assert ident_rows(index.match_batch("r", batch)) == expected
        assert expected[0] and not expected[1]


class TestStatistics:
    def test_batch_counters(self):
        index = PredicateIndex()
        for pred in build_predicates(random.Random(3), 20):
            index.add(pred)
        index.stats.reset()
        batch = random_batch(random.Random(4), 10)
        index.match_batch("r", batch)
        assert index.stats.batches_matched == 1
        assert index.stats.tuples_matched == 10
        assert index.stats.full_matches == sum(
            len(index.match("r", tup)) for tup in batch
        )


def make_db():
    db = Database()
    db.create_relation("emp", ["name", "age", "salary"])
    return db


ROWS = [
    {"name": "A", "age": 30, "salary": 15},
    {"name": "B", "age": 40, "salary": 25},
    {"name": "C", "age": 50, "salary": 12},
]


def make_engine(db, matcher="ibs"):
    collect = CollectAction()
    engine = RuleEngine(db, matcher=matcher)
    engine.create_rule(
        "mid_salary",
        on="emp",
        condition="salary >= 10 and salary <= 20",
        action=collect,
        on_events=("insert", "update"),
    )
    engine.create_rule(
        "senior",
        on="emp",
        condition="age >= 40",
        action=collect,
        on_events=("insert", "update"),
    )
    return engine, collect


def records(collect):
    return sorted((name, tuple(sorted(tup.items()))) for name, tup in collect.records)


class TestBulkMutationsThroughEngine:
    """bulk_insert / bulk_update fire one BatchEvent, same rule firings."""

    @pytest.mark.parametrize(
        "matcher", ["ibs", PredicateIndex(tree_factory=FlatIBSTree)]
    )
    def test_bulk_insert_equals_per_tuple_inserts(self, matcher):
        db_one, db_bulk = make_db(), make_db()
        _, collect_one = make_engine(db_one)
        _, collect_bulk = make_engine(db_bulk, matcher=matcher)
        for row in ROWS:
            db_one.insert("emp", dict(row))
        db_bulk.bulk_insert("emp", [dict(row) for row in ROWS])
        assert records(collect_bulk) == records(collect_one)
        assert db_bulk.count("emp") == len(ROWS)

    def test_bulk_update_equals_per_tuple_updates(self):
        db_one, db_bulk = make_db(), make_db()
        tids_one = [db_one.insert("emp", dict(row)) for row in ROWS]
        tids_bulk = db_bulk.bulk_insert("emp", [dict(row) for row in ROWS])
        _, collect_one = make_engine(db_one)
        _, collect_bulk = make_engine(db_bulk)
        for tid in tids_one:
            db_one.update("emp", tid, {"salary": 18})
        db_bulk.bulk_update("emp", {tid: {"salary": 18} for tid in tids_bulk})
        assert records(collect_bulk) == records(collect_one)

    def test_bulk_insert_is_one_batch_event(self):
        db = make_db()
        seen = []
        db.subscribe(seen.append)
        db.bulk_insert("emp", [dict(row) for row in ROWS])
        assert len(seen) == 1
        (event,) = seen
        assert isinstance(event, BatchEvent)
        assert event.kind == "batch" and len(event) == len(ROWS)
        assert [sub.kind for sub in event] == ["insert"] * len(ROWS)

    def test_bulk_insert_veto_rolls_back_whole_batch(self):
        db = make_db()

        def veto(event):
            if isinstance(event, BatchEvent):
                raise AbortMutation("no batches today")

        db.subscribe(veto)
        with pytest.raises(AbortMutation):
            db.bulk_insert("emp", [dict(row) for row in ROWS])
        assert db.count("emp") == 0

    def test_bulk_update_missing_tid_rolls_back(self):
        db = make_db()
        tids = db.bulk_insert("emp", [dict(row) for row in ROWS])
        with pytest.raises(Exception):
            db.bulk_update("emp", {tids[0]: {"salary": 99}, 10_000: {"salary": 1}})
        assert db.relation("emp").get(tids[0])["salary"] == ROWS[0]["salary"]
