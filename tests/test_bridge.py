"""Tests for the database <-> production-system bridge."""

import pytest

from repro import Database
from repro.errors import RuleError
from repro.production import ProductionSystem
from repro.rules import DatabaseProductionBridge


@pytest.fixture
def setup():
    db = Database()
    db.create_relation("emp", ["name", "dept", "salary"])
    db.create_relation("dept", ["dname", "floor"])
    db.create_relation("proj", ["pname", "floor"])
    ps = ProductionSystem()
    return db, ps


class TestMirroring:
    def test_existing_tuples_seeded(self, setup):
        db, ps = setup
        db.insert("emp", {"name": "A", "dept": "Shoe", "salary": 1})
        bridge = DatabaseProductionBridge(db, ps, ["emp"])
        facts = ps.facts("emp")
        assert len(facts) == 1
        assert facts[0]["name"] == "A"
        assert facts[0]["_tid"] == 1
        assert len(bridge) == 1

    def test_insert_update_delete_stream(self, setup):
        db, ps = setup
        bridge = DatabaseProductionBridge(db, ps, ["emp"])
        tid = db.insert("emp", {"name": "A", "dept": "Shoe", "salary": 1})
        assert len(ps.facts("emp")) == 1
        db.update("emp", tid, {"salary": 2})
        facts = ps.facts("emp")
        assert len(facts) == 1
        assert facts[0]["salary"] == 2
        db.delete("emp", tid)
        assert ps.facts("emp") == []
        assert bridge.wme_for("emp", tid) is None

    def test_unmirrored_relations_ignored(self, setup):
        db, ps = setup
        DatabaseProductionBridge(db, ps, ["emp"])
        db.insert("dept", {"dname": "Shoe", "floor": 3})
        assert ps.facts("dept") == []

    def test_close_stops_mirroring(self, setup):
        db, ps = setup
        bridge = DatabaseProductionBridge(db, ps, ["emp"])
        bridge.close()
        db.insert("emp", {"name": "A", "dept": "Shoe", "salary": 1})
        assert ps.facts("emp") == []

    def test_validation(self, setup):
        db, ps = setup
        with pytest.raises(RuleError):
            DatabaseProductionBridge(db, ps, [])
        from repro.errors import UnknownRelationError

        with pytest.raises(UnknownRelationError):
            DatabaseProductionBridge(db, ps, ["ghost"])


class TestThreeWayJoin:
    """The payoff: n-way joins over relational data."""

    def test_three_relation_join_fires(self, setup):
        db, ps = setup
        hits = []
        ps.add_rule(
            "colocated",
            "(emp ^name ?n ^dept ?d)"
            " (dept ^dname ?d ^floor ?f)"
            " (proj ^pname ?p ^floor ?f)",
            lambda ctx: hits.append((ctx["n"], ctx["p"])),
        )
        DatabaseProductionBridge(db, ps, ["emp", "dept", "proj"])
        db.insert("emp", {"name": "A", "dept": "Shoe", "salary": 1})
        db.insert("dept", {"dname": "Shoe", "floor": 3})
        assert hits == []  # no project on floor 3 yet
        db.insert("proj", {"pname": "P1", "floor": 3})
        assert hits == [("A", "P1")]
        db.insert("proj", {"pname": "P2", "floor": 4})
        assert hits == [("A", "P1")]  # wrong floor

    def test_update_retracts_old_join(self, setup):
        db, ps = setup
        hits = []
        ps.add_rule(
            "pair",
            "(emp ^dept ?d ^name ?n) (dept ^dname ?d)",
            lambda ctx: hits.append(ctx["n"]),
        )
        DatabaseProductionBridge(db, ps, ["emp", "dept"])
        tid = db.insert("emp", {"name": "A", "dept": "Shoe", "salary": 1})
        db.insert("dept", {"dname": "Shoe", "floor": 1})
        assert hits == ["A"]
        # moving the employee to a department with no dept row: the
        # modified WME (fresh timetag) no longer joins
        db.update("emp", tid, {"dept": "Ghost"})
        assert hits == ["A"]
        # moving back re-joins (fresh instantiation: refraction reset)
        db.update("emp", tid, {"dept": "Shoe"})
        assert hits == ["A", "A"]

    def test_negation_over_relational_data(self, setup):
        db, ps = setup
        lonely = []
        ps.add_rule(
            "dept-without-emps",
            "(dept ^dname ?d) -(emp ^dept ?d)",
            lambda ctx: lonely.append(ctx["d"]),
        )
        DatabaseProductionBridge(db, ps, ["emp", "dept"])
        db.insert("dept", {"dname": "Empty", "floor": 9})
        assert lonely == ["Empty"]
        db.insert("dept", {"dname": "Shoe", "floor": 1})
        db.insert("emp", {"name": "A", "dept": "Shoe", "salary": 1})
        assert lonely == ["Empty", "Shoe"]  # fired before the emp arrived

    def test_auto_run_disabled(self, setup):
        db, ps = setup
        hits = []
        ps.add_rule("any", "(emp ^name ?n)", lambda ctx: hits.append(ctx["n"]))
        DatabaseProductionBridge(db, ps, ["emp"], auto_run=False)
        db.insert("emp", {"name": "A", "dept": "Shoe", "salary": 1})
        assert hits == []
        ps.run()
        assert hits == ["A"]
