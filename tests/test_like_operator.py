"""Tests for the SQL-style LIKE operator in the condition language."""

import pytest
from hypothesis import given, strategies as st

from repro import compile_condition
from repro.errors import ParseError
from repro.lang import parse_condition
from repro.lang.ast_nodes import LikeNode, NotNode
from repro.predicates.clauses import FunctionClause, IntervalClause


def matches(condition, value):
    compiled = compile_condition("r", condition)
    return compiled.matches({"name": value})


class TestParsing:
    def test_like_node(self):
        node = parse_condition('name like "Ab%"')
        assert isinstance(node, LikeNode)
        assert node.attribute == "name"
        assert node.pattern == "Ab%"

    def test_not_like(self):
        node = parse_condition('name not like "Ab%"')
        assert isinstance(node, NotNode)
        assert isinstance(node.child, LikeNode)

    def test_errors(self):
        with pytest.raises(ParseError):
            parse_condition("name like 5")
        with pytest.raises(ParseError):
            parse_condition('5 like "x%"')
        with pytest.raises(ParseError):
            parse_condition("name like")


class TestPrefixPatterns:
    def test_prefix_matches(self):
        assert matches('name like "Ab%"', "Abacus")
        assert matches('name like "Ab%"', "Ab")
        assert not matches('name like "Ab%"', "Aa")
        assert not matches('name like "Ab%"', "ab")  # case sensitive
        assert not matches('name like "Ab%"', "Ac")

    def test_prefix_compiles_to_interval(self):
        compiled = compile_condition("r", 'name like "Ab%"')
        clause = list(compiled.group)[0].clauses[0]
        assert isinstance(clause, IntervalClause)
        assert clause.interval.low == "Ab"
        assert clause.interval.high == "Ac"
        assert not clause.interval.high_inclusive

    def test_prefix_is_indexable(self):
        """The point of the interval form: it enters the IBS-tree."""
        from repro import PredicateIndex

        index = PredicateIndex()
        for predicate in compile_condition("r", 'name like "Ab%"').group:
            index.add(predicate)
        pred = index.predicates_for("r")[0]
        assert index.indexed_attribute(pred.ident) == "name"
        assert index.match_idents("r", {"name": "Abba"}) == {pred.ident}
        assert index.match_idents("r", {"name": "Zebra"}) == set()

    def test_not_like_prefix_splits_into_rays(self):
        compiled = compile_condition("r", 'name not like "Ab%"')
        assert len(compiled.group) == 2
        assert not compiled.matches({"name": "Abacus"})
        assert compiled.matches({"name": "Aa"})
        assert compiled.matches({"name": "Ac"})

    def test_bare_percent_matches_all_strings(self):
        assert matches('name like "%"', "anything")
        assert matches('name like "%"', "")
        compiled = compile_condition("r", 'name like "%"')
        assert not compiled.matches({"name": 42})  # non-strings excluded

    def test_max_codepoint_prefix_falls_back(self):
        pattern = "A" + chr(0x10FFFF) + "%"
        compiled = compile_condition("r", f"name like '{pattern}'")
        clause = list(compiled.group)[0].clauses[0]
        assert isinstance(clause, FunctionClause)
        assert compiled.matches({"name": "A" + chr(0x10FFFF) + "tail"})


class TestGeneralPatterns:
    def test_infix_percent(self):
        assert matches('name like "A%z"', "Abcz")
        assert matches('name like "A%z"', "Az")
        assert not matches('name like "A%z"', "Abc")

    def test_underscore(self):
        assert matches('name like "A_c"', "Abc")
        assert not matches('name like "A_c"', "Ac")
        assert not matches('name like "A_c"', "Abbc")

    def test_regex_metacharacters_escaped(self):
        assert matches('name like "a.b%"', "a.b-tail")
        assert not matches('name like "a.b%"', "axb-tail")

    def test_general_pattern_not_indexable(self):
        compiled = compile_condition("r", 'name like "%x%"')
        pred = list(compiled.group)[0]
        assert not pred.is_indexable

    def test_not_like_general(self):
        assert matches('name not like "%x%"', "abc")
        assert not matches('name not like "%x%"', "axc")

    def test_non_string_value_never_matches(self):
        assert not matches('name like "4%"', 42)

    def test_combined_with_other_clauses(self):
        compiled = compile_condition("r", 'name like "A%" and age > 5')
        assert compiled.matches({"name": "Ada", "age": 9})
        assert not compiled.matches({"name": "Ada", "age": 3})
        assert not compiled.matches({"name": "Bob", "age": 9})

    @given(
        prefix=st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FF),
            min_size=1,
            max_size=4,
        ),
        value=st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FF),
            max_size=8,
        ),
    )
    def test_prefix_equivalence_property(self, prefix, value):
        if any(ch in prefix for ch in '"\\%_'):
            return  # quoting or wildcard chars: not a literal prefix
        compiled = compile_condition("r", f'name like "{prefix}%"')
        assert compiled.matches({"name": value}) == value.startswith(prefix)
