"""Property-based tests: IBS-tree invariants against brute force."""

from typing import Dict, List, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro import AVLIBSTree, FlatIBSTree, IBSTree, Interval, RBIBSTree
from tests.conftest import intervals, query_points

#: an operation script: insert (interval) / delete (index into live set)
ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), intervals()),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=10**6)),
    ),
    min_size=1,
    max_size=40,
)

TREE_CLASSES = [IBSTree, AVLIBSTree, RBIBSTree, FlatIBSTree]


def apply_script(tree, script) -> Dict[int, Interval]:
    """Run an op script against a tree, mirroring into a dict.

    Every backend's full invariant validator runs after **every single
    mutation** — not just at the end of the batch — so a mutation that
    leaves the tree transiently broken is pinned to the exact op that
    caused it, and each property test doubles as a structural check.
    """
    live: Dict[int, Interval] = {}
    next_id = 0
    for op, arg in script:
        if op == "insert":
            tree.insert(arg, next_id)
            live[next_id] = arg
            next_id += 1
        elif live:
            victim = sorted(live)[arg % len(live)]
            tree.delete(victim)
            del live[victim]
        else:
            continue
        assert tree.check_invariants() is True, (
            f"invariants broken after {op} "
            f"(op #{script.index((op, arg))}, {len(live)} live)"
        )
    return live


class TestStabbingCompleteness:
    """stab(x) == {I : x in I} for arbitrary operation sequences."""

    @pytest.mark.parametrize("cls", TREE_CLASSES)
    @given(script=ops, xs=st.lists(query_points, min_size=1, max_size=15))
    def test_stab(self, cls, script, xs):
        tree = cls()
        live = apply_script(tree, script)
        for x in xs:
            expected = {i for i, iv in live.items() if iv.contains(x)}
            assert tree.stab(x) == expected

    @pytest.mark.parametrize("cls", TREE_CLASSES)
    @given(script=ops, xs=st.lists(query_points, min_size=1, max_size=15))
    def test_stab_into(self, cls, script, xs):
        """stab_into unions into ``out`` without clearing prior entries."""
        tree = cls()
        live = apply_script(tree, script)
        for x in xs:
            expected = {i for i, iv in live.items() if iv.contains(x)}
            out = {"sentinel"}
            result = tree.stab_into(x, out)
            assert result is out
            assert out == expected | {"sentinel"}

    @pytest.mark.parametrize("cls", TREE_CLASSES)
    @given(script=ops, xs=st.lists(query_points, min_size=1, max_size=15))
    def test_stab_many(self, cls, script, xs):
        """Grouped descent agrees with one-at-a-time stabbing."""
        tree = cls()
        live = apply_script(tree, script)
        answers = tree.stab_many(xs)
        for x in xs:
            assert answers[x] == tree.stab(x)


class TestStructuralInvariants:
    """validate() passes after arbitrary operation sequences."""

    @pytest.mark.parametrize("cls", TREE_CLASSES)
    @given(script=ops)
    def test_invariants(self, cls, script):
        tree = cls()
        apply_script(tree, script)
        tree.validate()  # balanced variants also check balance/colors
        assert tree.audit() == []


class TestDeleteIsInverse:
    """insert(I); delete(I) leaves queries over other intervals unchanged."""

    @given(
        base=st.lists(intervals(), min_size=0, max_size=12),
        extra=intervals(),
        xs=st.lists(query_points, min_size=1, max_size=10),
    )
    def test_insert_then_delete_restores_answers(self, base, extra, xs):
        for cls in TREE_CLASSES:
            tree = cls()
            for k, iv in enumerate(base):
                tree.insert(iv, k)
            before = {x: tree.stab(x) for x in xs}
            tree.insert(extra, "extra")
            tree.delete("extra")
            tree.validate()
            for x in xs:
                assert tree.stab(x) == before[x]


class TestAVLBalance:
    @given(script=ops)
    def test_height_bound(self, script):
        import math

        tree = AVLIBSTree()
        apply_script(tree, script)
        n = tree.node_count
        if n:
            assert tree.height <= 1.4405 * math.log2(n + 2) + 1


class TestMarkerEconomy:
    def test_disjoint_intervals_linear_markers(self):
        """Section 5.1: non-overlapping intervals place O(N) markers."""
        tree = IBSTree()
        n = 200
        for k in range(n):
            tree.insert(Interval.closed(10 * k, 10 * k + 5), k)
        # each closed interval needs >= 2 markers (its two endpoints);
        # a small constant factor on top is allowed, but no log factor.
        assert tree.marker_count <= 4 * n

    def test_each_interval_logarithmic_markers(self):
        """No interval should ever hold more than O(log N) markers."""
        import math
        import random

        rng = random.Random(4)
        tree = AVLIBSTree()
        n = 300
        for k in range(n):
            a = rng.randint(0, 10_000)
            tree.insert(Interval.closed(a, a + rng.randint(0, 2_000)), k)
        bound = 6 * math.log2(n + 2)
        for k in range(n):
            assert tree.markers_of(k) <= bound
