"""Tests for predicate subsumption and disjointness analysis."""

import pytest
from hypothesis import given, strategies as st

from repro import EqualityClause, FunctionClause, Interval, IntervalClause, Predicate
from repro.core.subsumption import (
    clause_subsumes,
    find_subsumed,
    predicate_subsumes,
    predicates_disjoint,
)
from repro.lang import compile_condition
from tests.conftest import intervals, query_points


def is_odd(x):
    return x % 2 == 1


def pred(relation, *clauses):
    return Predicate(relation, clauses)


def from_text(relation, text):
    group = compile_condition(relation, text, {"isodd": is_odd}).group
    assert len(group) == 1
    return list(group)[0]


class TestClauseSubsumes:
    def test_interval_coverage(self):
        wide = IntervalClause("x", Interval.closed(0, 100))
        narrow = IntervalClause("x", Interval.closed(10, 20))
        assert clause_subsumes(wide, narrow)
        assert not clause_subsumes(narrow, wide)

    def test_equality_special_case(self):
        wide = IntervalClause("x", Interval.closed(0, 100))
        point = EqualityClause("x", 50)
        assert clause_subsumes(wide, point)
        assert not clause_subsumes(point, wide)
        assert clause_subsumes(point, EqualityClause("x", 50))

    def test_attribute_mismatch(self):
        assert not clause_subsumes(
            IntervalClause("x", Interval.unbounded()),
            IntervalClause("y", Interval.point(1)),
        )

    def test_function_identity(self):
        a = FunctionClause("x", is_odd)
        b = FunctionClause("x", is_odd)
        assert clause_subsumes(a, b)
        assert not clause_subsumes(a, a.negate())
        assert not clause_subsumes(a, EqualityClause("x", 1))

    def test_open_bound_edge(self):
        closed = IntervalClause("x", Interval.closed(1, 9))
        open_ = IntervalClause("x", Interval.open(1, 9))
        assert clause_subsumes(closed, open_)
        assert not clause_subsumes(open_, closed)


class TestPredicateSubsumes:
    def test_fewer_clauses_subsume(self):
        general = from_text("r", "x >= 0")
        specific = from_text("r", "x >= 10 and y = 3")
        assert predicate_subsumes(general, specific)
        assert not predicate_subsumes(specific, general)

    def test_empty_predicate_subsumes_all(self):
        everything = Predicate("r", [])
        anything = from_text("r", "x = 1")
        assert predicate_subsumes(everything, anything)
        assert not predicate_subsumes(anything, everything)

    def test_relation_mismatch(self):
        assert not predicate_subsumes(Predicate("r", []), Predicate("s", []))

    def test_equivalent_predicates(self):
        a = from_text("r", "3 <= x <= 9")
        b = from_text("r", "x >= 3 and x <= 9")
        assert predicate_subsumes(a, b)
        assert predicate_subsumes(b, a)

    def test_function_conjunct(self):
        general = pred("r", FunctionClause("x", is_odd))
        specific = pred(
            "r", FunctionClause("x", is_odd), EqualityClause("y", 2)
        )
        assert predicate_subsumes(general, specific)
        assert not predicate_subsumes(specific, general)

    @given(
        stored=st.lists(intervals(), min_size=1, max_size=6),
        other=intervals(),
        xs=st.lists(query_points, min_size=1, max_size=20),
    )
    def test_soundness_property(self, stored, other, xs):
        """If subsumption is reported, matching really is implied."""
        general = pred("r", IntervalClause("x", other))
        specific = pred("r", *[IntervalClause("x", iv) for iv in stored])
        if predicate_subsumes(general, specific):
            for x in xs:
                tup = {"x": x}
                if specific.matches(tup):
                    assert general.matches(tup)


class TestDisjoint:
    def test_non_overlapping_intervals(self):
        a = from_text("r", "x < 5")
        b = from_text("r", "x > 9")
        assert predicates_disjoint(a, b)

    def test_touching_intervals_not_disjoint(self):
        a = from_text("r", "x <= 5")
        b = from_text("r", "x >= 5")
        assert not predicates_disjoint(a, b)

    def test_different_relations_disjoint(self):
        assert predicates_disjoint(Predicate("r", []), Predicate("s", []))

    def test_functions_never_prove_disjoint(self):
        a = pred("r", FunctionClause("x", is_odd))
        b = pred("r", FunctionClause("x", is_odd, negated=True))
        assert not predicates_disjoint(a, b)  # conservative

    @given(a=intervals(), b=intervals(), xs=st.lists(query_points, min_size=1, max_size=20))
    def test_soundness_property(self, a, b, xs):
        """If disjointness is reported, no point matches both."""
        first = pred("r", IntervalClause("x", a))
        second = pred("r", IntervalClause("x", b))
        if predicates_disjoint(first, second):
            for x in xs:
                tup = {"x": x}
                assert not (first.matches(tup) and second.matches(tup))


class TestFindSubsumed:
    def test_reports_pairs_in_direction(self):
        general = from_text("r", "x >= 0")
        specific = from_text("r", "x >= 10")
        unrelated = from_text("s", "x >= 10")
        pairs = find_subsumed([specific, general, unrelated])
        assert pairs == [(general, specific)]

    def test_equivalent_reported_once(self):
        a = from_text("r", "3 <= x <= 9")
        b = from_text("r", "x >= 3 and x <= 9")
        pairs = find_subsumed([a, b])
        assert pairs == [(a, b)]

    def test_no_pairs(self):
        a = from_text("r", "x < 5")
        b = from_text("r", "x > 9")
        assert find_subsumed([a, b]) == []
