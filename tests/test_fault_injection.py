"""Deterministic fault-injection suite.

Each named injection site (``repro.testing.FAULT_SITES``) is driven by
a seeded :class:`~repro.testing.FaultInjector` and must uphold one of
two guarantees:

* **rolls back cleanly** — the operation raises, but observable state
  (match answers, files, tuples) is exactly as before; or
* **self-heals** — the damage is detected (``audit`` /
  ``CorruptSnapshotError``) and repaired
  (``verify_and_rebuild`` / ``recover_database``) to answers identical
  to a freshly built replica.

The seed sweep defaults to 0..2; CI widens it via the ``FAULT_SEEDS``
environment variable (comma-separated integers).
"""

import inspect
import os
import pathlib
import random
import sys

import pytest

from repro import (
    AVLIBSTree,
    Database,
    FlatIBSTree,
    IBSTree,
    Interval,
    IntervalClause,
    Predicate,
    PredicateIndex,
    RBIBSTree,
    RuleEngine,
)
from repro.db import (
    OperationJournal,
    load_database,
    read_journal,
    recover_database,
    save_database,
)
from repro.errors import (
    ActionQuarantinedError,
    CorruptSnapshotError,
    InjectedFault,
)
from repro.rules.failures import RetryPolicy
from repro.testing import FAULT_SITES, FaultInjector, active_injector, injected

SEEDS = [int(s) for s in os.environ.get("FAULT_SEEDS", "0,1,2").split(",")]

TREE_BACKENDS = [IBSTree, AVLIBSTree, RBIBSTree, FlatIBSTree]
BALANCED_BACKENDS = [AVLIBSTree, RBIBSTree]


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------


def build_index(factory, rng, count=24):
    idx = PredicateIndex(tree_factory=factory)
    for i in range(count):
        low = rng.randint(0, 60)
        high = low + rng.randint(0, 15)
        idx.add(
            Predicate(
                "emp",
                [IntervalClause("salary", Interval.closed(low, high))],
                ident=f"p{i}",
            )
        )
    return idx


def answers(idx, lo=0, hi=80):
    return {
        v: sorted(p.ident for p in idx.match("emp", {"salary": v}))
        for v in range(lo, hi)
    }


def fresh_answers(idx, factory, lo=0, hi=80):
    """Answers of a from-scratch index over the same predicates."""
    fresh = PredicateIndex(tree_factory=factory)
    for predicate in idx.predicates_for("emp"):
        fresh.add(predicate)
    return answers(fresh, lo, hi)


def sample_db():
    db = Database()
    db.create_relation("emp", ["name", "salary"])
    db.insert("emp", {"name": "A", "salary": 100})
    db.insert("emp", {"name": "B", "salary": 200})
    return db


def db_state(db):
    return {
        name: dict(db.relation(name).scan())
        for name in db.relations()
    }


# ----------------------------------------------------------------------
# the injector itself
# ----------------------------------------------------------------------


class TestInjectorDeterminism:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_seed_same_faults(self, seed):
        def run():
            inj = FaultInjector(
                seed=seed, rate=0.3, sites=["tree.insert"], max_faults=None
            )
            for n in range(200):
                try:
                    inj.hit("tree.insert")
                except InjectedFault:
                    pass
            return list(inj.fired)

        assert run() == run()

    def test_different_seeds_diverge(self):
        runs = set()
        for seed in range(5):
            inj = FaultInjector(
                seed=seed, rate=0.3, sites=["persist.write"], max_faults=None
            )
            for n in range(50):
                try:
                    inj.hit("persist.write")
                except InjectedFault:
                    pass
            runs.add(tuple(inj.fired))
        assert len(runs) > 1

    def test_armed_hit_is_exact(self):
        inj = FaultInjector()
        inj.arm("tree.delete", at_hit=3)
        inj.hit("tree.delete")
        inj.hit("tree.delete")
        with pytest.raises(InjectedFault) as excinfo:
            inj.hit("tree.delete")
        assert excinfo.value.site == "tree.delete"
        assert excinfo.value.hit == 3

    def test_max_faults_caps_firing(self):
        inj = FaultInjector(rate=1.0, sites=["persist.fsync"], max_faults=1)
        with pytest.raises(InjectedFault):
            inj.hit("persist.fsync")
        inj.hit("persist.fsync")  # capped: no second fault
        assert inj.fault_count == 1

    def test_uninstalled_injector_is_inert(self):
        assert active_injector() is None
        inj = FaultInjector(rate=1.0)
        with injected(inj):
            assert active_injector() is inj
        assert active_injector() is None


# ----------------------------------------------------------------------
# tree sites: "tree.insert", "tree.delete", "tree.rotate", "tree.bulk_load"
# ----------------------------------------------------------------------


class TestTreeFaults:
    @pytest.mark.parametrize("factory", TREE_BACKENDS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_insert_fault_rolls_back_cleanly(self, factory, seed):
        rng = random.Random(seed)
        idx = build_index(factory, rng)
        before = answers(idx)
        inj = FaultInjector(seed=seed)
        inj.arm("tree.insert", at_hit=1)
        with injected(inj):
            with pytest.raises(InjectedFault):
                idx.add(
                    Predicate(
                        "emp",
                        [IntervalClause("salary", Interval.closed(10, 30))],
                        ident="newcomer",
                    )
                )
        assert "newcomer" not in idx
        assert idx.audit() == []
        assert answers(idx) == before
        # the identifier is fully reusable after the rollback
        idx.add(
            Predicate(
                "emp",
                [IntervalClause("salary", Interval.closed(10, 30))],
                ident="newcomer",
            )
        )
        assert idx.check_invariants() is True

    @pytest.mark.parametrize("factory", TREE_BACKENDS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_delete_fault_self_heals(self, factory, seed):
        rng = random.Random(seed)
        idx = build_index(factory, rng)
        victim = f"p{rng.randrange(24)}"
        inj = FaultInjector(seed=seed)
        inj.arm("tree.delete", at_hit=1)
        with injected(inj):
            try:
                idx.remove(victim)
            except InjectedFault:
                pass  # fault fired: index may now be torn
        report = idx.verify_and_rebuild()
        assert idx.check_invariants() is True
        assert answers(idx) == fresh_answers(idx, factory)
        if not report["healthy"]:
            assert report["rebuilt"] == ["emp"]

    @pytest.mark.parametrize("factory", BALANCED_BACKENDS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_rotate_fault_self_heals(self, factory, seed):
        rng = random.Random(seed)
        idx = PredicateIndex(tree_factory=factory)
        inj = FaultInjector(seed=seed)
        inj.arm("tree.rotate", at_hit=1 + seed % 3)
        fired = False
        with injected(inj):
            for i in range(40):
                low = rng.randint(0, 200)
                predicate = Predicate(
                    "emp",
                    [IntervalClause("salary", Interval.closed(low, low + 5))],
                    ident=f"p{i}",
                )
                try:
                    idx.add(predicate)
                except InjectedFault:
                    fired = True
        assert fired, "workload never reached the armed rotation"
        idx.verify_and_rebuild()
        assert idx.check_invariants() is True
        assert answers(idx, 0, 210) == fresh_answers(idx, factory, 0, 210)

    @pytest.mark.parametrize("factory", TREE_BACKENDS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_bulk_load_fault_leaves_tree_empty(self, factory, seed):
        rng = random.Random(seed)
        items = []
        for i in range(20):
            low = rng.randint(0, 100)
            items.append((Interval.closed(low, low + rng.randint(0, 10)), f"p{i}"))
        tree = factory()
        inj = FaultInjector(seed=seed)
        inj.arm("tree.bulk_load", at_hit=1)
        with injected(inj):
            with pytest.raises(InjectedFault):
                tree.bulk_load(items)
        # the failed load rolled all the way back: empty, valid, reusable
        assert len(tree) == 0
        assert tree.check_invariants() is True
        assert tree.bulk_load(items) == [ident for _, ident in items]
        assert tree.check_invariants() is True
        reference = factory()
        for interval, ident in items:
            reference.insert(interval, ident)
        for value in range(-1, 115):
            assert tree.stab(value) == reference.stab(value)

    @pytest.mark.parametrize("factory", TREE_BACKENDS)
    def test_tree_level_insert_rollback(self, factory):
        tree = factory()
        tree.insert(Interval.closed(1, 5), "a")
        tree.insert(Interval.closed(3, 9), "b")
        inj = FaultInjector()
        inj.arm("tree.insert", at_hit=1)
        with injected(inj):
            with pytest.raises(InjectedFault):
                tree.insert(Interval.closed(2, 7), "c")
        assert "c" not in tree
        assert len(tree) == 2
        assert tree.check_invariants() is True
        assert sorted(tree.stab(4)) == ["a", "b"]


# ----------------------------------------------------------------------
# persistence sites: "persist.write", "persist.fsync", "persist.replace"
# ----------------------------------------------------------------------


PERSIST_SITES = ["persist.write", "persist.fsync", "persist.replace"]


class TestPersistenceFaults:
    @pytest.mark.parametrize("site", PERSIST_SITES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_crashed_save_preserves_old_snapshot(self, site, seed, tmp_path):
        db = sample_db()
        path = tmp_path / "snap.json"
        save_database(db, path)
        old_state = db_state(load_database(path))
        db.insert("emp", {"name": "C", "salary": 300})
        inj = FaultInjector(seed=seed)
        inj.arm(site, at_hit=1)
        with injected(inj):
            with pytest.raises(InjectedFault):
                save_database(db, path)
        # the old snapshot is untouched and still loads
        assert db_state(load_database(path)) == old_state
        # no temp files leak
        leftovers = [p for p in tmp_path.iterdir() if p.name != "snap.json"]
        assert leftovers == []

    @pytest.mark.parametrize("site", PERSIST_SITES)
    def test_kill_during_save_recovers_via_journal(self, site, tmp_path):
        snap = tmp_path / "snap.json"
        jpath = tmp_path / "ops.journal"
        db = sample_db()
        save_database(db, snap)  # checkpoint
        journal = OperationJournal(jpath)
        detach = journal.attach(db)
        db.insert("emp", {"name": "C", "salary": 300})
        db.update("emp", 1, {"salary": 150})
        db.delete("emp", 2)
        inj = FaultInjector()
        inj.arm(site, at_hit=1)
        with injected(inj):
            with pytest.raises(InjectedFault):
                save_database(db, snap)  # the "kill" mid-checkpoint
        detach()
        # recovery: old checkpoint + journal replay == live state
        recovered = recover_database(snap, jpath)
        assert db_state(recovered) == db_state(db)
        assert recovered.relation("emp").next_tid == db.relation("emp").next_tid

    def test_torn_snapshot_raises_corrupt_error(self, tmp_path):
        path = tmp_path / "snap.json"
        save_database(sample_db(), path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # torn write
        with pytest.raises(CorruptSnapshotError):
            load_database(path)

    def test_checksum_tamper_raises_corrupt_error(self, tmp_path):
        path = tmp_path / "snap.json"
        save_database(sample_db(), path)
        text = path.read_text().replace('"A"', '"Z"', 1)  # bit flip
        path.write_text(text)
        with pytest.raises(CorruptSnapshotError):
            load_database(path)

    def test_journal_append_fault_keeps_replay_consistent(self, tmp_path):
        snap = tmp_path / "snap.json"
        jpath = tmp_path / "ops.journal"
        db = sample_db()
        save_database(db, snap)
        journal = OperationJournal(jpath)
        journal.attach(db)
        db.insert("emp", {"name": "C", "salary": 300})
        inj = FaultInjector()
        inj.arm("journal.append", at_hit=1)
        with injected(inj):
            with pytest.raises(InjectedFault):
                db.insert("emp", {"name": "D", "salary": 400})
        # the op was durably written before the injected fsync crash, so
        # snapshot + journal replay equals the database's live state
        recovered = recover_database(snap, jpath)
        assert db_state(recovered) == db_state(db)

    def test_journal_torn_tail_is_dropped(self, tmp_path):
        jpath = tmp_path / "ops.journal"
        db = sample_db()
        journal = OperationJournal(jpath)
        journal.attach(db)
        db.insert("emp", {"name": "C", "salary": 300})
        db.insert("emp", {"name": "D", "salary": 400})
        intact = read_journal(jpath)
        raw = jpath.read_bytes()
        jpath.write_bytes(raw[:-7])  # torn final record
        ops = read_journal(jpath)
        assert ops == intact[:-1]


# ----------------------------------------------------------------------
# engine site: "engine.action"
# ----------------------------------------------------------------------


class TestActionFaults:
    @staticmethod
    def build_engine(**kwargs):
        db = Database()
        db.create_relation("emp", ["name", "salary"])
        db.create_relation("log", ["message"])
        engine = RuleEngine(db, **kwargs)
        return db, engine

    @pytest.mark.parametrize("seed", SEEDS)
    def test_action_fault_is_quarantined(self, seed):
        db, engine = self.build_engine()
        engine.create_rule(
            "logger",
            on="emp",
            condition="salary > 10",
            action=lambda ctx: ctx.db.insert("log", {"message": ctx.tuple["name"]}),
        )
        inj = FaultInjector(seed=seed)
        inj.arm("engine.action", at_hit=1)
        with injected(inj):
            tid = db.insert("emp", {"name": "A", "salary": 100})
        # the trigger commits; the failed firing is quarantined
        assert db.relation("emp").get(tid)["name"] == "A"
        assert db.count("log") == 0
        failures = engine.failures()
        assert len(failures) == 1
        assert failures[0].rule_name == "logger"
        assert isinstance(failures[0].error, InjectedFault)

    def test_retry_recovers_transient_fault(self):
        db, engine = self.build_engine(retry_policy=RetryPolicy(max_attempts=2))
        engine.create_rule(
            "logger",
            on="emp",
            condition="salary > 10",
            action=lambda ctx: ctx.db.insert("log", {"message": ctx.tuple["name"]}),
        )
        inj = FaultInjector()  # max_faults=1: the retry succeeds
        inj.arm("engine.action", at_hit=1)
        with injected(inj):
            db.insert("emp", {"name": "A", "salary": 100})
        assert db.count("log") == 1
        assert engine.failures() == []

    def test_failed_action_mutations_roll_back(self):
        db, engine = self.build_engine()

        def log_then_fail(ctx):
            ctx.db.insert("log", {"message": "half-done"})
            raise ValueError("action bug")

        engine.create_rule(
            "buggy", on="emp", condition="salary > 10", action=log_then_fail
        )
        db.insert("emp", {"name": "A", "salary": 100})
        # the action's own insert was rolled back with the failure
        assert db.count("log") == 0
        assert len(engine.failures()) == 1

    def test_poison_pill_disables_rule(self):
        db, engine = self.build_engine(
            retry_policy=RetryPolicy(poison_threshold=2)
        )

        def always_fails(ctx):
            raise ValueError("permanently broken")

        engine.create_rule(
            "poison", on="emp", condition="salary > 10", action=always_fails
        )
        db.insert("emp", {"name": "A", "salary": 100})
        assert engine.rule("poison").enabled is True
        db.insert("emp", {"name": "B", "salary": 100})
        assert engine.rule("poison").enabled is False
        assert engine.failures()[-1].poisoned is True
        # a disabled rule no longer fires (and no longer fails)
        db.insert("emp", {"name": "C", "salary": 100})
        assert len(engine.failures()) == 2

    def test_requeue_failures_refires_fixed_rule(self):
        db, engine = self.build_engine()
        broken = {"flag": True}

        def flaky(ctx):
            if broken["flag"]:
                raise ValueError("still broken")
            ctx.db.insert("log", {"message": ctx.tuple["name"]})

        engine.create_rule("flaky", on="emp", condition="salary > 10", action=flaky)
        db.insert("emp", {"name": "A", "salary": 100})
        assert len(engine.failures()) == 1
        broken["flag"] = False
        assert engine.requeue_failures() == 1
        assert engine.failures() == []
        assert db.count("log") == 1

    def test_strict_requeue_raises_when_still_failing(self):
        db, engine = self.build_engine()

        def always_fails(ctx):
            raise ValueError("permanently broken")

        engine.create_rule(
            "bad", on="emp", condition="salary > 10", action=always_fails
        )
        db.insert("emp", {"name": "A", "salary": 100})
        with pytest.raises(ActionQuarantinedError):
            engine.requeue_failures(strict=True)

    def test_propagate_mode_preserves_legacy_behaviour(self):
        db, engine = self.build_engine(on_error="propagate")

        def always_fails(ctx):
            raise ValueError("boom")

        engine.create_rule(
            "bad", on="emp", condition="salary > 10", action=always_fails
        )
        with pytest.raises(ValueError, match="boom"):
            db.insert("emp", {"name": "A", "salary": 100})
        assert engine.failures() == []


# ----------------------------------------------------------------------
# meta: every declared site is exercised by this suite
# ----------------------------------------------------------------------


class TestSiteCoverage:
    def test_every_fault_site_is_exercised(self):
        # disk-tier crash drills live in tests/test_disk_tier.py and
        # maintenance-plane drills in tests/test_maintenance.py; every
        # other site must be armed somewhere in this module
        source = inspect.getsource(sys.modules[__name__])
        disk_drills = pathlib.Path(__file__).with_name("test_disk_tier.py")
        source += disk_drills.read_text(encoding="utf-8")
        maint_drills = pathlib.Path(__file__).with_name("test_maintenance.py")
        source += maint_drills.read_text(encoding="utf-8")
        for site in FAULT_SITES:
            assert f'"{site}"' in source, f"no scenario covers site {site!r}"

    def test_fault_sites_are_stable(self):
        # renaming a site silently orphans tests that arm the old name
        assert set(FAULT_SITES) == {
            "tree.insert",
            "tree.delete",
            "tree.rotate",
            "tree.bulk_load",
            "persist.write",
            "persist.fsync",
            "persist.replace",
            "journal.append",
            "engine.action",
            "worker.kill_before_reply",
            "worker.hang",
            "ipc.corrupt_frame",
            "shm.unlink_early",
            "disk.torn_segment",
            "disk.partial_checkpoint",
            "disk.mmap_unlink",
            "maint.task_raises",
            "maint.tick_during_migration",
            "maint.checkpoint_preempted",
        }

    def test_unknown_site_rejected_at_arm_time_with_suggestion(self):
        # a misspelled site must fail when armed (not silently never
        # fire at trigger time) and the error must name the nearest
        # registered site so seeded CI failures are diagnosable
        injector = FaultInjector()
        with pytest.raises(ValueError, match="did you mean 'tree.insert'"):
            injector.arm("tree.inserp")
        with pytest.raises(ValueError, match="did you mean 'worker.hang'"):
            FaultInjector(rate=0.5, sites=["worker.hangg"])
        # a name nothing like any site still lists the registry
        with pytest.raises(ValueError, match="registered sites"):
            injector.arm("zzz")
