"""Differential tests for the concurrent sharded matching front-end.

The core property: whatever interleaving really happened, a
``ConcurrentPredicateIndex`` under N writer + M reader threads must
return exactly the match sets a serial ``PredicateIndex`` produces when
replaying the same (publication-ordered) operation log — for every one
of the four tree backends.
"""

import threading

import pytest

from repro.concurrency import ConcurrentPredicateIndex, RelationShard
from repro.core.avl_ibs_tree import AVLIBSTree
from repro.core.flat_ibs_tree import FlatIBSTree
from repro.core.ibs_tree import IBSTree
from repro.core.intervals import Interval
from repro.core.predicate_index import PredicateIndex
from repro.core.rb_ibs_tree import RBIBSTree
from repro.errors import (
    ConcurrencyError,
    PredicateError,
    TreeError,
    UnknownIntervalError,
)
from repro.predicates.clauses import IntervalClause
from repro.predicates.predicate import Predicate
from repro.testing.concurrency import (
    EpochChecker,
    PredicateIndexReplayer,
    StressDriver,
)

BACKENDS = [IBSTree, AVLIBSTree, RBIBSTree, FlatIBSTree]
BACKEND_IDS = ["ibs", "avl", "rb", "flat"]


def interval_pred(ident, low, high, attribute="x", relation="r"):
    return Predicate(
        relation,
        [IntervalClause(attribute, Interval.closed(low, high))],
        ident=ident,
    )


# ----------------------------------------------------------------------
# single-threaded facade semantics
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS, ids=BACKEND_IDS)
def test_facade_matches_serial_index_single_threaded(backend):
    """With no concurrency at all, facade and serial index agree exactly."""
    concurrent = ConcurrentPredicateIndex(
        tree_factory=backend, compaction_threshold=8
    )
    serial = PredicateIndex(tree_factory=backend)
    for i in range(40):
        pred = interval_pred(f"p{i}", i * 3, i * 3 + 10)
        concurrent.add(pred)
        serial.add(interval_pred(f"p{i}", i * 3, i * 3 + 10))
    for i in range(0, 40, 4):
        concurrent.remove(f"p{i}")
        serial.remove(f"p{i}")
    for value in range(0, 140, 5):
        tup = {"x": value}
        assert concurrent.match_idents("r", tup) == serial.match_idents("r", tup)
    assert len(concurrent) == len(serial)


def test_duplicate_and_unknown_idents():
    idx = ConcurrentPredicateIndex()
    idx.add(interval_pred("a", 0, 10))
    with pytest.raises(PredicateError):
        idx.add(interval_pred("a", 5, 15))
    with pytest.raises(UnknownIntervalError):
        idx.remove("missing")
    assert idx.remove("a").ident == "a"
    with pytest.raises(UnknownIntervalError):
        idx.remove("a")


def test_match_batch_fanout_merges_in_input_order():
    """Pool fan-out must be byte-identical to the inline result."""
    inline = ConcurrentPredicateIndex(workers=0)
    fanned = ConcurrentPredicateIndex(workers=4, min_chunk=8)
    for i in range(30):
        inline.add(interval_pred(f"p{i}", i, i + 12))
        fanned.add(interval_pred(f"p{i}", i, i + 12))
    tuples = [{"x": value % 45} for value in range(200)]
    inline_rows = inline.match_batch("r", tuples)
    fanned_rows = fanned.match_batch("r", tuples)
    assert [[p.ident for p in row] for row in fanned_rows] == [
        [p.ident for p in row] for row in inline_rows
    ]
    fanned.close()


def test_match_batch_grouped_covers_all_relations():
    idx = ConcurrentPredicateIndex(workers=2)
    idx.add(interval_pred("a", 0, 10, relation="r1"))
    idx.add(interval_pred("b", 0, 10, relation="r2"))
    grouped = idx.match_batch_grouped(
        {"r1": [{"x": 5}], "r2": [{"x": 5}, {"x": 99}]}
    )
    assert [[p.ident for p in row] for row in grouped["r1"]] == [["a"]]
    assert [[p.ident for p in row] for row in grouped["r2"]] == [["b"], []]
    idx.close()


def test_snapshot_isolation_across_writes():
    """A snapshot taken before a write never sees that write."""
    idx = ConcurrentPredicateIndex()
    idx.add(interval_pred("a", 0, 10))
    before = idx.snapshot("r")
    idx.add(interval_pred("b", 0, 10))
    idx.remove("a")
    assert before.match_idents({"x": 5}) == {"a"}
    assert idx.match_idents("r", {"x": 5}) == {"b"}


def test_snapshot_bases_are_frozen():
    idx = ConcurrentPredicateIndex(compaction_threshold=2)
    for i in range(5):  # forces at least one compaction
        idx.add(interval_pred(f"p{i}", i, i + 5))
    snap = idx.snapshot("r")
    assert snap.base.frozen
    with pytest.raises(PredicateError):
        snap.base.add(interval_pred("x", 0, 1))
    tree = snap.base.tree_for("r", "x")
    assert tree is not None and tree.frozen
    with pytest.raises(TreeError):
        tree.insert(Interval.closed(0, 1), "sneaky")


def test_epochs_strictly_increase_across_compaction_and_rebuild():
    idx = ConcurrentPredicateIndex(compaction_threshold=3)
    seen = []
    idx.on_publish(lambda rel, epoch, kind, payload: seen.append((epoch, kind)))
    for i in range(10):
        idx.add(interval_pred(f"p{i}", i, i + 5))
    idx.compact("r")
    idx.retune("r")
    assert idx.verify_and_rebuild()["healthy"]
    epochs = [epoch for epoch, _ in seen]
    assert epochs == sorted(epochs) and len(set(epochs)) == len(epochs)
    assert any(kind == "compact" for _, kind in seen)


def test_shard_rejects_foreign_relation():
    shard = RelationShard("r", PredicateIndex)
    with pytest.raises(ConcurrencyError):
        shard.add(interval_pred("a", 0, 1, relation="other"))


def test_close_is_idempotent_and_context_manager_closes():
    with ConcurrentPredicateIndex(workers=2, min_chunk=1) as idx:
        idx.add(interval_pred("a", 0, 10))
        idx.match_batch("r", [{"x": 1}] * 8)
    idx.close()  # second close is a no-op
    # matching still works inline after close
    assert idx.match_idents("r", {"x": 5}) == {"a"}


# ----------------------------------------------------------------------
# differential: concurrent run vs serial replay, all four backends
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS, ids=BACKEND_IDS)
def test_stress_concurrent_equals_serial_replay(backend):
    """4 writers + 8 readers; every observed read must equal the serial
    replay of the publication log at its epoch (StressDriver raises
    ConcurrencyViolation otherwise)."""
    idx = ConcurrentPredicateIndex(
        tree_factory=backend, workers=2, compaction_threshold=16
    )
    driver = StressDriver(
        idx,
        relations=("r1", "r2"),
        writers=4,
        readers=8,
        writer_ops=40,
        reader_ops=80,
        seed=101,
    )
    report = driver.run()
    assert report["observations"] == 8 * 80
    assert sum(report["publications"].values()) == 4 * 40
    idx.close()


@pytest.mark.parametrize("backend", BACKENDS, ids=BACKEND_IDS)
def test_final_state_equals_serial_replay(backend):
    """After the storm settles, the facade's full contents — not just
    sampled probes — equal a serial index that replayed the log."""
    idx = ConcurrentPredicateIndex(tree_factory=backend, compaction_threshold=8)
    checker = EpochChecker()
    checker.attach(idx)
    barrier = threading.Barrier(4)
    errors = []

    def writer(writer_id):
        try:
            barrier.wait()
            for op in range(30):
                ident = f"w{writer_id}-{op}"
                idx.add(interval_pred(ident, (writer_id * 7 + op) % 50, 60))
                if op % 3 == 2:
                    idx.remove(ident)
        except BaseException as exc:  # pragma: no cover - diagnostic aid
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    replayer = PredicateIndexReplayer("r", backend)
    for _, kind, payload in checker.ops("r"):
        replayer.apply(kind, payload)
    for value in range(0, 120, 7):
        tup = {"x": value}
        assert idx.match_idents("r", tup) == replayer.query(tup)


def test_concurrent_readers_see_only_published_epochs():
    """Readers hammering match_idents_at while writers publish must only
    ever observe epochs that the publication log actually contains."""
    idx = ConcurrentPredicateIndex(compaction_threshold=4)
    checker = EpochChecker()
    checker.attach(idx)
    stop = threading.Event()
    observed = []
    errors = []

    def reader():
        try:
            while not stop.is_set():
                epoch, idents = idx.match_idents_at("r", {"x": 10})
                observed.append((epoch, idents))
        except BaseException as exc:  # pragma: no cover
            errors.append(exc)

    reader_thread = threading.Thread(target=reader)
    reader_thread.start()
    for i in range(60):
        idx.add(interval_pred(f"p{i}", i % 20, 25))
    stop.set()
    reader_thread.join()
    assert not errors
    published = {0} | {epoch for epoch, _, _ in checker.ops("r")}
    assert {epoch for epoch, _ in observed} <= published
    # epoch order as seen by one reader is monotone (no time travel)
    epochs = [epoch for epoch, _ in observed]
    assert epochs == sorted(epochs)


# ----------------------------------------------------------------------
# regression: pool discipline, close semantics, routing-map guards
# ----------------------------------------------------------------------


def test_match_batch_grouped_saturated_pool_does_not_deadlock():
    """Grouped matching with as many big relation batches as workers.

    Each grouped task used to call ``self.match_batch``, which fanned
    chunk sub-tasks into the *same* bounded pool and blocked on their
    futures — with every worker occupied by a blocked parent, the chunk
    tasks could never run and the pool deadlocked permanently.  Grouped
    tasks now match their relation's whole batch inline on one worker.
    """
    idx = ConcurrentPredicateIndex(workers=2, min_chunk=4)
    serial = PredicateIndex()
    relations = ["r1", "r2", "r3", "r4"]
    for rel in relations:
        for i in range(10):
            idx.add(interval_pred(f"{rel}-p{i}", i * 2, i * 2 + 9, relation=rel))
            serial.add(interval_pred(f"{rel}-p{i}", i * 2, i * 2 + 9, relation=rel))
    # every batch >= 2 * min_chunk so the old code would have chunked it
    batches = {rel: [{"x": v % 30} for v in range(24)] for rel in relations}
    grouped = idx.match_batch_grouped(batches)
    for rel, tuples in batches.items():
        expected = serial.match_batch(rel, tuples)
        # per-row sets: the facade's bulk-loaded base orders rows
        # differently from the incrementally-built serial index
        assert [{p.ident for p in row} for row in grouped[rel]] == [
            {p.ident for p in row} for row in expected
        ]
    idx.close()


def test_match_batch_after_close_runs_inline():
    """close() promises matching stays available; it must not raise."""
    idx = ConcurrentPredicateIndex(workers=4, min_chunk=2)
    for i in range(10):
        idx.add(interval_pred(f"p{i}", i, i + 5))
    tuples = [{"x": v % 16} for v in range(40)]  # >= 2 * min_chunk
    before = idx.match_batch("r", tuples)
    idx.close()
    after = idx.match_batch("r", tuples)
    assert [[p.ident for p in row] for row in after] == [
        [p.ident for p in row] for row in before
    ]
    grouped = idx.match_batch_grouped({"r": tuples, "other": [{"x": 1}]})
    assert [[p.ident for p in row] for row in grouped["r"]] == [
        [p.ident for p in row] for row in before
    ]
    assert grouped["other"] == [[]]


def test_cross_relation_duplicate_ident_rejected():
    """The same ident under two relations must raise, not silently
    overwrite the routing entry (stranding the first predicate)."""
    idx = ConcurrentPredicateIndex()
    idx.add(interval_pred("dup", 0, 10, relation="r1"))
    with pytest.raises(PredicateError):
        idx.add(interval_pred("dup", 0, 10, relation="r2"))
    with pytest.raises(PredicateError):
        idx.add_many([interval_pred("dup", 0, 10, relation="r2")])
    # the original registration is untouched and still routable
    assert idx.get("dup").relation == "r1"
    assert idx.match_idents("r1", {"x": 5}) == {"dup"}
    assert idx.match_idents("r2", {"x": 5}) == set()
    assert len(idx) == 1
    assert idx.remove("dup").ident == "dup"
    assert len(idx) == 0


def test_add_many_failure_releases_only_its_claims():
    """A rejected batch must roll its routing claims back so the idents
    stay addable, without disturbing predicates registered earlier."""
    idx = ConcurrentPredicateIndex()
    idx.add(interval_pred("keep", 0, 10))
    with pytest.raises(PredicateError):
        # duplicate ident within one batch: the shard rejects the batch
        idx.add_many(
            [interval_pred("new", 20, 30), interval_pred("new", 40, 50)]
        )
    assert "new" not in idx
    assert idx.get("keep").ident == "keep"
    idx.add(interval_pred("new", 20, 30))  # claim was released
    assert idx.match_idents("r", {"x": 25}) == {"new"}


def test_introspection_safe_during_concurrent_shard_creation():
    """len()/epochs()/relations()/compact() iterate a stable snapshot of
    the shard table; concurrent first-use shard creation used to raise
    'dictionary changed size during iteration'."""
    idx = ConcurrentPredicateIndex()
    errors = []
    stop = threading.Event()

    def creator():
        try:
            for i in range(300):
                idx.add(interval_pred(f"p{i}", 0, 10, relation=f"rel{i}"))
        except BaseException as exc:  # pragma: no cover - diagnostic aid
            errors.append(exc)
        finally:
            stop.set()

    def inspector():
        try:
            while not stop.is_set():
                len(idx)
                idx.epochs()
                idx.relations()
                idx.compact()
        except BaseException as exc:  # pragma: no cover - diagnostic aid
            errors.append(exc)

    threads = [threading.Thread(target=creator)] + [
        threading.Thread(target=inspector) for _ in range(2)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert len(idx) == 300
    assert len(idx.relations()) == 300
