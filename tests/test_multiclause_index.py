"""Tests for multi-clause indexing mode (the ABL4 design alternative)."""

import random

import pytest

from repro import EqualityClause, Interval, IntervalClause, Predicate, PredicateIndex
from repro.lang import compile_condition

FNS = {"isodd": lambda x: x % 2 == 1}


def build_predicates(seed=17, count=80):
    rng = random.Random(seed)
    conditions = []
    for _ in range(count):
        parts = []
        for _ in range(rng.randint(1, 3)):
            attr = rng.choice(["a", "b", "c"])
            roll = rng.random()
            if roll < 0.3:
                parts.append(f"{attr} = {rng.randint(0, 20)}")
            elif roll < 0.6:
                lo = rng.randint(0, 15)
                parts.append(f"{lo} <= {attr} <= {lo + rng.randint(0, 8)}")
            elif roll < 0.8:
                parts.append(f"{attr} >= {rng.randint(0, 20)}")
            else:
                parts.append(f"isodd({attr})")
        conditions.append(" and ".join(parts))
    predicates = []
    for text in conditions:
        predicates.extend(compile_condition("rel", text, FNS).group)
    return predicates


class TestMultiClauseEquivalence:
    def test_matches_brute_force_with_nulls(self):
        predicates = build_predicates()
        index = PredicateIndex(multi_clause=True)
        for predicate in predicates:
            index.add(predicate)
        rng = random.Random(99)
        for _ in range(300):
            tup = {
                attr: rng.choice([None, rng.randint(0, 22)])
                for attr in ["a", "b", "c"]
            }
            expected = {p.ident for p in predicates if p.matches(tup)}
            assert index.match_idents("rel", tup) == expected, tup

    def test_agrees_with_single_clause_mode(self):
        predicates = build_predicates(seed=3)
        single = PredicateIndex()
        multi = PredicateIndex(multi_clause=True)
        for predicate in predicates:
            single.add(predicate)
            multi.add(Predicate(predicate.relation, predicate.clauses,
                                ident=("m", predicate.ident)))
        rng = random.Random(31)
        for _ in range(200):
            tup = {attr: rng.randint(0, 22) for attr in ["a", "b", "c"]}
            got_single = single.match_idents("rel", tup)
            got_multi = {ident[1] for ident in multi.match_idents("rel", tup)}
            assert got_single == got_multi

    def test_removal(self):
        predicates = build_predicates(seed=5, count=40)
        index = PredicateIndex(multi_clause=True)
        for predicate in predicates:
            index.add(predicate)
        rng = random.Random(55)
        removed = rng.sample(predicates, 20)
        for predicate in removed:
            index.remove(predicate.ident)
        remaining = [p for p in predicates if p not in removed]
        for _ in range(100):
            tup = {attr: rng.randint(0, 22) for attr in ["a", "b", "c"]}
            expected = {p.ident for p in remaining if p.matches(tup)}
            assert index.match_idents("rel", tup) == expected


class TestMultiClauseStructure:
    def test_all_clauses_indexed(self):
        index = PredicateIndex(multi_clause=True)
        predicate = Predicate(
            "r",
            [
                EqualityClause("a", 1),
                IntervalClause("b", Interval.closed(0, 9)),
            ],
        )
        index.add(predicate)
        assert set(index.indexed_attributes(predicate.ident)) == {"a", "b"}
        assert index.tree_for("r", "a") is not None
        assert index.tree_for("r", "b") is not None

    def test_single_mode_indexes_one(self):
        index = PredicateIndex()
        predicate = Predicate(
            "r",
            [
                EqualityClause("a", 1),
                IntervalClause("b", Interval.closed(0, 9)),
            ],
        )
        index.add(predicate)
        assert index.indexed_attributes(predicate.ident) == ("a",)

    def test_candidate_pruning(self):
        """Intersection excludes predicates failing a second clause."""
        index = PredicateIndex(multi_clause=True)
        predicate = Predicate(
            "r", [EqualityClause("a", 1), EqualityClause("b", 2)]
        )
        index.add(predicate)
        index.stats.reset()
        assert index.match("r", {"a": 1, "b": 99}) == []
        # single-clause mode would report one partial match here;
        # intersection prunes it before the residual test
        assert index.stats.partial_matches == 0

    def test_null_in_any_indexed_attribute_disqualifies(self):
        index = PredicateIndex(multi_clause=True)
        predicate = Predicate(
            "r", [EqualityClause("a", 1), EqualityClause("b", 2)]
        )
        index.add(predicate)
        assert index.match_idents("r", {"a": 1, "b": None}) == set()


class TestABL4Runner:
    def test_shapes(self):
        from repro.bench.runner import run_ablation_multiclause

        rows = run_ablation_multiclause(predicates=80, tuples=60)
        by_name = {row["scheme"]: row for row in rows}
        single = by_name["single (paper)"]
        multi = by_name["multi-clause"]
        assert multi["partials_per_tuple"] < single["partials_per_tuple"]
        assert multi["markers"] > single["markers"]
        assert multi["full_matches_per_tuple"] == pytest.approx(
            single["full_matches_per_tuple"]
        )
