"""Differential tests for the vectorized columnar batch plane.

``repro.match.columnar`` precomputes every stab outcome of a relation's
flat trees into packed bit rows and answers ``match_batch`` with NumPy
gathers.  None of that may change a single answer: every test here
compares the ``columnar`` strategy against the scalar batch path and
the per-tuple path, which the brute-force suites pin to the paper's
semantics.  The module runs — and must pass — without NumPy too: the
plane is then inert and the strategy answers through the scalar
pipeline, which is exactly the fallback contract under test.
"""

import random
from decimal import Decimal

import pytest

from repro import (
    EqualityClause,
    FunctionClause,
    Interval,
    IntervalClause,
    Predicate,
    PredicateIndex,
)
from repro.concurrency import ConcurrentPredicateIndex
from repro.match import columnar as columnar_module
from repro.match.columnar import HAVE_NUMPY
from repro.match.registry import DEFAULT_REGISTRY

ATTRS = ["a", "b", "c"]


def is_odd(x):
    return x % 2 == 1


def build_predicates(rng, count):
    """Single-clause predicates over ATTRS: equalities, closed and open
    intervals, and (negated) function clauses — the full residual-kind
    spread the plane compiles or falls back on."""
    predicates = []
    for ident in range(count):
        attr = rng.choice(ATTRS)
        kind = rng.random()
        if kind < 0.2:
            clause = EqualityClause(attr, rng.randint(-8, 8))
        elif kind < 0.5:
            lo = rng.randint(-10, 10)
            hi = lo + rng.randint(0, 6)
            clause = IntervalClause(
                attr,
                Interval(lo, hi, rng.random() < 0.7, rng.random() < 0.7)
                if lo != hi
                else Interval.closed(lo, hi),
            )
        elif kind < 0.7:
            clause = IntervalClause(attr, Interval.at_least(rng.randint(-10, 10)))
        elif kind < 0.85:
            clause = IntervalClause(attr, Interval.at_most(rng.randint(-10, 10)))
        else:
            clause = FunctionClause(attr, is_odd, negated=rng.random() < 0.5)
        predicates.append(Predicate("r", [clause], ident=ident))
    return predicates


def make_tuple(rng, edge_values=()):
    tup = {}
    for attr in ATTRS:
        roll = rng.random()
        if roll < 0.12:
            continue  # missing key
        if roll < 0.24:
            tup[attr] = None
        elif edge_values and roll < 0.45:
            tup[attr] = rng.choice(edge_values)
        else:
            tup[attr] = rng.choice(
                [rng.randint(-12, 12), float(rng.randint(-12, 12)),
                 rng.uniform(-12.0, 12.0), bool(rng.random() < 0.5), 0, 0.0]
            )
    return tup


def ident_rows(rows):
    return [sorted(p.ident for p in row) for row in rows]


def columnar_index():
    return DEFAULT_REGISTRY.create_matcher("columnar")


def loaded(index, predicates):
    for predicate in predicates:
        index.add(predicate)
    return index


EDGES = (
    float("nan"), float("inf"), float("-inf"),
    2**52, -(2**52), True, False, 0, 0.0, 0.5,
)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_columnar_equals_scalar_equals_per_tuple(seed):
    rng = random.Random(seed)
    predicates = build_predicates(rng, rng.randint(1, 60))
    batch = [make_tuple(rng, EDGES) for _ in range(rng.randint(1, 80))]

    per_tuple_index = loaded(PredicateIndex(tree_factory="flat"), predicates)
    expected = [ident_rows([per_tuple_index.match("r", t)])[0] for t in batch]

    scalar = loaded(PredicateIndex(tree_factory="flat"), predicates)
    assert ident_rows(scalar.match_batch("r", batch)) == expected

    vectorized = loaded(columnar_index(), predicates)
    assert ident_rows(vectorized.match_batch("r", batch)) == expected
    # the logical counters are path-independent, plane or no plane
    assert (
        vectorized.stats.logical_counts() == scalar.stats.logical_counts()
    )


def test_registered_backends_agree(subtests=None):
    """Every registered matcher answers the same workload identically;
    backends that support ``freeze`` must also agree after freezing
    (the frozen flat tree is the columnar plane's substrate)."""
    rng = random.Random(99)
    predicates = build_predicates(rng, 40)
    batch = [make_tuple(rng) for _ in range(50)]
    oracle = loaded(PredicateIndex(), predicates)
    expected = [sorted(oracle.match_idents("r", t)) for t in batch]
    for name in DEFAULT_REGISTRY.matchers():
        matcher = DEFAULT_REGISTRY.create_matcher(name)
        try:
            loaded(matcher, predicates)
            assert ident_rows(matcher.match_batch("r", batch)) == expected, name
            if hasattr(matcher, "freeze"):
                matcher.freeze()
                assert (
                    ident_rows(matcher.match_batch("r", batch)) == expected
                ), f"{name} (frozen)"
        finally:
            if hasattr(matcher, "close"):
                matcher.close()


def test_out_of_domain_values_use_the_scalar_pipeline():
    """Decimals, huge ints and strings are outside the plane's float64
    domain; the whole batch must silently take the scalar path and
    still answer exactly like per-tuple matching."""
    index = loaded(
        columnar_index(),
        [
            Predicate("r", [IntervalClause("a", Interval.closed(0, 10))], ident=1),
            Predicate("r", [EqualityClause("a", 5)], ident=2),
            Predicate("r", [IntervalClause("b", Interval.at_most(2**60))], ident=3),
        ],
    )
    batch = [
        {"a": Decimal("5"), "b": 1},
        {"a": 2**60},
        {"a": "zzz", "b": "aaa"},
        {"a": 5, "b": 3},
    ]
    expected = [sorted(index.match_idents("r", t)) for t in batch]
    assert ident_rows(index.match_batch("r", batch)) == expected
    assert expected[0] == [1, 2, 3]  # Decimal('5') == 5 in the scalar trees


def test_unhashable_value_threads_through_the_shared_seam():
    """Columnar bails on the non-numeric value, the scalar batch then
    routes only the offending tuple per-tuple: the clean tuples still
    go through one batched route event."""
    index = loaded(
        columnar_index(),
        [Predicate("r", [IntervalClause("a", Interval.closed(0, 10))], ident=1)],
    )
    batch = [{"a": [1, 2]}, {"a": 5}, {"a": 99}]
    expected = [sorted(index.match_idents("r", t)) for t in batch]
    assert ident_rows(index.match_batch("r", batch)) == expected
    assert index.stats.batches_matched == 1


def test_raising_function_clause_raises_on_every_path():
    def touchy(v):
        if v == 13:
            raise ValueError("boom")
        return True

    predicates = [Predicate("r", [FunctionClause("a", touchy)], ident=1)]
    batch = [{"a": 1}, {"a": 13}]
    for index in (
        loaded(PredicateIndex(tree_factory="flat"), predicates),
        loaded(columnar_index(), predicates),
    ):
        with pytest.raises(ValueError):
            [index.match("r", t) for t in batch]
        with pytest.raises(ValueError):
            index.match_batch("r", batch)


def test_mutation_invalidates_the_plane():
    index = columnar_index()
    index.add(Predicate("r", [IntervalClause("a", Interval.closed(0, 10))], ident=1))
    batch = [{"a": 5}, {"a": 50}]
    assert ident_rows(index.match_batch("r", batch)) == [[1], []]
    index.add(Predicate("r", [IntervalClause("a", Interval.at_least(40))], ident=2))
    assert ident_rows(index.match_batch("r", batch)) == [[1], [2]]
    index.remove(1)
    assert ident_rows(index.match_batch("r", batch)) == [[], [2]]


@pytest.mark.skipif(not HAVE_NUMPY, reason="plane cache only exists with NumPy")
def test_frozen_index_builds_the_plane_once(monkeypatch):
    calls = []
    real_build = columnar_module.build_relation_plane

    def counting_build(state):
        calls.append(state)
        return real_build(state)

    monkeypatch.setattr(columnar_module, "build_relation_plane", counting_build)
    index = loaded(
        columnar_index(),
        [Predicate("r", [IntervalClause("a", Interval.closed(0, 10))], ident=1)],
    )
    index.freeze()
    batch = [{"a": 5}]
    assert ident_rows(index.match_batch("r", batch)) == [[1]]
    assert ident_rows(index.match_batch("r", batch)) == [[1]]
    assert len(calls) == 1  # version unchanged: cached plane reused


def test_without_numpy_the_strategy_still_answers(monkeypatch):
    monkeypatch.setattr(columnar_module, "HAVE_NUMPY", False)
    rng = random.Random(7)
    predicates = build_predicates(rng, 25)
    batch = [make_tuple(rng, EDGES) for _ in range(40)]
    scalar = loaded(PredicateIndex(tree_factory="flat"), predicates)
    inert = loaded(columnar_index(), predicates)
    assert ident_rows(inert.match_batch("r", batch)) == ident_rows(
        scalar.match_batch("r", batch)
    )
    assert inert.stats.logical_counts() == scalar.stats.logical_counts()


def test_concurrent_facade_with_columnar_snapshots():
    rng = random.Random(21)
    predicates = build_predicates(rng, 40)
    batch = [make_tuple(rng) for _ in range(60)]
    oracle = loaded(PredicateIndex(tree_factory="flat"), predicates)
    expected = [sorted(oracle.match_idents("r", t)) for t in batch]
    with ConcurrentPredicateIndex(tree_factory="flat", columnar=True) as index:
        for predicate in predicates:
            index.add(predicate)
        assert ident_rows(index.match_batch("r", batch)) == expected
        index.compact()  # snapshot bases are frozen -> plane built once
        assert ident_rows(index.match_batch("r", batch)) == expected


def test_columnar_capability_flags():
    info = DEFAULT_REGISTRY.describe_matcher("columnar")
    assert info["capabilities"] == {
        "requires_numpy": True,
        "vectorized_batch": True,
    }
    # other matchers advertise an empty capability dict, not an error
    assert DEFAULT_REGISTRY.describe_matcher("ibs")["capabilities"] == {}
