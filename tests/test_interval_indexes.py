"""Tests for the alternative interval indexes (ablation competitors)."""

import random

import pytest
from hypothesis import given, strategies as st

from repro import IBSTree, Interval
from repro.baselines import (
    IntervalList,
    PrioritySearchTree,
    RTree1D,
    SegmentTree,
    StaticIntervalTree,
)
from repro.errors import DuplicateIntervalError, TreeError, UnknownIntervalError
from tests.conftest import intervals, query_points


def closed_intervals(seed, n):
    rng = random.Random(seed)
    out = {}
    for k in range(n):
        a, b = rng.randint(0, 50), rng.randint(0, 50)
        lo, hi = min(a, b), max(a, b)
        r = rng.random()
        if r < 0.2:
            out[k] = Interval.point(lo)
        elif r < 0.3:
            out[k] = Interval.at_most(hi)
        elif r < 0.4:
            out[k] = Interval.at_least(lo)
        else:
            out[k] = Interval.closed(lo, hi)
    return out


def exact_intervals(seed, n):
    """Intervals with open/closed/unbounded variety."""
    rng = random.Random(seed)
    out = {}
    for k in range(n):
        a, b = rng.randint(0, 50), rng.randint(0, 50)
        lo, hi = min(a, b), max(a, b)
        r = rng.random()
        if r < 0.25:
            out[k] = Interval.point(lo)
        elif r < 0.35:
            out[k] = Interval.less_than(hi)
        elif r < 0.45:
            out[k] = Interval.greater_than(lo)
        else:
            out[k] = Interval(
                lo, hi, rng.random() < 0.5 or lo == hi, rng.random() < 0.5 or lo == hi
            )
    return out


GRID = [v / 2 for v in range(-4, 104)]


class TestIntervalList:
    def test_brute_force_equivalence(self):
        ivs = exact_intervals(1, 40)
        index = IntervalList()
        for k, iv in ivs.items():
            index.insert(iv, k)
        for x in GRID:
            assert index.stab(x) == {k for k, iv in ivs.items() if iv.contains(x)}

    def test_auto_ident_and_errors(self):
        index = IntervalList()
        ident = index.insert(Interval.point(1))
        assert ident in index.stab(1)
        with pytest.raises(DuplicateIntervalError):
            index.insert(Interval.point(2), ident)
        index.delete(ident)
        with pytest.raises(UnknownIntervalError):
            index.delete(ident)
        assert len(index) == 0


class TestSegmentTree:
    def test_exact_semantics(self):
        ivs = exact_intervals(2, 40)
        tree = SegmentTree((iv, k) for k, iv in ivs.items())
        for x in GRID:
            assert tree.stab(x) == {k for k, iv in ivs.items() if iv.contains(x)}

    def test_static_raises_on_mutation(self):
        tree = SegmentTree([(Interval.closed(1, 5), "a")])
        with pytest.raises(TreeError):
            tree.insert(Interval.closed(2, 6), "b")
        with pytest.raises(TreeError):
            tree.delete("a")

    def test_rebuild_helpers(self):
        tree = SegmentTree([(Interval.closed(1, 5), "a")])
        grown = tree.rebuilt_with(Interval.closed(4, 9), "b")
        assert grown.stab(4.5) == {"a", "b"}
        shrunk = grown.rebuilt_without("a")
        assert shrunk.stab(4.5) == {"b"}
        with pytest.raises(TreeError):
            tree.rebuilt_without("ghost")
        with pytest.raises(TreeError):
            SegmentTree([(Interval.point(1), "x"), (Interval.point(2), "x")])

    def test_empty(self):
        tree = SegmentTree()
        assert tree.stab(5) == set()
        assert len(tree) == 0

    def test_canonical_set_total(self):
        ivs = exact_intervals(3, 50)
        tree = SegmentTree((iv, k) for k, iv in ivs.items())
        assert tree.canonical_set_total >= len(ivs)

    def test_from_index(self):
        source = IBSTree()
        source.insert(Interval.closed(1, 5), "a")
        tree = SegmentTree.from_index(source.items())
        assert tree.stab(3) == {"a"}


class TestStaticIntervalTree:
    def test_exact_semantics(self):
        ivs = exact_intervals(4, 40)
        tree = StaticIntervalTree((iv, k) for k, iv in ivs.items())
        for x in GRID:
            assert tree.stab(x) == {k for k, iv in ivs.items() if iv.contains(x)}

    def test_static_raises_on_mutation(self):
        tree = StaticIntervalTree([(Interval.closed(1, 5), "a")])
        with pytest.raises(TreeError):
            tree.insert(Interval.closed(2, 6), "b")
        with pytest.raises(TreeError):
            tree.delete("a")

    def test_rebuild_helpers(self):
        tree = StaticIntervalTree([(Interval.closed(1, 5), "a")])
        grown = tree.rebuilt_with(Interval.closed(4, 9), "b")
        assert grown.stab(4.5) == {"a", "b"}
        assert grown.rebuilt_without("b").stab(7) == set()
        with pytest.raises(TreeError):
            tree.rebuilt_without("ghost")

    def test_all_unbounded(self):
        tree = StaticIntervalTree([(Interval.unbounded(), "u")])
        assert tree.stab(123) == {"u"}

    def test_open_interval_touching_center_regression(self):
        # previously an infinite recursion: (2, 4) with median endpoint 4
        tree = StaticIntervalTree([(Interval.open(2, 4), "o")])
        assert tree.stab(3) == {"o"}
        assert tree.stab(4) == set()


class TestPrioritySearchTree:
    def test_closed_semantics_equivalence(self):
        ivs = closed_intervals(5, 40)
        pst = PrioritySearchTree()
        for k, iv in ivs.items():
            pst.insert(iv, k)
        pst.validate()
        for x in GRID:
            assert pst.stab(x) == {k for k, iv in ivs.items() if iv.contains(x)}

    def test_dynamic_deletes(self):
        ivs = closed_intervals(6, 30)
        pst = PrioritySearchTree()
        for k, iv in ivs.items():
            pst.insert(iv, k)
        rng = random.Random(66)
        for k in rng.sample(list(ivs), 15):
            pst.delete(k)
            del ivs[k]
            pst.validate()
        for x in GRID:
            assert pst.stab(x) == {k for k, iv in ivs.items() if iv.contains(x)}

    def test_duplicate_lower_bounds(self):
        """The transformation the paper says PSTs need: same low, many ids."""
        pst = PrioritySearchTree()
        for k in range(10):
            pst.insert(Interval.closed(5, 10 + k), k)
        pst.validate()
        assert pst.stab(7) == set(range(10))
        pst.delete(3)
        assert pst.stab(7) == set(range(10)) - {3}

    def test_errors_and_dunder(self):
        pst = PrioritySearchTree()
        ident = pst.insert(Interval.closed(1, 2))
        assert ident in pst
        assert len(pst) == 1
        with pytest.raises(DuplicateIntervalError):
            pst.insert(Interval.closed(1, 2), ident)
        with pytest.raises(UnknownIntervalError):
            pst.delete("nope")
        pst.delete(ident)
        assert len(pst) == 0

    def test_closed_only_flag(self):
        assert not PrioritySearchTree.supports_open_bounds


class TestRTree1D:
    def test_closed_semantics_equivalence(self):
        ivs = closed_intervals(7, 40)
        rt = RTree1D()
        for k, iv in ivs.items():
            rt.insert(iv, k)
        for x in GRID:
            assert rt.stab(x) == {k for k, iv in ivs.items() if iv.contains(x)}

    def test_candidates_may_overapproximate(self):
        rt = RTree1D()
        rt.insert(Interval.closed_open(1, 5), "half")
        # the raw R-tree treats the bound as closed...
        assert "half" in rt.stab_candidates(5)
        # ...but the exact stab filters it
        assert rt.stab(5) == set()

    def test_unbounded_clamped(self):
        rt = RTree1D(domain_low=-1000, domain_high=1000)
        rt.insert(Interval.at_least(5), "high")
        assert rt.stab(999) == {"high"}
        assert rt.stab(4) == set()

    def test_delete_and_errors(self):
        rt = RTree1D()
        rt.insert(Interval.closed(1, 5), "a")
        with pytest.raises(DuplicateIntervalError):
            rt.insert(Interval.closed(2, 6), "a")
        rt.delete("a")
        with pytest.raises(UnknownIntervalError):
            rt.delete("a")
        assert len(rt) == 0


class TestCrossStructureAgreement:
    """All structures agree with the IBS-tree on closed workloads."""

    @given(data=st.data())
    def test_agreement(self, data):
        ivs = data.draw(
            st.lists(intervals(allow_open=False), min_size=1, max_size=20)
        )
        items = list(enumerate(ivs))
        ibs = IBSTree()
        pst = PrioritySearchTree()
        rt = RTree1D()
        for k, iv in items:
            ibs.insert(iv, k)
            pst.insert(iv, k)
            rt.insert(iv, k)
        seg = SegmentTree((iv, k) for k, iv in items)
        itree = StaticIntervalTree((iv, k) for k, iv in items)
        xs = data.draw(st.lists(query_points, min_size=1, max_size=8))
        for x in xs:
            answer = ibs.stab(x)
            assert pst.stab(x) == answer
            assert rt.stab(x) == answer
            assert seg.stab(x) == answer
            assert itree.stab(x) == answer
