"""Tests for the k-dimensional R-tree."""

import random

import pytest

from repro.baselines import Rect, RTree
from repro.errors import DuplicateIntervalError, TreeError, UnknownIntervalError


class TestRect:
    def test_construction_and_validation(self):
        rect = Rect([(0, 10), (5, 5)])
        assert rect.dims == 2
        with pytest.raises(TreeError):
            Rect([(10, 0)])

    def test_point(self):
        rect = Rect.point([3, 4])
        assert rect.contains_point([3, 4])
        assert not rect.contains_point([3, 5])

    def test_contains_point_closed(self):
        rect = Rect([(0, 10)])
        assert rect.contains_point([0])
        assert rect.contains_point([10])
        assert not rect.contains_point([10.01])

    def test_intersects(self):
        a = Rect([(0, 10), (0, 10)])
        b = Rect([(10, 20), (5, 15)])
        c = Rect([(11, 20), (0, 10)])
        assert a.intersects(b)  # touching counts
        assert not a.intersects(c)

    def test_union_area_margin(self):
        a = Rect([(0, 2), (0, 2)])
        b = Rect([(4, 6), (0, 2)])
        merged = a.union(b)
        assert merged.bounds == ((0, 6), (0, 2))
        assert a.area() == 4
        assert merged.margin() == 8
        assert a.enlargement(b) == merged.area() - a.area()

    def test_degenerate_enlargement_uses_margin(self):
        a = Rect.point([0])
        b = Rect.point([5])
        assert a.enlargement(b) > 0

    def test_value_semantics(self):
        assert Rect([(0, 1)]) == Rect([(0, 1)])
        assert hash(Rect([(0, 1)])) == hash(Rect([(0, 1)]))
        assert Rect([(0, 1)]) != Rect([(0, 2)])


class TestRTree:
    def test_construction_validation(self):
        with pytest.raises(TreeError):
            RTree(dims=0)
        with pytest.raises(TreeError):
            RTree(dims=1, max_entries=2)

    def test_insert_dims_checked(self):
        tree = RTree(dims=2)
        with pytest.raises(TreeError):
            tree.insert(Rect([(0, 1)]), "a")
        tree.insert(Rect([(0, 1), (0, 1)]), "a")
        with pytest.raises(TreeError):
            tree.search_point([0.5])

    def test_duplicate_and_unknown(self):
        tree = RTree(dims=1)
        tree.insert(Rect([(0, 1)]), "a")
        with pytest.raises(DuplicateIntervalError):
            tree.insert(Rect([(2, 3)]), "a")
        with pytest.raises(UnknownIntervalError):
            tree.delete("b")

    def test_split_and_search(self):
        tree = RTree(dims=1, max_entries=4)
        for k in range(50):
            tree.insert(Rect([(k, k + 2)]), k)
        assert tree.height() > 1
        assert tree.search_point([10.5]) == {9, 10}  # wait: [9,11] and [10,12]

    def test_search_rect_window(self):
        tree = RTree(dims=2, max_entries=4)
        for k in range(20):
            tree.insert(Rect([(k, k + 1), (0, 1)]), k)
        window = Rect([(5, 8), (0, 1)])
        assert tree.search_rect(window) == {4, 5, 6, 7, 8}

    def test_random_crud_equivalence(self):
        rng = random.Random(17)
        tree = RTree(dims=2, max_entries=5)
        rects = {}
        for step in range(500):
            action = rng.random()
            if action < 0.6 or not rects:
                ident = step
                x, y = rng.uniform(0, 100), rng.uniform(0, 100)
                rect = Rect(
                    [(x, x + rng.uniform(0, 15)), (y, y + rng.uniform(0, 15))]
                )
                tree.insert(rect, ident)
                rects[ident] = rect
            else:
                victim = rng.choice(list(rects))
                tree.delete(victim)
                del rects[victim]
        assert len(tree) == len(rects)
        for _ in range(200):
            point = [rng.uniform(-5, 110), rng.uniform(-5, 110)]
            expected = {i for i, r in rects.items() if r.contains_point(point)}
            assert tree.search_point(point) == expected

    def test_delete_to_empty(self):
        tree = RTree(dims=1, max_entries=4)
        for k in range(30):
            tree.insert(Rect([(k, k + 1)]), k)
        for k in range(30):
            tree.delete(k)
        assert len(tree) == 0
        assert tree.search_point([5]) == set()
        tree.insert(Rect([(1, 2)]), "fresh")
        assert tree.search_point([1.5]) == {"fresh"}

    def test_contains(self):
        tree = RTree(dims=1)
        tree.insert(Rect([(0, 1)]), "a")
        assert "a" in tree
        assert "b" not in tree
