"""Differential fuzzing: every matcher strategy against brute force.

Random schemas, random conditions (using every clause shape the
language supports), and random mutation scripts, replayed against the
full rule engine under each matcher strategy.  The brute-force oracle
recomputes matches per event by direct evaluation.  Any divergence —
between strategies, or from the oracle — fails.
"""

import random
from typing import Dict, List, Tuple

import pytest

from repro import CollectAction, Database, RuleEngine
from repro.lang import compile_condition

STRATEGIES = ["ibs", "ibs-avl", "ibs-rb", "sequential", "hash", "locking", "rtree"]
FNS = {"isodd": lambda x: x % 2 == 1}
DEPTS = ["Shoe", "Toy", "Food", "Garden"]


def random_condition(rng: random.Random) -> str:
    """One random condition using the full clause vocabulary."""
    def atom() -> str:
        kind = rng.random()
        if kind < 0.2:
            return f"a {rng.choice(['<', '<=', '>', '>='])} {rng.randint(0, 30)}"
        if kind < 0.4:
            lo = rng.randint(0, 20)
            return f"{lo} <= b <= {lo + rng.randint(0, 10)}"
        if kind < 0.55:
            return f'dept = "{rng.choice(DEPTS)}"'
        if kind < 0.65:
            return f"a <> {rng.randint(0, 30)}"
        if kind < 0.75:
            return "isodd(b)"
        if kind < 0.85:
            prefix = rng.choice(["S", "T", "F", "G"])
            return f'dept like "{prefix}%"'
        return f'dept in ("{rng.choice(DEPTS)}", "{rng.choice(DEPTS)}")'

    parts = [atom() for _ in range(rng.randint(1, 3))]
    joiner = " and " if rng.random() < 0.7 else " or "
    body = joiner.join(parts)
    if rng.random() < 0.2:
        body = f"not ({body})"
    return body


def random_script(rng: random.Random, length: int) -> List[Tuple]:
    ops = []
    for _ in range(length):
        roll = rng.random()
        tup = {
            "a": rng.randint(0, 30),
            "b": rng.randint(0, 30),
            "dept": rng.choice(DEPTS),
        }
        if roll < 0.6:
            ops.append(("insert", tup))
        elif roll < 0.85:
            ops.append(("update", tup))
        else:
            ops.append(("delete", None))
    return ops


@pytest.mark.parametrize("seed", range(6))
def test_differential_matchers(seed):
    rng = random.Random(seed)
    conditions = []
    while len(conditions) < 8:
        text = random_condition(rng)
        # skip conditions that can never match (engine rejects them)
        compiled = compile_condition("r", text, FNS)
        if not compiled.group.is_empty:
            conditions.append(text)
    script = random_script(rng, 60)

    transcripts: Dict[str, List] = {}
    for strategy in STRATEGIES:
        db = Database()
        db.create_relation("r", ["a", "b", "dept"])
        collect = CollectAction()
        engine = RuleEngine(db, matcher=strategy, functions=FNS)
        for index, text in enumerate(conditions):
            engine.create_rule(
                f"rule{index}", on="r", condition=text, action=collect,
                on_events=("insert", "update"),
            )
        live: List[int] = []
        step_rng = random.Random(seed + 999)
        for op, tup in script:
            if op == "insert":
                live.append(db.insert("r", dict(tup)))
            elif op == "update" and live:
                db.update("r", step_rng.choice(live), dict(tup))
            elif op == "delete" and live:
                tid = live.pop(step_rng.randrange(len(live)))
                db.delete("r", tid)
        transcripts[strategy] = [
            (name, tuple(sorted(tup.items()))) for name, tup in collect.records
        ]

    # oracle: replay with direct evaluation
    compiled = [
        (f"rule{index}", compile_condition("r", text, FNS))
        for index, text in enumerate(conditions)
    ]
    oracle: List = []
    store: Dict[int, Dict] = {}
    live = []
    next_tid = 1
    step_rng = random.Random(seed + 999)
    for op, tup in script:
        if op == "insert":
            tid = next_tid
            next_tid += 1
            image = {"a": tup["a"], "b": tup["b"], "dept": tup["dept"]}
            store[tid] = image
            live.append(tid)
        elif op == "update" and live:
            tid = step_rng.choice(live)
            image = dict(tup)
            store[tid] = image
        elif op == "delete" and live:
            tid = live.pop(step_rng.randrange(len(live)))
            del store[tid]
            continue
        else:
            continue
        for name, condition in compiled:
            if condition.matches(image):
                oracle.append((name, tuple(sorted(image.items()))))

    expected = sorted(oracle)
    for strategy, transcript in transcripts.items():
        assert sorted(transcript) == expected, (
            f"strategy {strategy!r} diverged on seed {seed}"
        )
