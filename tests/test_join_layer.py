"""Tests for the two-layer (selection + join) discrimination network."""

import pytest

from repro import CollectAction, Database, RuleEngine
from repro.errors import DuplicateRuleError, ParseError, RuleError, UnknownRuleError


@pytest.fixture
def db():
    database = Database()
    database.create_relation("emp", ["name", "salary", "dept"])
    database.create_relation("dept", ["dname", "budget", "floor"])
    return database


@pytest.fixture
def engine(db):
    return RuleEngine(db)


class JoinCollect:
    """Records (emp_name, dept_name) pairs from join firings."""

    def __init__(self):
        self.pairs = []

    def __call__(self, ctx):
        emp = ctx.bindings["emp"]
        dept = ctx.bindings["dept"]
        self.pairs.append((emp["name"], dept["dname"]))


class TestEquiJoin:
    CONDITION = "emp.dept = dept.dname and emp.salary > 1000 and dept.budget >= 100"

    def test_pairs_fire_from_either_side(self, db, engine):
        collect = JoinCollect()
        engine.create_join_rule("jr", "emp", "dept", self.CONDITION, collect)
        db.insert("emp", {"name": "A", "salary": 5000, "dept": "Shoe"})
        assert collect.pairs == []  # no dept yet
        db.insert("dept", {"dname": "Shoe", "budget": 500})
        assert collect.pairs == [("A", "Shoe")]
        db.insert("emp", {"name": "B", "salary": 9000, "dept": "Shoe"})
        assert ("B", "Shoe") in collect.pairs

    def test_selection_filters_apply(self, db, engine):
        collect = JoinCollect()
        engine.create_join_rule("jr", "emp", "dept", self.CONDITION, collect)
        db.insert("dept", {"dname": "Shoe", "budget": 500})
        db.insert("emp", {"name": "Poor", "salary": 10, "dept": "Shoe"})
        db.insert("emp", {"name": "Rich", "salary": 9999, "dept": "Toy"})
        assert collect.pairs == []
        db.insert("dept", {"dname": "Toy", "budget": 1})  # fails budget filter
        assert collect.pairs == []

    def test_update_moves_membership(self, db, engine):
        collect = JoinCollect()
        engine.create_join_rule("jr", "emp", "dept", self.CONDITION, collect)
        db.insert("dept", {"dname": "Shoe", "budget": 500})
        tid = db.insert("emp", {"name": "A", "salary": 10, "dept": "Shoe"})
        assert collect.pairs == []
        db.update("emp", tid, {"salary": 2000})
        assert collect.pairs == [("A", "Shoe")]
        # moving out of the selection forgets the tuple
        db.update("emp", tid, {"salary": 5})
        db.insert("dept", {"dname": "Shoe2", "budget": 500})
        assert len(collect.pairs) == 1

    def test_delete_forgets(self, db, engine):
        collect = JoinCollect()
        engine.create_join_rule("jr", "emp", "dept", self.CONDITION, collect)
        tid = db.insert("emp", {"name": "A", "salary": 5000, "dept": "Shoe"})
        db.delete("emp", tid)
        db.insert("dept", {"dname": "Shoe", "budget": 500})
        assert collect.pairs == []

    def test_seeding_from_existing_data(self, db, engine):
        db.insert("emp", {"name": "Old", "salary": 5000, "dept": "Shoe"})
        collect = JoinCollect()
        engine.create_join_rule("jr", "emp", "dept", self.CONDITION, collect)
        # pre-existing tuple joins with a future partner
        db.insert("dept", {"dname": "Shoe", "budget": 500})
        assert collect.pairs == [("Old", "Shoe")]

    def test_join_key_null_never_joins(self, db, engine):
        collect = JoinCollect()
        engine.create_join_rule("jr", "emp", "dept", self.CONDITION, collect)
        db.insert("emp", {"name": "A", "salary": 5000, "dept": None})
        db.insert("dept", {"dname": None, "budget": 500})
        assert collect.pairs == []


class TestThetaJoin:
    def test_inequality_join(self, db, engine):
        collect = JoinCollect()
        engine.create_join_rule(
            "cheaper", "emp", "dept",
            "emp.salary <= dept.budget",
            collect,
        )
        db.insert("dept", {"dname": "D1", "budget": 100})
        db.insert("emp", {"name": "A", "salary": 50, "dept": "x"})
        db.insert("emp", {"name": "B", "salary": 500, "dept": "x"})
        assert collect.pairs == [("A", "D1")]

    def test_mixed_equi_and_theta(self, db, engine):
        collect = JoinCollect()
        engine.create_join_rule(
            "jr", "emp", "dept",
            "emp.dept = dept.dname and emp.salary > dept.budget",
            collect,
        )
        db.insert("dept", {"dname": "Shoe", "budget": 100})
        db.insert("emp", {"name": "A", "salary": 500, "dept": "Shoe"})
        db.insert("emp", {"name": "B", "salary": 5, "dept": "Shoe"})
        assert collect.pairs == [("A", "Shoe")]

    def test_reversed_qualifier_order(self, db, engine):
        collect = JoinCollect()
        engine.create_join_rule(
            "jr", "emp", "dept", "dept.budget >= emp.salary", collect
        )
        db.insert("dept", {"dname": "D", "budget": 100})
        db.insert("emp", {"name": "A", "salary": 50, "dept": "x"})
        assert collect.pairs == [("A", "D")]


class TestValidation:
    def test_requires_join_clause(self, db, engine):
        with pytest.raises(RuleError):
            engine.create_join_rule(
                "jr", "emp", "dept", "emp.salary > 100 and dept.budget > 5",
                lambda ctx: None,
            )

    def test_rejects_self_join(self, db, engine):
        with pytest.raises(RuleError):
            engine.create_join_rule(
                "jr", "emp", "emp", "emp.salary = emp.salary", lambda ctx: None
            )

    def test_rejects_unqualified_attrs(self, db, engine):
        with pytest.raises(ParseError):
            engine.create_join_rule(
                "jr", "emp", "dept", "salary > dept.budget", lambda ctx: None
            )

    def test_rejects_unknown_qualifier(self, db, engine):
        with pytest.raises(ParseError):
            engine.create_join_rule(
                "jr", "emp", "dept", "ghost.x = dept.budget", lambda ctx: None
            )

    def test_rejects_duplicate_name(self, db, engine):
        engine.create_rule("taken", on="emp", condition="true", action=lambda ctx: None)
        with pytest.raises(DuplicateRuleError):
            engine.create_join_rule(
                "taken", "emp", "dept", "emp.dept = dept.dname", lambda ctx: None
            )

    def test_rejects_complex_join_conjunct(self, db, engine):
        with pytest.raises(ParseError):
            engine.create_join_rule(
                "jr", "emp", "dept",
                "(emp.dept = dept.dname or emp.salary > dept.budget)",
                lambda ctx: None,
            )

    def test_rejects_impossible_selection(self, db, engine):
        with pytest.raises(RuleError):
            engine.create_join_rule(
                "jr", "emp", "dept",
                "emp.dept = dept.dname and emp.salary > 5 and emp.salary < 1",
                lambda ctx: None,
            )


class TestManagement:
    def test_drop_join_rule(self, db, engine):
        collect = JoinCollect()
        engine.create_join_rule(
            "jr", "emp", "dept", "emp.dept = dept.dname", collect
        )
        engine.drop_join_rule("jr")
        db.insert("emp", {"name": "A", "salary": 1, "dept": "Shoe"})
        db.insert("dept", {"dname": "Shoe", "budget": 5})
        assert collect.pairs == []
        with pytest.raises(UnknownRuleError):
            engine.drop_join_rule("jr")

    def test_join_rules_listed(self, db, engine):
        engine.create_join_rule(
            "jr", "emp", "dept", "emp.dept = dept.dname", lambda ctx: None
        )
        assert [r.name for r in engine.joins.rules()] == ["jr"]
        assert len(engine.joins) == 1
        assert engine.joins.rule("jr").fire_count == 0

    def test_fire_count_and_priority(self, db, engine):
        order = []
        engine.create_join_rule(
            "jr", "emp", "dept", "emp.dept = dept.dname",
            lambda ctx: order.append("join"), priority=10,
        )
        engine.create_rule(
            "sel", on="dept", condition="true",
            action=lambda ctx: order.append("sel"), priority=0,
        )
        db.insert("emp", {"name": "A", "salary": 1, "dept": "Shoe"})
        db.insert("dept", {"dname": "Shoe", "budget": 5})
        assert order == ["join", "sel"]
        assert engine.joins.rule("jr").fire_count == 1
