"""Selectivity-feedback entry-clause migration.

The paper fixes each predicate's entry clause at registration time: the
estimated most selective indexable clause goes into the IBS-tree.  The
adaptive layer revisits that choice with observed evidence — the
fraction of matched tuples the entry clause actually admitted — and
migrates the entry clause to a different attribute tree when the
estimates say it would admit decisively fewer candidates.  Matching
semantics must be bit-for-bit unchanged by any migration; only the
candidate counts move.
"""

import pytest

from repro import PredicateIndex
from repro.db.statistics import EntryClauseFeedback
from repro.errors import InjectedFault
from repro.predicates import PredicateBuilder
from repro.testing import FaultInjector, injected


def two_clause_pred():
    # equality on "a" (estimate 0.10, chosen at registration) plus a
    # bounded range on "b" (estimate 0.25, the migration target when
    # the "a" clause observably admits everything)
    return PredicateBuilder("r").eq("a", 5).between("b", 0, 100).build()


def adverse_tuples(n):
    # every tuple satisfies a == 5 (entry clause admits it) but fails
    # the "b" range: observed selectivity of the entry clause -> 1.0
    return [{"a": 5, "b": 500 + i} for i in range(n)]


class TestFeedback:
    def test_observed_selectivity_needs_min_samples(self):
        fb = EntryClauseFeedback(min_samples=4)
        fb.observe_tuples("r", 3)
        fb.observe_candidates(["p"], 3)
        assert fb.observed_selectivity("r", "p") is None
        fb.observe_tuples("r", 1)
        assert fb.observed_selectivity("r", "p") == pytest.approx(0.75)

    def test_reset_is_windowed_per_relation(self):
        fb = EntryClauseFeedback(min_samples=1)
        fb.observe_tuples("r", 10)
        fb.observe_tuples("s", 7)
        fb.observe_candidates(["p"], 5)
        fb.observe_candidates(["q"], 2)
        fb.reset("r", ["p"])
        assert fb.tuples_seen("r") == 0
        assert fb.candidate_hits("p") == 0
        assert fb.tuples_seen("s") == 7
        assert fb.candidate_hits("q") == 2
        fb.reset()
        assert fb.as_dict() == {"tuples_seen": {}, "candidate_hits": {}}

    def test_selectivity_is_clamped(self):
        fb = EntryClauseFeedback(min_samples=1)
        fb.observe_tuples("r", 2)
        fb.observe_candidates(["p"], 5)  # batch counting can overshoot
        assert fb.observed_selectivity("r", "p") == 1.0


class TestMigration:
    def test_explicit_retune_migrates(self):
        idx = PredicateIndex(adaptive=True, min_feedback_tuples=8)
        ident = idx.add(two_clause_pred())
        assert idx._relations["r"].indexed_under[ident] == ("a",)
        for tup in adverse_tuples(10):
            idx.match("r", tup)
        assert idx.retune("r") == [ident]
        assert idx._relations["r"].indexed_under[ident] == ("b",)
        assert idx.stats.clause_migrations == 1
        assert idx.check_invariants() is True

    def test_matching_semantics_unchanged_after_migration(self):
        idx = PredicateIndex(adaptive=True, min_feedback_tuples=8)
        ident = idx.add(two_clause_pred())
        oracle = PredicateIndex()
        oracle.add(two_clause_pred())
        for tup in adverse_tuples(10):
            idx.match("r", tup)
        idx.retune("r")
        for tup in (
            {"a": 5, "b": 50},
            {"a": 5, "b": 500},
            {"a": 4, "b": 50},
            {"a": 4, "b": 500},
            {"a": 5},
            {"b": 50},
        ):
            got = [p.ident for p in idx.match("r", tup)]
            expected = len(oracle.match("r", tup))
            assert got == ([ident] if expected else []), tup

    def test_auto_retune_on_match_path(self):
        idx = PredicateIndex(
            adaptive=True, min_feedback_tuples=8, auto_retune_interval=20
        )
        ident = idx.add(two_clause_pred())
        for tup in adverse_tuples(25):
            idx.match("r", tup)
        assert idx._relations["r"].indexed_under[ident] == ("b",)

    def test_auto_retune_on_batch_path(self):
        idx = PredicateIndex(
            adaptive=True, min_feedback_tuples=8, auto_retune_interval=20
        )
        ident = idx.add(two_clause_pred())
        idx.match_batch("r", adverse_tuples(25))
        assert idx._relations["r"].indexed_under[ident] == ("b",)
        # batch matching still correct afterwards
        results = idx.match_batch("r", [{"a": 5, "b": 50}, {"a": 5, "b": 500}])
        assert [p.ident for p in results[0]] == [ident]
        assert results[1] == []

    def test_no_migration_when_entry_clause_performs(self):
        idx = PredicateIndex(adaptive=True, min_feedback_tuples=8)
        ident = idx.add(two_clause_pred())
        # entry clause rejects every tuple: observed selectivity 0.0
        for i in range(10):
            idx.match("r", {"a": 99, "b": 50})
        assert idx.retune("r") == []
        assert idx._relations["r"].indexed_under[ident] == ("a",)
        assert idx.stats.clause_migrations == 0

    def test_no_migration_without_enough_samples(self):
        idx = PredicateIndex(adaptive=True, min_feedback_tuples=256)
        idx.add(two_clause_pred())
        for tup in adverse_tuples(10):
            idx.match("r", tup)
        assert idx.retune("r") == []

    def test_no_migration_for_single_clause_predicates(self):
        idx = PredicateIndex(adaptive=True, min_feedback_tuples=4)
        ident = idx.add(PredicateBuilder("r").between("x", 0, 10).build())
        for i in range(8):
            idx.match("r", {"x": 5})
        assert idx.retune("r") == []
        assert idx._relations["r"].indexed_under[ident] == ("x",)

    def test_multi_clause_indexing_never_migrates(self):
        idx = PredicateIndex(
            multi_clause=True, adaptive=True, min_feedback_tuples=4
        )
        idx.add(two_clause_pred())
        for tup in adverse_tuples(8):
            idx.match("r", tup)
        assert idx.retune("r") == []
        assert idx.stats.clause_migrations == 0

    def test_retune_without_adaptive_observation_is_noop(self):
        idx = PredicateIndex()  # adaptive off: no feedback accumulates
        idx.add(two_clause_pred())
        for tup in adverse_tuples(10):
            idx.match("r", tup)
        assert idx.retune() == []

    def test_feedback_window_resets_after_retune(self):
        idx = PredicateIndex(adaptive=True, min_feedback_tuples=8)
        idx.add(two_clause_pred())
        for tup in adverse_tuples(10):
            idx.match("r", tup)
        idx.retune("r")
        assert idx.feedback.tuples_seen("r") == 0
        # immediately retuning again has no evidence to act on
        assert idx.retune("r") == []


class TestMigrationFaults:
    def test_insert_fault_during_migration_restores_old_entry(self):
        idx = PredicateIndex(adaptive=True, min_feedback_tuples=8)
        ident = idx.add(two_clause_pred())
        for tup in adverse_tuples(10):
            idx.match("r", tup)
        inj = FaultInjector()
        inj.arm("tree.insert", at_hit=1)
        with injected(inj):
            with pytest.raises(InjectedFault):
                idx.retune("r")
        # the old entry clause is back in place and matching still works
        assert idx._relations["r"].indexed_under[ident] == ("a",)
        assert idx.check_invariants() is True
        assert [p.ident for p in idx.match("r", {"a": 5, "b": 50})] == [ident]
        assert idx.match("r", {"a": 5, "b": 500}) == []

    def test_double_fault_parks_predicate_on_brute_force(self):
        idx = PredicateIndex(adaptive=True, min_feedback_tuples=8)
        ident = idx.add(two_clause_pred())
        for tup in adverse_tuples(10):
            idx.match("r", tup)
        inj = FaultInjector(max_faults=2)
        inj.arm("tree.insert", at_hit=1, count=2)  # new-tree insert AND restore
        with injected(inj):
            with pytest.raises(InjectedFault):
                idx.retune("r")
        rel = idx._relations["r"]
        assert ident in rel.non_indexable
        assert ident not in rel.indexed_under
        # brute force is sound: answers are still exact
        assert [p.ident for p in idx.match("r", {"a": 5, "b": 50})] == [ident]
        assert idx.match("r", {"a": 5, "b": 500}) == []
        assert idx.check_invariants() is True
