"""Tests for the production system: matching, firing, negation, verbs."""

import pytest

from repro.errors import RuleCycleError, RuleError, UnknownRuleError
from repro.production import (
    Halt,
    Pattern,
    ProductionSystem,
    Test,
    Var,
)


@pytest.fixture
def ps():
    return ProductionSystem()


class TestBasicMatching:
    def test_single_pattern_fires(self, ps):
        seen = []
        ps.add_rule("r", "(person ^name ?n)", lambda ctx: seen.append(ctx["n"]))
        ps.assert_fact("person", name="Ada")
        assert ps.run() == 1
        assert seen == ["Ada"]

    def test_constant_filter(self, ps):
        seen = []
        ps.add_rule(
            "adults", "(person ^age >= 18 ^name ?n)", lambda ctx: seen.append(ctx["n"])
        )
        ps.assert_fact("person", name="kid", age=10)
        ps.assert_fact("person", name="grown", age=30)
        ps.run()
        assert seen == ["grown"]

    def test_rule_added_after_facts(self, ps):
        """Declarative: rule/fact order must not matter."""
        ps.assert_fact("person", name="Ada", age=30)
        seen = []
        ps.add_rule("r", "(person ^name ?n)", lambda ctx: seen.append(ctx["n"]))
        ps.run()
        assert seen == ["Ada"]

    def test_join_two_elements(self, ps):
        pairs = []
        ps.add_rule(
            "same-dept",
            "(emp ^name ?a ^dept ?d) (dept ^name ?d ^floor ?f)",
            lambda ctx: pairs.append((ctx["a"], ctx["f"])),
        )
        ps.assert_fact("emp", name="X", dept="Shoe")
        ps.assert_fact("dept", name="Shoe", floor=3)
        ps.assert_fact("dept", name="Toy", floor=4)
        ps.run()
        assert pairs == [("X", 3)]

    def test_same_type_two_elements(self, ps):
        pairs = []
        ps.add_rule(
            "ordered-pairs",
            "(number ^value ?x) (number ^value ?y ^value > ?x)",
            lambda ctx: pairs.append((ctx["x"], ctx["y"])),
        )
        for v in (1, 2, 3):
            ps.assert_fact("number", value=v)
        ps.run()
        assert sorted(pairs) == [(1, 2), (1, 3), (2, 3)]

    def test_same_wme_can_fill_two_elements(self, ps):
        hits = []
        ps.add_rule(
            "reflexive",
            "(node ^id ?a) (node ^id ?b)",
            lambda ctx: hits.append((ctx["a"], ctx["b"])),
        )
        ps.assert_fact("node", id=1)
        ps.run()
        assert hits == [(1, 1)]

    def test_variable_binding_unused_returns_default(self, ps):
        ps.add_rule("r", "(t ^a 1)", lambda ctx: None)
        ps.assert_fact("t", a=1)
        inst = ps.conflict_set()[0]
        from repro.production import ProductionContext

        ctx = ProductionContext(ps, inst.rule, inst.wmes, inst.bindings)
        assert ctx.get("missing") is None
        with pytest.raises(RuleError):
            ctx["missing"]


class TestNegation:
    def test_absence_required(self, ps):
        fired = []
        ps.add_rule(
            "no-alarm",
            '(check ^id ?c) -(alarm)',
            lambda ctx: fired.append(ctx["c"]),
        )
        ps.assert_fact("alarm", severity="high")
        ps.assert_fact("check", id=1)
        assert ps.run() == 0
        assert fired == []

    def test_blocked_then_enabled_by_retraction(self, ps):
        fired = []
        alarm = ps.assert_fact("alarm", severity="high")
        ps.add_rule(
            "no-alarm", "(check ^id ?c) -(alarm)", lambda ctx: fired.append(ctx["c"])
        )
        ps.assert_fact("check", id=1)
        assert ps.run() == 0
        ps.retract(alarm)
        assert ps.run() == 1
        assert fired == [1]

    def test_new_blocker_invalidates_pending(self, ps):
        fired = []
        ps.add_rule(
            "no-alarm", "(check ^id ?c) -(alarm)", lambda ctx: fired.append(ctx["c"])
        )
        ps.assert_fact("check", id=1)
        assert len(ps.conflict_set()) == 1
        ps.assert_fact("alarm", severity="low")  # blocks before firing
        assert ps.run() == 0

    def test_negation_with_bound_variable(self, ps):
        maxima = []
        ps.add_rule(
            "find-max",
            "(number ^value ?x) -(number ^value > ?x)",
            lambda ctx: maxima.append(ctx["x"]),
        )
        for v in (3, 17, 9):
            ps.assert_fact("number", value=v)
        ps.run()
        assert maxima == [17]

    def test_unbound_negated_variable_rejected(self, ps):
        with pytest.raises(RuleError):
            ps.add_rule(
                "bad", "(a ^x 1) -(b ^y ?unbound ^y > 5)", lambda ctx: None
            )

    def test_all_negative_rejected(self, ps):
        with pytest.raises(RuleError):
            ps.add_rule("bad", "-(a)", lambda ctx: None)


class TestConflictResolution:
    def test_priority_first(self, ps):
        order = []
        ps.add_rule("low", "(t)", lambda ctx: order.append("low"), priority=0)
        ps.add_rule("high", "(t)", lambda ctx: order.append("high"), priority=5)
        ps.assert_fact("t")
        ps.run()
        assert order == ["high", "low"]

    def test_recency_lex(self, ps):
        order = []
        ps.add_rule("r", "(t ^id ?i)", lambda ctx: order.append(ctx["i"]))
        ps.assert_fact("t", id="old")
        ps.assert_fact("t", id="new")
        ps.run()
        assert order == ["new", "old"]

    def test_refraction(self, ps):
        count = []
        ps.add_rule("once", "(t ^id 1)", lambda ctx: count.append(1))
        ps.assert_fact("t", id=1)
        assert ps.run() == 1
        assert ps.run() == 0  # no refire without a WM change
        ps.assert_fact("t", id=1)  # a NEW wme: fresh instantiation
        assert ps.run() == 1

    def test_modify_refires(self, ps):
        seen = []
        ps.add_rule("watch", "(t ^state ?s)", lambda ctx: seen.append(ctx["s"]))
        wme = ps.assert_fact("t", state="a")
        ps.run()
        ps.modify(wme, state="b")
        ps.run()
        assert seen == ["a", "b"]


class TestActionsAndVerbs:
    def test_make_cascades(self, ps):
        ps.add_rule(
            "derive",
            "(raw ^v ?v)",
            lambda ctx: ctx.make("cooked", v=ctx["v"] * 2),
        )
        done = []
        ps.add_rule("eat", "(cooked ^v ?v)", lambda ctx: done.append(ctx["v"]))
        ps.assert_fact("raw", v=21)
        assert ps.run() == 2
        assert done == [42]

    def test_remove_by_position(self, ps):
        ps.add_rule(
            "consume", "(token ^id ?i)", lambda ctx: ctx.remove(1)
        )
        ps.assert_fact("token", id=1)
        ps.assert_fact("token", id=2)
        assert ps.run() == 2
        assert ps.facts("token") == []

    def test_modify_by_position_counts_down(self, ps):
        def decrement(ctx):
            if ctx["n"] > 0:
                ctx.modify(1, n=ctx["n"] - 1)

        ps.add_rule("count", "(counter ^n ?n ^n > 0)", decrement)
        ps.assert_fact("counter", n=5)
        assert ps.run() == 5
        assert ps.facts("counter")[0]["n"] == 0

    def test_halt(self, ps):
        order = []

        def first(ctx):
            order.append("first")
            ctx.halt()

        ps.add_rule("first", "(t)", first, priority=5)
        ps.add_rule("second", "(t)", lambda ctx: order.append("second"))
        ps.assert_fact("t")
        assert ps.run() == 1  # halted after the first firing
        assert order == ["first"]
        assert ps.run() == 1  # resumes on the next run call
        assert order == ["first", "second"]

    def test_halt_exception(self, ps):
        def boom(ctx):
            raise Halt()

        ps.add_rule("h", "(t)", boom, priority=5)
        ps.add_rule("later", "(t)", lambda ctx: None)
        ps.assert_fact("t")
        assert ps.run() == 1

    def test_remove_bad_reference(self, ps):
        def bad(ctx):
            ctx.remove(999)

        ps.add_rule("bad", "(t)", bad)
        ps.assert_fact("t")
        with pytest.raises(RuleError):
            ps.run()

    def test_runaway_guard(self, ps):
        ps.add_rule("spin", "(t ^n ?n)", lambda ctx: ctx.make("t", n=ctx["n"] + 1))
        ps.assert_fact("t", n=0)
        with pytest.raises(RuleCycleError):
            ps.run(limit=30)


class TestRuleManagement:
    def test_duplicate_rejected(self, ps):
        ps.add_rule("r", "(t)", lambda ctx: None)
        with pytest.raises(RuleError):
            ps.add_rule("r", "(t)", lambda ctx: None)

    def test_remove_rule_clears_pending(self, ps):
        ps.add_rule("r", "(t)", lambda ctx: None)
        ps.assert_fact("t")
        assert len(ps.conflict_set()) == 1
        ps.remove_rule("r")
        assert ps.conflict_set() == []
        assert ps.run() == 0
        with pytest.raises(UnknownRuleError):
            ps.remove_rule("r")

    def test_rule_lookup_and_fire_count(self, ps):
        ps.add_rule("r", "(t)", lambda ctx: None)
        ps.assert_fact("t")
        ps.run()
        assert ps.rule("r").fire_count == 1
        with pytest.raises(UnknownRuleError):
            ps.rule("ghost")

    def test_repr(self, ps):
        ps.add_rule("r", "(t)", lambda ctx: None)
        ps.assert_fact("t")
        text = repr(ps)
        assert "1 rules" in text and "1 facts" in text and "1 pending" in text


class TestWorkingMemorySurface:
    def test_facts_listing(self, ps):
        ps.assert_fact("a", x=1)
        ps.assert_fact("b", x=2)
        assert len(ps.facts()) == 2
        assert len(ps.facts("a")) == 1

    def test_wme_mapping_access(self, ps):
        wme = ps.assert_fact("a", x=1)
        assert wme["x"] == 1
        assert wme.get("missing") is None
        assert "x" in wme
        assert "a" in repr(wme)

    def test_retract_by_id(self, ps):
        wme = ps.assert_fact("a", x=1)
        ps.retract(wme.wme_id)
        assert ps.facts() == []
        with pytest.raises(RuleError):
            ps.retract(wme.wme_id)

    def test_alpha_telemetry_exposed(self, ps):
        ps.add_rule("r", "(t ^v > 5)", lambda ctx: None)
        ps.assert_fact("t", v=10)
        stats = ps.network.alpha_index.stats
        assert stats.tuples_matched >= 1
