"""Differential tests for ``bulk_load`` across all four tree backends.

The O(N) bulk loader must be observationally identical to N incremental
inserts: same stab answers at every interesting probe, same invariants
(including the red-black colour rules and AVL balance), and the loaded
tree must remain a fully dynamic tree afterwards — inserts and deletes
on top of a bulk-loaded structure behave exactly as on a grown one.
"""

import random

import pytest

from repro import (
    AVLIBSTree,
    FlatIBSTree,
    IBSTree,
    Interval,
    IntervalClause,
    Predicate,
    PredicateIndex,
    RBIBSTree,
)
from repro.errors import DuplicateIntervalError, PredicateError, TreeError

BACKENDS = [IBSTree, AVLIBSTree, RBIBSTree, FlatIBSTree]
SEEDS = [0, 1, 2]


def random_interval(rng):
    low = rng.randint(-50, 150)
    shape = rng.randrange(6)
    if shape == 0:
        return Interval.point(low)
    if shape == 1:
        return Interval.at_least(low)
    if shape == 2:
        return Interval.at_most(low)
    span = rng.randint(0, 40)
    return Interval(
        low,
        low + span,
        low_inclusive=span == 0 or rng.random() < 0.5,
        high_inclusive=span == 0 or rng.random() < 0.5,
    )


def probes(items):
    values = {-1000, 1000}
    for interval, _ in items:
        for value in (interval.low, interval.high):
            if isinstance(value, int):
                values.update((value - 1, value, value + 1))
    return sorted(values)


@pytest.mark.parametrize("factory", BACKENDS)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("n", [0, 1, 2, 7, 100, 350])
def test_bulk_load_equals_incremental(factory, seed, n):
    rng = random.Random(seed * 1000 + n)
    items = [(random_interval(rng), f"p{i}") for i in range(n)]
    bulk = factory()
    assert bulk.bulk_load(items) == [ident for _, ident in items]
    incremental = factory()
    for interval, ident in items:
        incremental.insert(interval, ident)
    assert bulk.check_invariants() is True
    assert len(bulk) == len(incremental) == n
    for value in probes(items):
        assert bulk.stab(value) == incremental.stab(value), value
    assert dict(bulk.items()) == dict(incremental.items())


@pytest.mark.parametrize("factory", BACKENDS)
@pytest.mark.parametrize("seed", SEEDS)
def test_bulk_loaded_tree_stays_dynamic(factory, seed):
    rng = random.Random(seed)
    items = [(random_interval(rng), f"p{i}") for i in range(60)]
    bulk = factory()
    bulk.bulk_load(items)
    incremental = factory()
    for interval, ident in items:
        incremental.insert(interval, ident)
    # interleave deletes of loaded intervals with fresh inserts
    extra = []
    for i in range(30):
        victim = f"p{rng.randrange(60)}"
        if victim in bulk:
            bulk.delete(victim)
            incremental.delete(victim)
        interval = random_interval(rng)
        ident = f"x{i}"
        extra.append((interval, ident))
        bulk.insert(interval, ident)
        incremental.insert(interval, ident)
    assert bulk.check_invariants() is True
    for value in probes(items + extra):
        assert bulk.stab(value) == incremental.stab(value), value


@pytest.mark.parametrize("factory", BACKENDS)
def test_bulk_load_requires_empty_tree(factory):
    tree = factory()
    tree.insert(Interval.closed(1, 5), "a")
    with pytest.raises(TreeError):
        tree.bulk_load([(Interval.closed(2, 3), "b")])
    # the occupied tree is untouched
    assert sorted(tree.stab(2)) == ["a"]


@pytest.mark.parametrize("factory", BACKENDS)
def test_bulk_load_rejects_duplicate_idents_atomically(factory):
    tree = factory()
    items = [
        (Interval.closed(1, 5), "a"),
        (Interval.closed(2, 8), "b"),
        (Interval.closed(3, 9), "a"),  # duplicate
    ]
    with pytest.raises(DuplicateIntervalError):
        tree.bulk_load(items)
    # all-or-nothing: the failed load left the tree empty and reusable
    assert len(tree) == 0
    assert tree.check_invariants() is True
    tree.bulk_load([(Interval.closed(1, 5), "a"), (Interval.closed(2, 8), "b")])
    assert sorted(tree.stab(3)) == ["a", "b"]


@pytest.mark.parametrize("factory", BACKENDS)
def test_bulk_load_assigns_fresh_idents_for_none(factory):
    tree = factory()
    idents = tree.bulk_load(
        [(Interval.closed(0, 10), None), (Interval.closed(5, 15), "named"),
         (Interval.closed(20, 30), None)]
    )
    assert idents[1] == "named"
    assert len(set(idents)) == 3
    assert tree.stab(7) == {idents[0], "named"}


@pytest.mark.parametrize("factory", BACKENDS)
def test_bulk_load_bumps_epoch(factory):
    tree = factory()
    before = tree.epoch
    tree.bulk_load([(Interval.closed(0, 10), "a")])
    assert tree.epoch > before
    mid = tree.epoch
    tree.insert(Interval.closed(1, 2), "b")
    assert tree.epoch > mid
    after_insert = tree.epoch
    tree.delete("b")
    assert tree.epoch > after_insert
    last = tree.epoch
    tree.clear()
    assert tree.epoch > last


@pytest.mark.parametrize("factory", [AVLIBSTree, RBIBSTree])
def test_bulk_load_is_balanced(factory):
    # 1000 distinct endpoints -> midpoint build height ~ log2(1002)+1 = 11
    tree = factory()
    tree.bulk_load([(Interval.point(i), f"p{i}") for i in range(1000)])
    tree.validate()
    assert tree.height <= 12


@pytest.mark.parametrize("factory", BACKENDS)
@pytest.mark.parametrize("seed", SEEDS)
def test_add_many_matches_sequential_add(factory, seed):
    rng = random.Random(seed)

    def predicates():
        preds = []
        for i in range(40):
            interval = random_interval(rng)
            preds.append(
                Predicate(
                    "emp",
                    [IntervalClause("salary", interval)],
                    ident=f"p{i}",
                )
            )
        return preds

    preds = predicates()
    bulk_idx = PredicateIndex(tree_factory=factory)
    assert bulk_idx.add_many(preds) == [p.ident for p in preds]
    seq_idx = PredicateIndex(tree_factory=factory)
    for pred in preds:
        seq_idx.add(pred)
    for value in range(-60, 200, 3):
        tup = {"salary": value}
        assert (
            sorted(p.ident for p in bulk_idx.match("emp", tup))
            == sorted(p.ident for p in seq_idx.match("emp", tup))
        )
    assert bulk_idx.check_invariants() is True


def test_add_many_is_atomic_on_duplicates():
    idx = PredicateIndex()
    idx.add(
        Predicate("emp", [IntervalClause("salary", Interval.closed(0, 10))], ident="p0")
    )
    batch = [
        Predicate("emp", [IntervalClause("salary", Interval.closed(5, 15))], ident="q1"),
        Predicate("emp", [IntervalClause("salary", Interval.closed(7, 20))], ident="p0"),
    ]
    with pytest.raises(PredicateError):
        idx.add_many(batch)
    assert "q1" not in idx
    assert sorted(p.ident for p in idx.match("emp", {"salary": 8})) == ["p0"]
    assert idx.check_invariants() is True


@pytest.mark.parametrize("factory", BACKENDS)
def test_verify_and_rebuild_uses_bulk_load(factory, monkeypatch):
    idx = PredicateIndex(tree_factory=factory)
    for i in range(25):
        idx.add(
            Predicate(
                "emp",
                [IntervalClause("salary", Interval.closed(i, i + 10))],
                ident=f"p{i}",
            )
        )
    # corrupt: drop one entry from the tree behind the registry's back
    rel = idx._relations["emp"]
    rel.trees["salary"].delete("p3")

    calls = []
    original = factory.bulk_load

    def spying(self, items):
        calls.append(1)
        return original(self, items)

    monkeypatch.setattr(factory, "bulk_load", spying)
    report = idx.verify_and_rebuild()
    assert not report["healthy"]
    assert report["rebuilt"] == ["emp"]
    assert calls, "rebuild did not go through bulk_load"
    assert sorted(p.ident for p in idx.match("emp", {"salary": 3})) == [
        "p0", "p1", "p2", "p3",
    ]
