"""Tests for firing-trace hooks on both engines."""

from repro import CollectAction, Database, RuleEngine
from repro.production import ProductionSystem


class TestRuleEngineTrace:
    def test_on_fire_sees_every_firing(self):
        db = Database()
        db.create_relation("r", ["x"])
        engine = RuleEngine(db)
        trace = []
        engine.on_fire = lambda rule, ctx: trace.append((rule.name, ctx.tuple["x"]))
        engine.create_rule("watch", on="r", condition="x > 0", action=lambda ctx: None)
        db.insert("r", {"x": 1})
        db.insert("r", {"x": -1})
        db.insert("r", {"x": 2})
        assert trace == [("watch", 1), ("watch", 2)]

    def test_trace_fires_before_action(self):
        db = Database()
        db.create_relation("r", ["x"])
        engine = RuleEngine(db)
        order = []
        engine.on_fire = lambda rule, ctx: order.append("trace")
        engine.create_rule(
            "watch", on="r", condition="true", action=lambda ctx: order.append("action")
        )
        db.insert("r", {"x": 1})
        assert order == ["trace", "action"]


class TestProductionTrace:
    def test_trace_sees_instantiations(self):
        ps = ProductionSystem()
        trace = []
        ps.trace = lambda inst: trace.append(inst.rule.name)
        ps.add_rule("a", "(t)", lambda ctx: None, priority=1)
        ps.add_rule("b", "(t)", lambda ctx: None, priority=0)
        ps.assert_fact("t")
        ps.run()
        assert trace == ["a", "b"]

    def test_trace_has_bindings(self):
        ps = ProductionSystem()
        seen = []
        ps.trace = lambda inst: seen.append(dict(inst.bindings))
        ps.add_rule("r", "(t ^v ?v)", lambda ctx: None)
        ps.assert_fact("t", v=42)
        ps.run()
        assert seen == [{"v": 42}]
