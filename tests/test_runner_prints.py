"""The print_* runners render each experiment as a titled table."""

import pytest

from repro.bench.runner import (
    print_ablation_balancing,
    print_ablation_indexes,
    print_ablation_selectivity,
    print_cost_model,
    print_e2e,
    print_fig7,
    print_fig8,
    print_fig9,
    print_space,
    run_ablation_balancing,
    run_ablation_indexes,
    run_ablation_selectivity,
    run_cost_model,
    run_e2e,
    run_fig7,
    run_fig8,
    run_fig9,
    run_space,
)


@pytest.mark.parametrize(
    "print_fn,run_fn,kwargs,expect",
    [
        (print_fig7, run_fig7, {"ns": (40,), "fractions": (0.5,)}, "FIG7"),
        (print_fig8, run_fig8, {"ns": (40,), "fractions": (0.5,), "queries": 40}, "FIG8"),
        (print_fig9, run_fig9, {"ns": (5, 10), "queries": 200}, "FIG9"),
        (print_space, run_space, {"ns": (50,)}, "SPACE"),
        (
            print_ablation_indexes,
            run_ablation_indexes,
            {"n": 40, "queries": 20, "deletes": 5},
            "ABL1",
        ),
        (
            print_ablation_balancing,
            run_ablation_balancing,
            {"n": 60, "queries": 20},
            "ABL2",
        ),
        (
            print_ablation_selectivity,
            run_ablation_selectivity,
            {"predicates": 30, "tuples": 30, "rows": 200},
            "ABL3",
        ),
        (
            print_e2e,
            run_e2e,
            {"predicate_counts": (30,), "strategies": ("ibs", "hash"), "tuples": 20},
            "E2E",
        ),
    ],
)
def test_print_renders_table(capsys, print_fn, run_fn, kwargs, expect):
    rows = run_fn(**kwargs)
    returned = print_fn(rows)
    out = capsys.readouterr().out
    assert f"== {expect}" in out
    assert returned is rows


def test_print_cost_model(capsys):
    result = run_cost_model()
    print_cost_model(result)
    out = capsys.readouterr().out
    assert "== COST" in out
    assert "2.150" in out  # the paper-constant total


def test_run_all_dispatch(capsys, monkeypatch):
    import runpy
    import sys

    monkeypatch.setattr(sys, "argv", ["run_all.py", "nonsense"])
    with pytest.raises(SystemExit):
        runpy.run_path("benchmarks/run_all.py", run_name="__main__")
