"""Smoke and shape tests for the experiment runner (tiny sizes)."""

import pytest

from repro.bench.runner import (
    run_ablation_balancing,
    run_ablation_indexes,
    run_cost_model,
    run_e2e,
    run_fig7,
    run_fig8,
    run_fig9,
    run_space,
)
from repro.bench.reporting import format_series, format_table


class TestFigureRunners:
    def test_fig7_shape(self):
        rows = run_fig7(ns=(50, 100), fractions=(0.0, 1.0))
        assert [row["n"] for row in rows] == [50, 100]
        for row in rows:
            assert row["a=0"] > 0 and row["a=1"] > 0

    def test_fig8_shape(self):
        rows = run_fig8(ns=(50, 100), fractions=(0.5,), queries=200)
        assert all(row["a=0.5"] > 0 for row in rows)

    def test_fig9_sequential_above_ibs(self):
        """The paper's headline shape: sequential always above IBS."""
        rows = run_fig9(ns=(10, 25, 40), queries=2_000)
        for row in rows:
            assert row["sequential_us"] > row["ibs_us"], row

    def test_fig9_sequential_grows_linearly(self):
        rows = run_fig9(ns=(10, 40), queries=2_000)
        assert rows[1]["sequential_us"] > rows[0]["sequential_us"] * 2


class TestCostRunner:
    def test_cost_model_runner(self):
        result = run_cost_model()
        assert result["paper"].total_ms == pytest.approx(2.15)
        assert result["measured_ms"] > 0
        assert result["calibrated"].total_ms > 0


class TestSpaceRunner:
    def test_disjoint_linear_overlapping_superlinear(self):
        rows = run_space(ns=(100, 400))
        small, large = rows
        # disjoint: constant markers per interval
        assert small["disjoint_per_interval"] == pytest.approx(
            large["disjoint_per_interval"], abs=0.5
        )
        # overlapping: markers per interval grow with N (the log factor)
        assert large["overlapping_per_interval"] > small["overlapping_per_interval"]


class TestAblationRunners:
    def test_ablation_indexes_covers_all_structures(self):
        rows = run_ablation_indexes(n=120, queries=50, deletes=10)
        names = {row["structure"] for row in rows}
        assert names == {
            "list",
            "ibs",
            "ibs-avl",
            "ibs-rb",
            "pst",
            "rtree-1d",
            "rplus-1d",
            "segment",
            "interval",
        }
        by_name = {row["structure"]: row for row in rows}
        # static structures' modification cost (a full rebuild) dwarfs
        # the cheap dynamic inserts; compare against the cheapest
        # dynamic structures with a wide margin so scheduler noise
        # cannot flip the comparison
        for static in ("segment", "interval"):
            assert by_name[static]["insert_us"] > 3 * by_name["list"]["insert_us"]
            assert by_name[static]["insert_us"] > by_name["ibs"]["insert_us"]

    def test_ablation_balancing_heights(self):
        rows = run_ablation_balancing(n=200, queries=50)
        by_name = {row["structure"]: row for row in rows}
        assert by_name["ibs-avl"]["height"] < by_name["ibs (unbalanced)"]["height"]
        assert by_name["ibs-avl"]["height"] <= 14  # ~1.44*log2(400)


class TestE2ERunner:
    def test_strategies_agree_and_ibs_wins_at_scale(self):
        # timing comparison: best-of-3 runs so a scheduler hiccup in a
        # single pass cannot flip the (large) expected gap
        for attempt in range(3):
            rows = run_e2e(
                predicate_counts=(400,),
                strategies=("ibs", "hash", "sequential"),
                tuples=100,
            )
            large = rows[-1]
            if large["ibs"] < large["hash"] and large["ibs"] < large["sequential"]:
                return
        raise AssertionError(
            f"ibs not fastest at 400 predicates in any of 3 runs: {large}"
        )


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.00012], [1000.0, 0]])
        lines = text.splitlines()
        assert len(lines) == 5
        assert len(set(len(line) for line in lines)) == 1  # aligned

    def test_format_series_note(self):
        text = format_series("T", ["x"], [[1]], note="hello")
        assert "== T ==" in text
        assert "hello" in text
