"""Unit tests for the IBS-tree, including the paper's Figure 2 example."""

import pytest

from repro import IBSTree, Interval, MINUS_INF
from repro.errors import DuplicateIntervalError, UnknownIntervalError

#: The interval set of the paper's Figure 2 (OCR-corrected):
#: A [9,19], B [2,7), C [1,3), D (17,20], E [2,12), F [18,18], G (-inf,17]
FIGURE2 = {
    "A": Interval.closed(9, 19),
    "B": Interval.closed_open(2, 7),
    "C": Interval.closed_open(1, 3),
    "D": Interval.open_closed(17, 20),
    "E": Interval.closed_open(2, 12),
    "F": Interval.point(18),
    "G": Interval.at_most(17),
}


def figure2_tree() -> IBSTree:
    tree = IBSTree()
    for name, interval in FIGURE2.items():
        tree.insert(interval, name)
    return tree


class TestFigure2:
    """Stabbing queries on the paper's running example."""

    def test_matches_brute_force_on_grid(self):
        tree = figure2_tree()
        for x in [v / 2 for v in range(-4, 50)]:
            expected = {n for n, iv in FIGURE2.items() if iv.contains(x)}
            assert tree.stab(x) == expected, x

    @pytest.mark.parametrize(
        "x,expected",
        [
            (0, {"G"}),
            (1, {"C", "G"}),
            (2, {"B", "C", "E", "G"}),
            (3, {"B", "E", "G"}),
            (7, {"E", "G"}),
            (9, {"A", "E", "G"}),
            (12, {"A", "G"}),
            (17, {"A", "G"}),
            (17.5, {"A", "D"}),
            (18, {"A", "D", "F"}),
            (19, {"A", "D"}),
            (20, {"D"}),
            (21, set()),
            (-100, {"G"}),
        ],
    )
    def test_selected_points(self, x, expected):
        assert figure2_tree().stab(x) == expected

    def test_validate(self):
        figure2_tree().validate()

    def test_find_intervals_alias(self):
        tree = figure2_tree()
        assert tree.find_intervals(18) == tree.stab(18)

    def test_delete_each_interval(self):
        for victim in FIGURE2:
            tree = figure2_tree()
            tree.delete(victim)
            tree.validate()
            remaining = {n: iv for n, iv in FIGURE2.items() if n != victim}
            for x in [v / 2 for v in range(-4, 50)]:
                expected = {n for n, iv in remaining.items() if iv.contains(x)}
                assert tree.stab(x) == expected, (victim, x)


class TestBasicOperations:
    def test_empty_tree(self):
        tree = IBSTree()
        assert len(tree) == 0
        assert not tree
        assert tree.stab(5) == set()
        assert tree.height == 0
        assert tree.node_count == 0
        tree.validate()

    def test_auto_idents(self):
        tree = IBSTree()
        a = tree.insert(Interval.closed(1, 5))
        b = tree.insert(Interval.closed(2, 6))
        assert a != b
        assert tree.stab(3) == {a, b}

    def test_auto_ident_skips_taken(self):
        tree = IBSTree()
        tree.insert(Interval.point(1), 0)
        auto = tree.insert(Interval.point(2))
        assert auto != 0

    def test_duplicate_ident_rejected(self):
        tree = IBSTree()
        tree.insert(Interval.closed(1, 5), "x")
        with pytest.raises(DuplicateIntervalError):
            tree.insert(Interval.closed(2, 6), "x")

    def test_unknown_delete_rejected(self):
        with pytest.raises(UnknownIntervalError):
            IBSTree().delete("nope")

    def test_get_and_contains(self):
        tree = IBSTree()
        tree.insert(Interval.closed(1, 5), "x")
        assert tree.get("x") == Interval.closed(1, 5)
        assert "x" in tree
        assert "y" not in tree
        with pytest.raises(UnknownIntervalError):
            tree.get("y")

    def test_items_iteration(self):
        tree = figure2_tree()
        assert dict(tree.items()) == FIGURE2
        assert set(iter(tree)) == set(FIGURE2)

    def test_clear(self):
        tree = figure2_tree()
        tree.clear()
        assert len(tree) == 0
        assert tree.stab(10) == set()
        tree.validate()

    def test_same_bounds_many_idents(self):
        """Multiple intervals sharing bounds — the PST pain point."""
        tree = IBSTree()
        for k in range(10):
            tree.insert(Interval.closed(3, 8), k)
        assert tree.stab(5) == set(range(10))
        assert tree.node_count == 2  # endpoints shared
        tree.delete(4)
        assert tree.stab(5) == set(range(10)) - {4}
        tree.validate()

    def test_shared_endpoint_refcounting(self):
        tree = IBSTree()
        tree.insert(Interval.closed(1, 5), "a")
        tree.insert(Interval.closed(5, 9), "b")
        assert tree.node_count == 3  # 1, 5, 9
        tree.delete("a")
        assert tree.node_count == 2  # 5 still used by b
        assert tree.stab(5) == {"b"}
        tree.validate()

    def test_point_interval(self):
        tree = IBSTree()
        tree.insert(Interval.point(7), "p")
        assert tree.stab(7) == {"p"}
        assert tree.stab(6.999) == set()
        assert tree.stab(7.001) == set()
        assert tree.node_count == 1

    def test_unbounded_intervals(self):
        tree = IBSTree()
        tree.insert(Interval.at_most(10), "low")
        tree.insert(Interval.at_least(5), "high")
        tree.insert(Interval.unbounded(), "all")
        assert tree.stab(0) == {"low", "all"}
        assert tree.stab(7) == {"low", "high", "all"}
        assert tree.stab(100) == {"high", "all"}
        tree.validate()
        tree.delete("all")
        assert tree.stab(7) == {"low", "high"}
        tree.validate()

    def test_insert_delete_insert_same_ident(self):
        tree = IBSTree()
        tree.insert(Interval.closed(1, 3), "x")
        tree.delete("x")
        tree.insert(Interval.closed(5, 9), "x")
        assert tree.stab(2) == set()
        assert tree.stab(6) == {"x"}

    def test_string_domain_tree(self):
        tree = IBSTree()
        tree.insert(Interval.closed("apple", "mango"), "fruit")
        tree.insert(Interval.point("zebra"), "z")
        tree.insert(Interval.at_least("n"), "late")
        assert tree.stab("banana") == {"fruit"}
        assert tree.stab("zebra") == {"z", "late"}
        assert tree.stab("pear") == {"late"}
        tree.validate()

    def test_markers_of(self):
        tree = figure2_tree()
        for name in FIGURE2:
            assert tree.markers_of(name) >= 1
        with pytest.raises(UnknownIntervalError):
            tree.markers_of("nope")

    def test_marker_count_totals(self):
        tree = figure2_tree()
        assert tree.marker_count == sum(tree.markers_of(n) for n in FIGURE2)

    def test_dump_smoke(self):
        text = figure2_tree().dump()
        assert "17" in text  # G's endpoint appears somewhere

    def test_delete_to_empty_and_reuse(self):
        tree = figure2_tree()
        for name in list(FIGURE2):
            tree.delete(name)
            tree.validate()
        assert len(tree) == 0
        assert tree.node_count == 0
        assert tree._root is None
        tree.insert(Interval.closed(1, 2), "fresh")
        assert tree.stab(1.5) == {"fresh"}


class TestHeights:
    def test_height_maintained_on_insert(self):
        tree = IBSTree()
        for k in range(20):
            tree.insert(Interval.point(k * 7 % 20), f"p{k}")
        tree.validate()  # validates cached heights

    def test_height_maintained_on_delete(self):
        tree = IBSTree()
        for k in range(20):
            tree.insert(Interval.closed(k, k + 3), k)
        for k in range(0, 20, 2):
            tree.delete(k)
            tree.validate()
