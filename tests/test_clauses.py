"""Unit tests for predicate clauses."""

import pytest

from repro import (
    ClauseError,
    EqualityClause,
    FunctionClause,
    Interval,
    IntervalClause,
)
from repro.predicates import comparison_clause


def is_odd(x):
    return x % 2 == 1


class TestIntervalClause:
    def test_matches(self):
        clause = IntervalClause("salary", Interval.closed(20000, 30000))
        assert clause.matches({"salary": 25000})
        assert clause.matches({"salary": 20000})
        assert not clause.matches({"salary": 19999})

    def test_null_never_matches(self):
        clause = IntervalClause("salary", Interval.unbounded())
        assert not clause.matches({"salary": None})
        assert not clause.matches({})

    def test_indexable(self):
        assert IntervalClause("x", Interval.closed(1, 2)).indexable

    def test_requires_interval(self):
        with pytest.raises(ClauseError):
            IntervalClause("x", (1, 2))

    def test_requires_attribute_name(self):
        with pytest.raises(ClauseError):
            IntervalClause("", Interval.closed(1, 2))
        with pytest.raises(ClauseError):
            IntervalClause(None, Interval.closed(1, 2))

    def test_equality_and_hash(self):
        a = IntervalClause("x", Interval.closed(1, 2))
        b = IntervalClause("x", Interval.closed(1, 2))
        c = IntervalClause("y", Interval.closed(1, 2))
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_str_shapes(self):
        assert "20000" in str(IntervalClause("s", Interval.at_least(20000)))
        assert "=" in str(IntervalClause("s", Interval.point(5)))
        assert "unbounded" in str(IntervalClause("s", Interval.unbounded()))
        both = str(IntervalClause("s", Interval.closed(1, 9)))
        assert ">=" in both and "<=" in both


class TestEqualityClause:
    def test_matches(self):
        clause = EqualityClause("dept", "Shoe")
        assert clause.matches({"dept": "Shoe"})
        assert not clause.matches({"dept": "Toy"})

    def test_is_point_interval(self):
        clause = EqualityClause("x", 5)
        assert clause.interval == Interval.point(5)
        assert clause.value == 5
        assert clause.indexable

    def test_str(self):
        assert str(EqualityClause("dept", "Shoe")) == "dept = 'Shoe'"


class TestFunctionClause:
    def test_matches(self):
        clause = FunctionClause("age", is_odd)
        assert clause.matches({"age": 3})
        assert not clause.matches({"age": 4})

    def test_negate(self):
        clause = FunctionClause("age", is_odd).negate()
        assert clause.matches({"age": 4})
        assert not clause.matches({"age": 3})
        assert clause.negate().matches({"age": 3})

    def test_null_never_matches(self):
        assert not FunctionClause("age", is_odd).matches({"age": None})
        assert not FunctionClause("age", is_odd).negate().matches({})

    def test_not_indexable(self):
        assert not FunctionClause("age", is_odd).indexable

    def test_requires_callable(self):
        with pytest.raises(ClauseError):
            FunctionClause("age", 42)

    def test_name_and_str(self):
        clause = FunctionClause("age", is_odd)
        assert clause.name == "is_odd"
        assert str(clause) == "is_odd(age)"
        assert str(clause.negate()) == "not is_odd(age)"
        named = FunctionClause("age", lambda x: True, name="always")
        assert str(named) == "always(age)"

    def test_equality(self):
        a = FunctionClause("age", is_odd)
        b = FunctionClause("age", is_odd)
        assert a == b
        assert a != a.negate()


class TestComparisonClause:
    @pytest.mark.parametrize(
        "op,value,hit,miss",
        [
            ("=", 5, 5, 6),
            ("==", 5, 5, 4),
            ("<", 5, 4, 5),
            ("<=", 5, 5, 6),
            (">", 5, 6, 5),
            (">=", 5, 5, 4),
        ],
    )
    def test_operators(self, op, value, hit, miss):
        clause = comparison_clause("x", op, value)
        assert clause.matches({"x": hit})
        assert not clause.matches({"x": miss})

    def test_equality_yields_equality_clause(self):
        assert isinstance(comparison_clause("x", "=", 5), EqualityClause)

    def test_unknown_operator(self):
        with pytest.raises(ClauseError):
            comparison_clause("x", "!", 5)
