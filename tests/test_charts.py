"""Tests for the ASCII chart renderer."""

import pytest

from repro.bench.charts import _assign_glyphs, ascii_chart


class TestAsciiChart:
    def test_basic_rendering(self):
        chart = ascii_chart(
            {"up": [(0, 0), (5, 5), (10, 10)], "flat": [(0, 2), (10, 2)]},
            width=20,
            height=5,
        )
        lines = chart.splitlines()
        assert any("u=up" in line for line in lines)
        assert any("f=flat" in line for line in lines)
        assert "+" + "-" * 20 in chart

    def test_empty(self):
        assert "no data" in ascii_chart({})
        assert "no data" in ascii_chart({"a": []})

    def test_title(self):
        chart = ascii_chart({"s": [(0, 1)]}, title="hello")
        assert chart.splitlines()[0] == "hello"

    def test_extremes_on_axes(self):
        chart = ascii_chart({"s": [(2, 3), (8, 9)]}, width=10, height=4)
        assert "9" in chart  # y max label
        assert "3" in chart  # y min label
        assert "2" in chart and "8" in chart  # x labels

    def test_single_point(self):
        chart = ascii_chart({"s": [(5, 5)]}, width=10, height=4)
        assert "s=s" in chart

    def test_monotone_series_renders_monotone(self):
        chart = ascii_chart({"up": [(k, k) for k in range(10)]}, width=30, height=10)
        rows = [line.split("|", 1)[1] for line in chart.splitlines() if "|" in line]
        columns = [row.index("u") for row in rows if "u" in row]
        # rows render top (large y) to bottom (small y): for y = x the
        # top rows hold the rightmost points, so columns descend
        assert columns == sorted(columns, reverse=True)

    def test_first_cell_wins(self):
        chart = ascii_chart(
            {"a": [(0, 0)], "b": [(0, 0)]}, width=5, height=3
        )
        body = "\n".join(line for line in chart.splitlines() if "|" in line)
        assert "a" in body
        assert "b" not in body  # same cell: first series keeps it


class TestGlyphAssignment:
    def test_first_letters(self):
        assert _assign_glyphs(["ibs", "sequential"]) == ["i", "s"]

    def test_collision_falls_back(self):
        glyphs = _assign_glyphs(["seq", "set", "sort"])
        assert glyphs[0] == "s"
        assert len(set(glyphs)) == 3

    def test_non_alnum_label(self):
        glyphs = _assign_glyphs(["---", "***"])
        assert len(set(glyphs)) == 2
