"""End-to-end integration scenarios combining multiple subsystems."""

import io
import random

import pytest

from repro import (
    CollectAction,
    Database,
    InsertAction,
    RuleEngine,
    UpdateAction,
)
from repro.db import load_database, save_database
from repro.production import ProductionSystem
from repro.workloads import emp_schema, random_emp


class TestFullPipeline:
    """DB + triggers + joins + persistence in one coherent scenario."""

    def test_payroll_scenario(self):
        db = Database()
        emp_schema(db)
        db.create_relation("dept", ["dname", "budget"])
        db.create_relation("audit", ["event", "who"])

        engine = RuleEngine(db)
        raises_given = []

        # derived-data trigger with a cascade guard
        engine.create_rule(
            "min_wage",
            on="emp",
            condition="salary < 10000",
            action=UpdateAction(lambda ctx: {"salary": 10000}),
            priority=10,
        )
        engine.create_rule(
            "audit_hire",
            on="emp",
            condition=None,
            action=InsertAction(
                "audit", lambda ctx: {"event": "hire", "who": ctx.tuple["name"]}
            ),
            on_events=("insert",),
        )
        engine.create_join_rule(
            "over_budget",
            "emp",
            "dept",
            "emp.dept = dept.dname and emp.salary > dept.budget",
            action=lambda ctx: raises_given.append(ctx.bindings["emp"]["name"]),
        )

        rng = random.Random(42)
        for name in ["Shoe", "Toy"]:
            db.insert("dept", {"dname": name, "budget": 50_000})
        hires = 0
        for _ in range(60):
            emp = random_emp(rng)
            emp["dept"] = rng.choice(["Shoe", "Toy"])
            db.insert("emp", emp)
            hires += 1

        # every insert audited exactly once
        assert db.count("audit") == hires
        # min-wage floor enforced by the cascading update rule
        assert all(row["salary"] >= 10000 for row in db.select("emp"))
        # join rule found exactly the over-budget employees
        expected = [
            row["name"] for row in db.select("emp", "salary > 50000")
        ]
        assert sorted(raises_given) == sorted(expected)

        # checkpoint and reload: data identical, rules reattach cleanly
        buffer = io.StringIO()
        save_database(db, buffer)
        buffer.seek(0)
        restored = load_database(buffer)
        assert restored.count("emp") == db.count("emp")
        engine2 = RuleEngine(restored)
        collect = CollectAction()
        engine2.create_rule(
            "verify", on="emp", condition="salary >= 10000", action=collect
        )
        restored.insert(
            "emp",
            {"name": "late", "age": 30, "salary": 20000, "dept": "Shoe",
             "job": "Cashier"},
        )
        assert len(collect.records) == 1

    def test_trigger_feeding_production_system(self):
        """Database triggers exporting facts into the expert system."""
        db = Database()
        db.create_relation("reading", ["sensor", "value"])
        engine = RuleEngine(db)

        ps = ProductionSystem()
        diagnoses = []
        ps.add_rule(
            "spike",
            "(hot ^sensor ?s ^at ?t) (hot ^sensor ?s ^at > ?t)",
            lambda ctx: None,
        )
        ps.remove_rule("spike")  # exercise removal of a join-ish rule
        ps.add_rule(
            "two-hot-readings",
            "(hot ^sensor ?s ^at ?t1) (hot ^sensor ?s ^at > ?t1)"
            " -(diagnosed ^sensor ?s)",
            lambda ctx: (
                diagnoses.append(ctx["s"]),
                ctx.make("diagnosed", sensor=ctx["s"]),
            ),
        )

        tick = {"n": 0}

        def export(ctx):
            tick["n"] += 1
            ps.assert_fact(
                "hot", sensor=ctx.tuple["sensor"], at=tick["n"]
            )
            ps.run()

        engine.create_rule(
            "export_hot", on="reading", condition="value > 90", action=export
        )

        for value in [50, 95, 99, 10, 97]:
            db.insert("reading", {"sensor": "s1", "value": value})
        db.insert("reading", {"sensor": "s2", "value": 99})

        # s1 had three hot readings -> diagnosed once; s2 only one -> not
        assert diagnoses == ["s1"]

    def test_all_tree_variants_through_engine(self):
        rows = [
            {"name": f"e{k}", "age": k % 70, "salary": (k * 137) % 60000,
             "dept": "Shoe" if k % 3 else "Toy", "job": "Cashier"}
            for k in range(80)
        ]
        results = {}
        for strategy in ("ibs", "ibs-avl", "ibs-rb"):
            db = Database()
            emp_schema(db)
            collect = CollectAction()
            engine = RuleEngine(db, matcher=strategy)
            engine.create_rule(
                "band", on="emp", condition="20000 <= salary <= 40000",
                action=collect,
            )
            engine.create_rule(
                "young_shoe", on="emp",
                condition='age < 30 and dept = "Shoe"', action=collect,
            )
            for row in rows:
                db.insert("emp", dict(row))
            results[strategy] = sorted(
                (name, tup["name"]) for name, tup in collect.records
            )
        assert results["ibs"] == results["ibs-avl"] == results["ibs-rb"]
