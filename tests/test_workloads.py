"""Tests for the workload generators."""

import random

import pytest

from repro import Database
from repro.errors import WorkloadError
from repro.workloads import (
    IntervalWorkload,
    ScenarioConfig,
    ScenarioWorkload,
    emp_schema,
    grocery_schema,
    non_indexable_probe,
    random_emp,
    random_item,
    wide_schema,
)


class TestIntervalWorkload:
    def test_paper_distribution(self):
        workload = IntervalWorkload(point_fraction=0.5, seed=1)
        intervals = workload.intervals(2000)
        points = [iv for iv in intervals if iv.is_point]
        ranges = [iv for iv in intervals if not iv.is_point]
        # a = 0.5 within tolerance
        assert 0.42 < len(points) / len(intervals) < 0.58
        for iv in intervals:
            assert 1 <= iv.low <= 10_000
            assert iv.low_inclusive and iv.high_inclusive
        for iv in ranges:
            assert 1 <= iv.high - iv.low <= 1_000

    def test_extreme_fractions(self):
        assert all(iv.is_point for iv in IntervalWorkload(1.0, seed=2).intervals(100))
        assert not any(iv.is_point for iv in IntervalWorkload(0.0, seed=2).intervals(100))

    def test_seed_determinism(self):
        a = IntervalWorkload(0.5, seed=42).intervals(50)
        b = IntervalWorkload(0.5, seed=42).intervals(50)
        assert a == b
        c = IntervalWorkload(0.5, seed=43).intervals(50)
        assert a != c

    def test_query_points_in_domain(self):
        workload = IntervalWorkload(seed=3)
        for x in workload.query_points(500):
            assert 1 <= x <= 10_000

    def test_disjoint_intervals(self):
        workload = IntervalWorkload(seed=4)
        intervals = workload.disjoint_intervals(100)
        assert len(intervals) == 100
        ordered = sorted(intervals, key=lambda iv: iv.low)
        for a, b in zip(ordered, ordered[1:]):
            assert a.high < b.low
        # returned shuffled, not in ascending order
        assert intervals != ordered

    def test_predicates_wrapping(self):
        workload = IntervalWorkload(point_fraction=0.5, seed=5)
        predicates = workload.predicates(50, relation="emp", attribute="salary")
        assert all(p.relation == "emp" for p in predicates)
        assert all(p.clauses[0].attribute == "salary" for p in predicates)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            IntervalWorkload(point_fraction=1.5)
        with pytest.raises(WorkloadError):
            IntervalWorkload(value_low=10, value_high=1)
        with pytest.raises(WorkloadError):
            IntervalWorkload(length_low=10, length_high=1)


class TestScenarioWorkload:
    def test_paper_defaults(self):
        workload = ScenarioWorkload(ScenarioConfig(seed=1))
        assert len(workload.attribute_names) == 15
        assert len(workload.predicate_attributes) == 5
        predicates = workload.predicates()["r0"]
        assert len(predicates) == 200
        indexable = [p for p in predicates if p.is_indexable]
        assert 0.8 < len(indexable) / len(predicates) <= 1.0

    def test_clause_count_and_selectivity(self):
        workload = ScenarioWorkload(ScenarioConfig(seed=2))
        pred = workload.predicate("r0")
        assert len(pred.clauses) == 2
        for clause in pred.clauses:
            if clause.indexable and not clause.interval.is_point:
                width = clause.interval.high - clause.interval.low + 1
                assert width == 1000  # 10% of the 10k domain

    def test_tuples_shape(self):
        workload = ScenarioWorkload(ScenarioConfig(seed=3))
        tup = workload.tuple()
        assert set(tup) == set(workload.attribute_names)
        assert all(1 <= v <= 10_000 for v in tup.values())

    def test_null_fraction(self):
        workload = ScenarioWorkload(
            ScenarioConfig(seed=4, tuple_null_fraction=0.5)
        )
        values = [v for tup in workload.tuples(50) for v in tup.values()]
        nulls = sum(1 for v in values if v is None)
        assert 0.35 < nulls / len(values) < 0.65

    def test_events_stream(self):
        workload = ScenarioWorkload(ScenarioConfig(relations=3, seed=5))
        events = list(workload.events(50))
        assert len(events) == 50
        assert {rel for rel, _ in events} <= {"r0", "r1", "r2"}

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ScenarioConfig(relations=0)
        with pytest.raises(WorkloadError):
            ScenarioConfig(predicate_attr_fraction=0)
        with pytest.raises(WorkloadError):
            ScenarioConfig(indexable_fraction=2)
        with pytest.raises(WorkloadError):
            ScenarioConfig(clauses_per_predicate=0)
        with pytest.raises(WorkloadError):
            ScenarioConfig(clause_selectivity=0)

    def test_non_indexable_probe(self):
        assert non_indexable_probe(3)
        assert not non_indexable_probe(4)


class TestSchemas:
    def test_emp_schema_and_tuples(self):
        db = Database()
        emp_schema(db)
        rng = random.Random(1)
        for _ in range(20):
            db.insert("emp", random_emp(rng))
        assert db.count("emp") == 20
        row = db.select("emp")[0]
        assert {"name", "age", "salary", "dept", "job"} == set(row)

    def test_grocery_schema_and_items(self):
        db = Database()
        grocery_schema(db)
        rng = random.Random(2)
        for k in range(10):
            db.insert("items", random_item(rng, k))
        assert db.count("items") == 10
        item = db.select("items")[0]
        assert item["reorder_qty"] >= item["reorder_level"]

    def test_wide_schema(self):
        db = Database()
        wide_schema(db, "w", attributes=7)
        assert len(db.relation("w").schema) == 7
        db.insert("w", {"a0": 1})
