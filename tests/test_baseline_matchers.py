"""Tests for the Section 2 baseline predicate matchers."""

import random

import pytest

from repro import (
    EqualityClause,
    FunctionClause,
    Interval,
    IntervalClause,
    Predicate,
    PredicateIndex,
)
from repro.baselines import (
    HashSequentialMatcher,
    PhysicalLockingMatcher,
    RTreeMatcher,
    SequentialMatcher,
)
from repro.errors import PredicateError, UnknownIntervalError


def is_odd(x):
    return x % 2 == 1


def make_predicates(seed=0, count=60, relations=("r", "s")):
    rng = random.Random(seed)
    predicates = []
    for _ in range(count):
        clauses = []
        for _ in range(rng.randint(1, 2)):
            attr = rng.choice(["a", "b", "c"])
            kind = rng.random()
            if kind < 0.3:
                clauses.append(EqualityClause(attr, rng.randint(0, 15)))
            elif kind < 0.8:
                lo = rng.randint(0, 12)
                clauses.append(
                    IntervalClause(attr, Interval.closed(lo, lo + rng.randint(0, 6)))
                )
            else:
                clauses.append(FunctionClause(attr, is_odd))
        pred = Predicate(rng.choice(relations), clauses).normalized()
        if pred is not None:
            predicates.append(pred)
    return predicates


ALL_MATCHERS = [
    ("sequential", SequentialMatcher),
    ("hash", HashSequentialMatcher),
    ("locking-noindex", PhysicalLockingMatcher),
    (
        "locking-indexed",
        lambda: PhysicalLockingMatcher({"r": {"a", "b"}, "s": {"a"}}),
    ),
    ("rtree", RTreeMatcher),
    ("ibs", PredicateIndex),
]


class TestEquivalence:
    @pytest.mark.parametrize("name,factory", ALL_MATCHERS)
    def test_matches_brute_force(self, name, factory):
        predicates = make_predicates(seed=5)
        matcher = factory()
        for pred in predicates:
            matcher.add(pred)
        rng = random.Random(55)
        for _ in range(150):
            relation = rng.choice(["r", "s"])
            tup = {attr: rng.randint(0, 18) for attr in ["a", "b", "c"]}
            expected = {
                p.ident for p in predicates if p.relation == relation and p.matches(tup)
            }
            got = {p.ident for p in matcher.match(relation, tup)}
            assert got == expected, (name, relation, tup)

    @pytest.mark.parametrize("name,factory", ALL_MATCHERS)
    def test_removal(self, name, factory):
        predicates = make_predicates(seed=9, count=30)
        matcher = factory()
        for pred in predicates:
            matcher.add(pred)
        rng = random.Random(99)
        removed = rng.sample(predicates, 15)
        for pred in removed:
            matcher.remove(pred.ident)
        assert len(matcher) == len(predicates) - 15
        remaining = [p for p in predicates if p not in removed]
        for _ in range(80):
            relation = rng.choice(["r", "s"])
            tup = {attr: rng.randint(0, 18) for attr in ["a", "b", "c"]}
            expected = {
                p.ident for p in remaining if p.relation == relation and p.matches(tup)
            }
            got = {p.ident for p in matcher.match(relation, tup)}
            assert got == expected, name

    @pytest.mark.parametrize("name,factory", ALL_MATCHERS)
    def test_duplicate_and_unknown(self, name, factory):
        matcher = factory()
        pred = Predicate("r", [EqualityClause("a", 1)])
        matcher.add(pred)
        with pytest.raises((PredicateError, Exception)):
            matcher.add(pred)
        with pytest.raises((UnknownIntervalError, KeyError)):
            matcher.remove("nope")

    @pytest.mark.parametrize("name,factory", ALL_MATCHERS)
    def test_match_idents_helper(self, name, factory):
        matcher = factory()
        pred = Predicate("r", [EqualityClause("a", 1)])
        matcher.add(pred)
        assert matcher.match_idents("r", {"a": 1}) == {pred.ident}


class TestSequentialSpecifics:
    def test_scans_all_relations(self):
        """2.1 has no per-relation partitioning: relation check is a test."""
        matcher = SequentialMatcher()
        for k in range(10):
            matcher.add(Predicate(f"rel{k}", [EqualityClause("a", 1)], ident=k))
        assert matcher.match_idents("rel3", {"a": 1}) == {3}


class TestHashSpecifics:
    def test_predicates_for(self):
        matcher = HashSequentialMatcher()
        p1 = Predicate("r", [], ident="p1")
        p2 = Predicate("s", [], ident="p2")
        matcher.add(p1)
        matcher.add(p2)
        assert [p.ident for p in matcher.predicates_for("r")] == ["p1"]
        assert matcher.predicates_for("ghost") == []
        matcher.remove("p1")
        assert matcher.predicates_for("r") == []


class TestPhysicalLockingSpecifics:
    def test_escalation_without_indexes(self):
        matcher = PhysicalLockingMatcher()
        pred = Predicate("r", [EqualityClause("a", 1)])
        matcher.add(pred)
        assert matcher.stats.escalations == 1
        matcher.match("r", {"a": 2})
        # escalated predicates are tested on every tuple
        assert matcher.stats.relation_locks_checked == 1

    def test_interval_locks_with_indexes(self):
        matcher = PhysicalLockingMatcher({"r": {"a"}})
        pred = Predicate("r", [EqualityClause("a", 1)])
        matcher.add(pred)
        assert matcher.stats.escalations == 0
        matcher.match("r", {"a": 2})
        assert matcher.stats.interval_locks_checked == 1

    def test_create_index_later(self):
        matcher = PhysicalLockingMatcher()
        matcher.create_index("r", "a")
        assert matcher.indexed_attributes("r") == {"a"}
        pred = Predicate("r", [EqualityClause("a", 1)])
        matcher.add(pred)
        assert matcher.stats.escalations == 0

    def test_function_only_predicate_escalates(self):
        matcher = PhysicalLockingMatcher({"r": {"a"}})
        pred = Predicate("r", [FunctionClause("a", is_odd)])
        matcher.add(pred)
        assert matcher.stats.escalations == 1
        assert matcher.match_idents("r", {"a": 3}) == {pred.ident}

    def test_stats_reset(self):
        matcher = PhysicalLockingMatcher()
        matcher.add(Predicate("r", [EqualityClause("a", 1)]))
        matcher.match("r", {"a": 1})
        matcher.stats.reset()
        assert matcher.stats.relation_locks_checked == 0


class TestRTreeMatcherSpecifics:
    def test_string_clauses_fall_to_residual(self):
        matcher = RTreeMatcher()
        pred = Predicate(
            "r", [EqualityClause("dept", "Shoe"), IntervalClause("a", Interval.closed(1, 9))]
        )
        matcher.add(pred)
        assert matcher.match_idents("r", {"dept": "Shoe", "a": 5}) == {pred.ident}
        assert matcher.match_idents("r", {"dept": "Toy", "a": 5}) == set()

    def test_pure_string_predicate_unindexed(self):
        matcher = RTreeMatcher()
        pred = Predicate("r", [EqualityClause("dept", "Shoe")])
        matcher.add(pred)
        assert matcher.match_idents("r", {"dept": "Shoe"}) == {pred.ident}

    def test_dimension_growth_rebuilds(self):
        matcher = RTreeMatcher()
        p1 = Predicate("r", [EqualityClause("a", 1)])
        matcher.add(p1)
        p2 = Predicate("r", [EqualityClause("b", 2)])
        matcher.add(p2)
        assert matcher.rebuilds >= 1
        assert matcher.match_idents("r", {"a": 1, "b": 5}) == {p1.ident}
        assert matcher.match_idents("r", {"a": 9, "b": 2}) == {p2.ident}

    def test_null_in_indexed_dimension_falls_back(self):
        matcher = RTreeMatcher()
        pred = Predicate("r", [IntervalClause("a", Interval.at_least(0))])
        matcher.add(pred)
        other = Predicate("r", [EqualityClause("b", 3)])
        matcher.add(other)
        assert matcher.match_idents("r", {"a": None, "b": 3}) == {other.ident}
