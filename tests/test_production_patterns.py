"""Tests for production-system patterns, variables, and the LHS parser."""

import pytest

from repro.errors import ParseError, RuleError
from repro.production import Pattern, Test, Var, parse_lhs, parse_pattern


class TestVar:
    def test_identity(self):
        assert Var("x") == Var("x")
        assert Var("x") != Var("y")
        assert hash(Var("x")) == hash(Var("x"))
        assert repr(Var("x")) == "?x"

    def test_validation(self):
        with pytest.raises(RuleError):
            Var("")
        with pytest.raises(RuleError):
            Var(None)


class TestTest:
    def test_operator_validation(self):
        Test("a", "=", 1)
        Test("a", ">=", 1)
        with pytest.raises(RuleError):
            Test("a", "~", 1)

    def test_function_test(self):
        t = Test("a", "?", lambda v: v > 0)
        assert t.is_function
        with pytest.raises(RuleError):
            Test("a", "?", 42)

    def test_is_variable(self):
        assert Test("a", "=", Var("x")).is_variable
        assert not Test("a", "=", 5).is_variable


class TestPatternAlpha:
    def test_constant_tests_compile(self):
        pattern = Pattern("emp", [Test("salary", ">", 100), Test("dept", "=", "Shoe")])
        predicate = pattern.alpha_predicate()
        assert predicate.relation == "emp"
        assert predicate.matches({"salary": 200, "dept": "Shoe"})
        assert not predicate.matches({"salary": 50, "dept": "Shoe"})
        assert not predicate.matches({"salary": 200, "dept": "Toy"})

    def test_variable_tests_excluded_from_alpha(self):
        pattern = Pattern("emp", [Test("dept", "=", Var("d")), Test("age", "<", 30)])
        predicate = pattern.alpha_predicate()
        assert predicate.matches({"age": 20, "dept": "anything"})

    def test_not_equal_constant(self):
        pattern = Pattern("emp", [Test("dept", "<>", "Shoe")])
        predicate = pattern.alpha_predicate()
        assert predicate.matches({"dept": "Toy"})
        assert not predicate.matches({"dept": "Shoe"})

    def test_function_test_in_alpha(self):
        pattern = Pattern("emp", [Test("age", "?", lambda v: v % 2 == 1)])
        predicate = pattern.alpha_predicate()
        assert predicate.matches({"age": 3})
        assert not predicate.matches({"age": 4})


class TestPatternBind:
    def test_binds_new_variable(self):
        pattern = Pattern("emp", [Test("dept", "=", Var("d"))])
        bindings = pattern.bind({"dept": "Shoe"}, {})
        assert bindings == {"d": "Shoe"}

    def test_tests_existing_binding(self):
        pattern = Pattern("dept", [Test("name", "=", Var("d"))])
        assert pattern.bind({"name": "Shoe"}, {"d": "Shoe"}) == {"d": "Shoe"}
        assert pattern.bind({"name": "Toy"}, {"d": "Shoe"}) is None

    def test_inequality_against_bound_var(self):
        pattern = Pattern("n", [Test("value", ">", Var("x"))])
        assert pattern.bind({"value": 9}, {"x": 5}) is not None
        assert pattern.bind({"value": 3}, {"x": 5}) is None

    def test_inequality_unbound_fails(self):
        pattern = Pattern("n", [Test("value", ">", Var("x"))])
        assert pattern.bind({"value": 9}, {}) is None

    def test_null_attribute_fails(self):
        pattern = Pattern("n", [Test("value", "=", Var("x"))])
        assert pattern.bind({}, {}) is None
        assert pattern.bind({"value": None}, {}) is None

    def test_intra_element_repeated_variable(self):
        pattern = Pattern(
            "edge", [Test("src", "=", Var("n")), Test("dst", "=", Var("n"))]
        )
        assert pattern.bind({"src": "a", "dst": "a"}, {}) == {"n": "a"}
        assert pattern.bind({"src": "a", "dst": "b"}, {}) is None

    def test_original_bindings_not_mutated(self):
        pattern = Pattern("n", [Test("value", "=", Var("x"))])
        original = {}
        pattern.bind({"value": 1}, original)
        assert original == {}

    def test_cross_type_comparison_fails_safely(self):
        pattern = Pattern("n", [Test("value", ">", Var("x"))])
        assert pattern.bind({"value": "text"}, {"x": 5}) is None


class TestParser:
    def test_basic(self):
        pattern = parse_pattern("(emp ^salary > 50000 ^dept ?d)")
        assert pattern.wme_type == "emp"
        assert not pattern.negated
        assert pattern.tests[0].attribute == "salary"
        assert pattern.tests[0].op == ">"
        assert pattern.tests[0].operand == 50000
        assert pattern.tests[1].operand == Var("d")

    def test_negation(self):
        assert parse_pattern('-(alarm ^severity "high")').negated

    def test_default_equality(self):
        pattern = parse_pattern("(emp ^dept Shoe)")
        assert pattern.tests[0].op == "="
        assert pattern.tests[0].operand == "Shoe"  # bare word = symbol

    def test_values(self):
        pattern = parse_pattern(
            '(x ^a 1 ^b 2.5 ^c -3 ^d "quoted text" ^e true ^f false)'
        )
        values = [t.operand for t in pattern.tests]
        assert values == [1, 2.5, -3, "quoted text", True, False]

    def test_no_tests(self):
        pattern = parse_pattern("(halt-request)")
        assert pattern.wme_type == "halt-request"
        assert pattern.tests == ()

    def test_hyphenated_type_names(self):
        assert parse_pattern("(find-max ^v 1)").wme_type == "find-max"

    def test_lhs_multiple(self):
        patterns = parse_lhs(
            """
            (number ^value ?x)
            -(number ^value > ?x)
            """
        )
        assert len(patterns) == 2
        assert patterns[1].negated

    def test_errors(self):
        for bad in [
            "emp ^a 1)",
            "(emp ^a 1",
            "(emp ^ 1)",
            "(emp a 1)",
            "( ^a 1)",
            '(emp ^a "unterminated)',
            "(emp ^a 1) trailing",
            "",
        ]:
            with pytest.raises(ParseError):
                (parse_pattern if "trailing" in bad else parse_lhs)(bad)


class TestPatternValidation:
    def test_type_required(self):
        with pytest.raises(RuleError):
            Pattern("", [])

    def test_tests_typed(self):
        with pytest.raises(RuleError):
            Pattern("x", ["nope"])

    def test_repr(self):
        assert repr(parse_pattern("-(n ^v > ?x)")) == "-(n ^v > ?x)"
