"""Tests for the forward-chaining rule engine."""

import pytest

from repro import (
    AbortAction,
    AbortMutation,
    CollectAction,
    Database,
    DeleteAction,
    InsertAction,
    RuleEngine,
    UpdateAction,
    chain,
)
from repro.errors import (
    DuplicateRuleError,
    RuleCycleError,
    RuleError,
    UnknownRelationError,
    UnknownRuleError,
)

FNS = {"isodd": lambda x: x % 2 == 1}


@pytest.fixture
def db():
    database = Database()
    database.create_relation("emp", ["name", "age", "salary", "dept"])
    database.create_relation("alerts", ["message"])
    return database


@pytest.fixture
def engine(db):
    return RuleEngine(db, functions=FNS)


class TestBasicFiring:
    def test_insert_triggers_matching_rule(self, db, engine):
        collect = CollectAction()
        engine.create_rule("r1", on="emp", condition="salary > 100", action=collect)
        db.insert("emp", {"name": "A", "salary": 200})
        db.insert("emp", {"name": "B", "salary": 50})
        assert [name for name, _ in collect.records] == ["r1"]
        assert collect.records[0][1]["name"] == "A"

    def test_update_triggers(self, db, engine):
        collect = CollectAction()
        engine.create_rule("r1", on="emp", condition="salary > 100", action=collect)
        tid = db.insert("emp", {"name": "A", "salary": 50})
        assert len(collect.records) == 0
        db.update("emp", tid, {"salary": 500})
        assert len(collect.records) == 1

    def test_delete_does_not_trigger_by_default(self, db, engine):
        collect = CollectAction()
        engine.create_rule("r1", on="emp", condition="salary > 100", action=collect)
        tid = db.insert("emp", {"name": "A", "salary": 200})
        collect.clear()
        db.delete("emp", tid)
        assert len(collect.records) == 0

    def test_on_events_delete(self, db, engine):
        collect = CollectAction()
        engine.create_rule(
            "bye", on="emp", condition="salary > 100", action=collect,
            on_events=("delete",),
        )
        tid = db.insert("emp", {"name": "A", "salary": 200})
        assert len(collect.records) == 0
        db.delete("emp", tid)
        assert len(collect.records) == 1

    def test_none_condition_matches_all(self, db, engine):
        collect = CollectAction()
        engine.create_rule("all", on="emp", condition=None, action=collect)
        db.insert("emp", {"name": "A"})
        assert len(collect.records) == 1

    def test_disjunctive_rule_fires_once(self, db, engine):
        collect = CollectAction()
        engine.create_rule(
            "either", on="emp", condition="age < 10 or salary < 10", action=collect
        )
        db.insert("emp", {"name": "A", "age": 5, "salary": 5})
        assert len(collect.records) == 1

    def test_disabled_rule(self, db, engine):
        collect = CollectAction()
        rule = engine.create_rule("r1", on="emp", condition="true", action=collect)
        rule.enabled = False
        db.insert("emp", {"name": "A"})
        assert len(collect.records) == 0

    def test_match_tuple_direct(self, db, engine):
        engine.create_rule("r1", on="emp", condition="age > 5", action=lambda ctx: None)
        matched = engine.match_tuple("emp", {"age": 9})
        assert [r.name for r in matched] == ["r1"]
        assert engine.match_tuple("emp", {"age": 1}) == []


class TestRuleManagement:
    def test_duplicate_name_rejected(self, db, engine):
        engine.create_rule("r1", on="emp", condition="true", action=lambda ctx: None)
        with pytest.raises(DuplicateRuleError):
            engine.create_rule("r1", on="emp", condition="true", action=lambda ctx: None)

    def test_unknown_relation_rejected(self, db, engine):
        with pytest.raises(UnknownRelationError):
            engine.create_rule("r1", on="ghost", condition="true", action=lambda ctx: None)

    def test_unsatisfiable_condition_rejected(self, db, engine):
        with pytest.raises(RuleError):
            engine.create_rule(
                "dead", on="emp", condition="age > 9 and age < 3", action=lambda ctx: None
            )

    def test_non_callable_action_rejected(self, db, engine):
        with pytest.raises(RuleError):
            engine.create_rule("r1", on="emp", condition="true", action="boom")

    def test_bad_event_kind_rejected(self, db, engine):
        with pytest.raises(RuleError):
            engine.create_rule(
                "r1", on="emp", condition="true", action=lambda ctx: None,
                on_events=("explode",),
            )
        with pytest.raises(RuleError):
            engine.create_rule(
                "r2", on="emp", condition="true", action=lambda ctx: None,
                on_events=(),
            )

    def test_drop_rule(self, db, engine):
        collect = CollectAction()
        engine.create_rule("r1", on="emp", condition="true", action=collect)
        engine.drop_rule("r1")
        db.insert("emp", {"name": "A"})
        assert len(collect.records) == 0
        with pytest.raises(UnknownRuleError):
            engine.drop_rule("r1")
        with pytest.raises(UnknownRuleError):
            engine.rule("r1")

    def test_rules_listing_and_fire_count(self, db, engine):
        collect = CollectAction()
        rule = engine.create_rule("r1", on="emp", condition="true", action=collect)
        engine.create_rule("r2", on="emp", condition="age > 100", action=collect)
        db.insert("emp", {"name": "A", "age": 1})
        assert len(engine) == 2
        assert [r.name for r in engine.rules()] == ["r1", "r2"]
        assert rule.fire_count == 1
        assert engine.rule("r2").fire_count == 0

    def test_close_detaches(self, db, engine):
        collect = CollectAction()
        engine.create_rule("r1", on="emp", condition="true", action=collect)
        engine.close()
        db.insert("emp", {"name": "A"})
        assert len(collect.records) == 0

    def test_unknown_matcher_strategy(self, db):
        with pytest.raises(RuleError):
            RuleEngine(db, matcher="bogus")

    def test_unknown_mode(self, db):
        with pytest.raises(RuleError):
            RuleEngine(db, mode="sometimes")


class TestConflictResolution:
    def test_priority_order(self, db, engine):
        order = []
        engine.create_rule(
            "low", on="emp", condition="true",
            action=lambda ctx: order.append("low"), priority=1,
        )
        engine.create_rule(
            "high", on="emp", condition="true",
            action=lambda ctx: order.append("high"), priority=10,
        )
        db.insert("emp", {"name": "A"})
        assert order == ["high", "low"]

    def test_recency_depth_first(self, db, engine):
        """Rules triggered by an action fire before remaining agenda."""
        order = []

        def spawn_alert(ctx):
            order.append("spawn")
            ctx.db.insert("alerts", {"message": "hi"})

        engine.create_rule("spawner", on="emp", condition="true", action=spawn_alert,
                           priority=5)
        engine.create_rule("late", on="emp", condition="true",
                           action=lambda ctx: order.append("late"), priority=0)
        engine.create_rule("on_alert", on="alerts", condition="true",
                           action=lambda ctx: order.append("alert"), priority=0)
        db.insert("emp", {"name": "A"})
        assert order == ["spawn", "alert", "late"]


class TestCascades:
    def test_fixpoint_update_cascade(self, db, engine):
        db.create_relation("counters", ["n"])
        engine.create_rule(
            "inc", on="counters", condition="n < 5",
            action=UpdateAction(lambda ctx: {"n": ctx.tuple["n"] + 1}),
        )
        tid = db.insert("counters", {"n": 0})
        assert db.relation("counters").get(tid)["n"] == 5

    def test_cycle_guard(self, db):
        engine = RuleEngine(db, max_firings=25)
        db.create_relation("loop", ["v"])
        engine.create_rule(
            "runaway", on="loop", condition="v >= 0",
            action=UpdateAction(lambda ctx: {"v": ctx.tuple["v"] + 1}),
        )
        with pytest.raises(RuleCycleError):
            db.insert("loop", {"v": 0})

    def test_insert_chain(self, db, engine):
        engine.create_rule(
            "audit", on="emp", condition="salary >= 1000",
            action=InsertAction("alerts", lambda ctx: {"message": ctx.tuple["name"]}),
        )
        collect = CollectAction()
        engine.create_rule("on_alert", on="alerts", condition="true", action=collect)
        db.insert("emp", {"name": "A", "salary": 5000})
        assert db.count("alerts") == 1
        assert len(collect.records) == 1


class TestDeclarativeActions:
    def test_update_action_noop_when_unchanged(self, db, engine):
        fired = []
        engine.create_rule(
            "clamp", on="emp", condition="salary > 100",
            action=chain(
                lambda ctx: fired.append(ctx.tuple["salary"]),
                UpdateAction({"salary": 100}),
            ),
        )
        db.insert("emp", {"name": "A", "salary": 500})
        # fired once for 500; the update to 100 no longer matches
        assert fired == [500]

    def test_delete_action(self, db, engine):
        engine.create_rule(
            "purge", on="emp", condition="age < 0", action=DeleteAction()
        )
        db.insert("emp", {"name": "A", "age": -1})
        assert db.count("emp") == 0

    def test_abort_action_vetoes(self, db, engine):
        engine.create_rule(
            "no_neg", on="emp", condition="salary < 0",
            action=AbortAction("negative salary"),
        )
        with pytest.raises(AbortMutation, match="negative salary"):
            db.insert("emp", {"name": "A", "salary": -1})
        assert db.count("emp") == 0

    def test_abort_requires_immediate_mode(self, db):
        engine = RuleEngine(db, mode="deferred")
        engine.create_rule(
            "no_neg", on="emp", condition="salary < 0", action=AbortAction()
        )
        db.insert("emp", {"name": "A", "salary": -1})
        with pytest.raises(RuleError):
            engine.run()

    def test_chain_validates(self):
        with pytest.raises(RuleError):
            chain(lambda ctx: None, "nope")

    def test_collect_action_len_repr(self, db, engine):
        collect = CollectAction()
        assert len(collect) == 0
        engine.create_rule("r", on="emp", condition="true", action=collect)
        db.insert("emp", {"name": "A"})
        assert len(collect) == 1
        assert "1 records" in repr(collect)


class TestDeferredMode:
    def test_run_fires_accumulated(self, db):
        engine = RuleEngine(db, mode="deferred")
        collect = CollectAction()
        engine.create_rule("r", on="emp", condition="true", action=collect)
        db.insert("emp", {"name": "A"})
        db.insert("emp", {"name": "B"})
        assert len(collect.records) == 0
        assert engine.run() == 2
        assert len(collect.records) == 2
        assert engine.run() == 0

    def test_deferred_cascade_counts(self, db):
        engine = RuleEngine(db, mode="deferred")
        engine.create_rule(
            "audit", on="emp", condition="true",
            action=InsertAction("alerts", {"message": "x"}),
        )
        collect = CollectAction()
        engine.create_rule("on_alert", on="alerts", condition="true", action=collect)
        db.insert("emp", {"name": "A"})
        fired = engine.run()
        assert fired == 2  # audit + on_alert
        assert len(collect.records) == 1


class TestContext:
    def test_context_fields(self, db, engine):
        seen = {}

        def grab(ctx):
            seen.update(
                relation=ctx.relation,
                tid=ctx.tid,
                old=ctx.old,
                rule=ctx.rule.name,
                kind=ctx.event.kind,
            )

        engine.create_rule("r", on="emp", condition="age > 1", action=grab)
        tid = db.insert("emp", {"name": "A", "age": 5})
        assert seen["relation"] == "emp"
        assert seen["tid"] == tid
        assert seen["old"] is None
        assert seen["rule"] == "r"
        assert seen["kind"] == "insert"
        db.update("emp", tid, {"age": 9})
        assert seen["kind"] == "update"
        assert seen["old"]["age"] == 5
