"""Supervision tests for the multiprocess matching tier.

The tier's one promise: whatever the workers do — crash mid-batch,
hang past the deadline, return torn frames, lose their shared-memory
segment, exhaust their restart budget — ``match_batch`` answers with
exactly the rows the in-process path produces, and no process or
shared-memory segment outlives ``close()``.

Every differential here compares against the snapshot's canonical row
order (:meth:`EpochSnapshot.canonical_rank`): per-row *content* is the
semantic contract, and canonical order is the process tier's documented
ordering, identical in remote, retried, and degraded modes alike.

The seed sweep defaults to 0..1; CI widens it via the
``PARALLEL_SEEDS`` environment variable (comma-separated integers).
"""

import os
import random
import subprocess
import sys
import textwrap

import pytest

from repro.concurrency import ConcurrentPredicateIndex, RelationShard
from repro.core.flat_ibs_tree import FlatIBSTree
from repro.core.ibs_tree import IBSTree
from repro.core.intervals import Interval
from repro.core.predicate_index import PredicateIndex
from repro.errors import FrameError
from repro.parallel import (
    MAGIC,
    ProcessMatchPool,
    decode_frame,
    encode_frame,
    shared_memory_available,
)
from repro.parallel.shm import SegmentRegistry, attach_bytes, create_segment
from repro.predicates.clauses import IntervalClause
from repro.predicates.predicate import Predicate
from repro.testing.faults import FaultInjector, injected

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="multiprocessing.shared_memory unavailable"
)

SEEDS = [int(s) for s in os.environ.get("PARALLEL_SEEDS", "0,1").split(",")]

BACKENDS = [IBSTree, FlatIBSTree]
BACKEND_IDS = ["ibs", "flat"]

FAULT_SITES = [
    "worker.kill_before_reply",
    "worker.hang",
    "ipc.corrupt_frame",
    "shm.unlink_early",
]


def interval_pred(ident, low, high, attribute="x", relation="r"):
    return Predicate(
        relation,
        [IntervalClause(attribute, Interval.closed(low, high))],
        ident=ident,
    )


def build_shard(seed, backend=IBSTree, predicates=150, relation="r"):
    rng = random.Random(seed)
    shard = RelationShard(
        relation, lambda: PredicateIndex(tree_factory=backend, adaptive=False)
    )
    preds = []
    for i in range(predicates):
        low = rng.randint(0, 400)
        preds.append(interval_pred(f"p{i}", low, low + rng.randint(5, 60)))
    shard.add_many(preds)
    # a handful of overlay entries so the inline-overlay path is live
    for i in range(5):
        shard.add(interval_pred(f"o{i}", i * 17, i * 17 + 120))
    return shard


def workload(seed, size=240):
    rng = random.Random(seed * 7919 + 13)
    return [{"x": rng.randint(-20, 470)} for _ in range(size)]


def canonical(snapshot, tuples):
    return snapshot.canonical_rows(snapshot.match_batch(tuples))


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------


class TestFraming:
    def test_roundtrip(self):
        payload = {"op": "match", "tuples": [{"x": 1}], "nested": [1, "two", None]}
        assert decode_frame(encode_frame(payload)) == payload

    def test_bad_magic_rejected(self):
        data = bytearray(encode_frame({"op": "ping"}))
        data[0] ^= 0xFF
        with pytest.raises(FrameError, match="magic"):
            decode_frame(bytes(data))

    def test_corrupt_payload_rejected(self):
        data = bytearray(encode_frame({"op": "ping", "seq": 7}))
        data[len(data) // 2] ^= 0xFF
        with pytest.raises(FrameError):
            decode_frame(bytes(data))

    def test_truncated_frame_rejected(self):
        data = encode_frame({"op": "ping"})
        with pytest.raises(FrameError):
            decode_frame(data[: len(MAGIC) + 2])
        with pytest.raises(FrameError, match="length mismatch"):
            decode_frame(data[:-3])

    def test_absurd_length_rejected(self):
        import struct

        header = struct.pack("<4sII", MAGIC, 1 << 30, 0)
        with pytest.raises(FrameError, match="absurd"):
            decode_frame(header + b"x" * 16)


# ----------------------------------------------------------------------
# shared-memory registry
# ----------------------------------------------------------------------


class TestSegmentRegistry:
    def test_publish_attach_roundtrip(self):
        registry = SegmentRegistry()
        payload = os.urandom(4096)
        name, length = registry.publish("r", 1, payload)
        assert attach_bytes(name, length) == payload
        registry.close()
        with pytest.raises(FileNotFoundError):
            attach_bytes(name, length)

    def test_republish_returns_existing(self):
        registry = SegmentRegistry()
        name1, _ = registry.publish("r", 1, b"abc")
        name2, _ = registry.publish("r", 1, b"abc")
        assert name1 == name2
        assert len(registry) == 1
        registry.close()

    def test_generation_reclamation(self):
        registry = SegmentRegistry(keep_generations=2)
        names = [registry.publish("r", token, b"x" * 64)[0] for token in range(4)]
        assert len(registry) == 2
        live = registry.live_segments()
        assert names[3] in live and names[2] in live
        with pytest.raises(FileNotFoundError):
            attach_bytes(names[0], 64)
        registry.close()
        assert registry.live_segments() == []

    def test_close_idempotent(self):
        registry = SegmentRegistry()
        registry.publish("r", 1, b"abc")
        registry.close()
        registry.close()
        assert len(registry) == 0

    def test_create_segment_owned_by_caller(self):
        shm = create_segment(b"hello")
        try:
            assert bytes(shm.buf[:5]) == b"hello"
        finally:
            shm.close()
            shm.unlink()


# ----------------------------------------------------------------------
# differential: pool vs serial, across backends and seeds
# ----------------------------------------------------------------------


class TestDifferential:
    @pytest.mark.parametrize("backend", BACKENDS, ids=BACKEND_IDS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_pool_matches_serial(self, backend, seed):
        shard = build_shard(seed, backend)
        snap = shard.snapshot
        tuples = workload(seed)
        expected = canonical(snap, tuples)
        with ProcessMatchPool(workers=2, min_chunk=16, deadline=15.0) as pool:
            rows = pool.match_batch(snap, tuples)
            assert rows is not None
            assert rows == expected
            for got_row, want_row in zip(rows, expected):
                for got, want in zip(got_row, want_row):
                    assert got is want  # parent's own Predicate objects

    @pytest.mark.parametrize("seed", SEEDS)
    def test_pool_tracks_epoch_changes(self, seed):
        shard = build_shard(seed)
        tuples = workload(seed, size=120)
        with ProcessMatchPool(workers=1, min_chunk=16, deadline=15.0) as pool:
            for round_no in range(3):
                snap = shard.snapshot
                assert pool.match_batch(snap, tuples) == canonical(snap, tuples)
                shard.add(interval_pred(f"x{seed}-{round_no}", 40, 300))
                shard.remove(f"p{round_no}")

    def test_small_batches_decline(self):
        shard = build_shard(0)
        with ProcessMatchPool(workers=1, min_chunk=64) as pool:
            assert pool.match_batch(shard.snapshot, workload(0, size=10)) is None
            assert pool.match_batch(shard.snapshot, []) == []


# ----------------------------------------------------------------------
# fault drills: every site, identical results
# ----------------------------------------------------------------------


class TestFaultDrills:
    @pytest.mark.parametrize("site", FAULT_SITES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_drill_results_identical(self, site, seed):
        shard = build_shard(seed)
        snap = shard.snapshot
        tuples = workload(seed)
        with ProcessMatchPool(workers=2, min_chunk=16, deadline=2.0) as pool:
            expected = canonical(snap, tuples)
            with injected(FaultInjector().arm(site)) as injector:
                rows = pool.match_batch(snap, tuples)
            assert injector.fault_count == 1, "drill did not fire"
            assert rows is not None
            assert rows == expected

    def test_kill_mid_batch_restarts_worker(self):
        shard = build_shard(1)
        snap = shard.snapshot
        tuples = workload(1)
        with ProcessMatchPool(workers=2, min_chunk=16, deadline=10.0) as pool:
            expected = canonical(snap, tuples)
            with injected(FaultInjector().arm("worker.kill_before_reply")):
                assert pool.match_batch(snap, tuples) == expected
            stats = pool.stats()
            assert stats["kills"] == 1
            assert stats["restarts"] == 1
            assert not stats["degraded"]
            # the replacement worker serves the next batch
            assert pool.match_batch(snap, tuples) == expected

    def test_corrupt_frame_recovers_without_kill(self):
        shard = build_shard(2)
        snap = shard.snapshot
        tuples = workload(2)
        with ProcessMatchPool(workers=1, min_chunk=16, deadline=10.0) as pool:
            expected = canonical(snap, tuples)
            with injected(FaultInjector().arm("ipc.corrupt_frame")):
                assert pool.match_batch(snap, tuples) == expected
            stats = pool.stats()
            assert stats["kills"] == 0, "bad-frame reject must not cost a worker"

    def test_unlink_early_republishes(self):
        shard = build_shard(3)
        snap = shard.snapshot
        tuples = workload(3)
        with ProcessMatchPool(workers=1, min_chunk=16, deadline=10.0) as pool:
            expected = canonical(snap, tuples)
            with injected(FaultInjector().arm("shm.unlink_early")):
                assert pool.match_batch(snap, tuples) == expected
            # the republished segment is attachable again
            assert pool.match_batch(snap, tuples) == expected
            assert len(pool.registry.live_segments()) == 1


# ----------------------------------------------------------------------
# degradation: budget exhaustion, quarantine, facade fallback
# ----------------------------------------------------------------------


class TestDegradation:
    def test_budget_exhaustion_degrades_without_dropping(self):
        shard = build_shard(4)
        snap = shard.snapshot
        tuples = workload(4)
        pool = ProcessMatchPool(
            workers=1, min_chunk=16, deadline=2.0, max_restarts=1, backoff=0.01
        )
        try:
            expected = canonical(snap, tuples)
            injector = FaultInjector(
                rate=1.0, sites=["worker.kill_before_reply"], max_faults=None
            )
            with injected(injector):
                rows = pool.match_batch(snap, tuples)
            # every dispatch was killed, yet the batch was answered
            assert rows == expected
            stats = pool.stats()
            assert stats["degraded"]
            assert "restart budget" in stats["degraded_reason"]
            assert stats["quarantined"] >= 1
            failure = pool.supervisor.failures[0]
            assert failure.relation == "r"
            assert failure.kills >= 2
            assert "batch" in failure.describe()
            # degraded pool declines; nothing hangs, nothing raises
            assert pool.match_batch(snap, tuples) is None
        finally:
            pool.close()

    def test_forced_degrade_is_terminal(self):
        shard = build_shard(5)
        with ProcessMatchPool(workers=1, min_chunk=16) as pool:
            pool.degrade("bench: measuring degraded mode")
            assert pool.degraded
            assert pool.match_batch(shard.snapshot, workload(5)) is None
            assert pool.stats()["live"] == 0

    def test_facade_degraded_results_identical(self):
        preds = [interval_pred(f"p{i}", i * 3, i * 3 + 25) for i in range(120)]
        tuples = [{"x": v % 380} for v in range(0, 720, 2)]
        with ConcurrentPredicateIndex(
            workers=2, pool="process", min_chunk=16
        ) as idx:
            idx.add_many(preds)
            healthy = idx.match_batch("r", tuples)
            idx.degrade_process_tier("test: simulate budget exhaustion")
            degraded = idx.match_batch("r", tuples)
            assert degraded == healthy
        post_close = idx.match_batch("r", tuples)
        assert post_close == healthy


# ----------------------------------------------------------------------
# facade integration
# ----------------------------------------------------------------------


class TestFacade:
    def test_process_pool_results_match_thread_pool(self):
        preds = [interval_pred(f"p{i}", i * 2, i * 2 + 30) for i in range(150)]
        tuples = [{"x": v % 320} for v in range(0, 600, 2)]
        with ConcurrentPredicateIndex(workers=2, min_chunk=16) as threaded:
            threaded.add_many(preds)
            thread_rows = threaded.match_batch("r", tuples)
            reference = threaded.snapshot("r").canonical_rows(thread_rows)
        with ConcurrentPredicateIndex(
            workers=2, pool="process", min_chunk=16
        ) as process:
            process.add_many(preds)
            assert process.match_batch("r", tuples) == reference

    def test_workers_process_shorthand(self):
        idx = ConcurrentPredicateIndex(workers="process", min_chunk=16)
        try:
            assert idx._pool_kind == "process"
            assert idx._workers >= 1
        finally:
            idx.close()

    def test_unknown_pool_kind_rejected(self):
        from repro.errors import ConcurrencyError

        with pytest.raises(ConcurrencyError, match="unknown pool kind"):
            ConcurrentPredicateIndex(pool="fibers")

    def test_close_idempotent_and_stats(self):
        idx = ConcurrentPredicateIndex(workers=1, pool="process", min_chunk=16)
        assert idx.process_stats() is None  # lazy: no pool before first use
        idx.add(interval_pred("a", 0, 100))
        idx.match_batch("r", [{"x": 5}] * 40)
        stats = idx.process_stats()
        assert stats is not None and stats["workers"] == 1
        idx.close()
        idx.close()
        assert idx.process_stats()["closed"]

    def test_registry_capability_and_option(self):
        from repro.match.registry import DEFAULT_REGISTRY

        caps = DEFAULT_REGISTRY.describe_matcher("ibs-concurrent")["capabilities"]
        assert caps.get("process_parallel") is True
        matcher = DEFAULT_REGISTRY.create_matcher(
            "ibs-concurrent", workers=1, pool="process", min_chunk=16
        )
        try:
            assert matcher._pool_kind == "process"
        finally:
            matcher.close()


# ----------------------------------------------------------------------
# resource reclamation
# ----------------------------------------------------------------------


class TestReclamation:
    def test_segments_and_workers_reclaimed_after_close(self):
        shard = build_shard(6)
        pool = ProcessMatchPool(workers=2, min_chunk=16)
        pool.match_batch(shard.snapshot, workload(6))
        procs = [
            h.process for h in pool.supervisor._slots if h is not None
        ]
        assert pool.registry.live_segments()
        pool.close()
        assert pool.registry.live_segments() == []
        for proc in procs:
            assert not proc.is_alive()

    def test_segments_reclaimed_after_sigkill(self):
        shard = build_shard(7)
        snap = shard.snapshot
        pool = ProcessMatchPool(workers=1, min_chunk=16, deadline=5.0)
        try:
            with injected(FaultInjector().arm("worker.kill_before_reply")):
                pool.match_batch(snap, workload(7))
            assert pool.stats()["kills"] == 1
            segments = list(pool.registry.live_segments())
            assert len(segments) == 1  # SIGKILLed attacher leaked nothing
        finally:
            pool.close()
        assert pool.registry.live_segments() == []

    def test_no_resource_tracker_warnings(self):
        """End-to-end in a clean interpreter: crash workers, close, exit.

        Any resource_tracker complaint ("leaked shared_memory objects",
        KeyError on unregister, ...) lands on stderr after interpreter
        exit — assert the whole run is silent under ``-W error``.
        """
        script = textwrap.dedent(
            """
            import random
            from repro.concurrency import RelationShard
            from repro.core.predicate_index import PredicateIndex
            from repro.core.intervals import Interval
            from repro.parallel import ProcessMatchPool
            from repro.predicates.clauses import IntervalClause
            from repro.predicates.predicate import Predicate
            from repro.testing.faults import FaultInjector, injected

            shard = RelationShard("r", PredicateIndex)
            rng = random.Random(3)
            shard.add_many([
                Predicate(
                    "r",
                    [IntervalClause("x", Interval.closed(low, low + 30))],
                    ident=f"p{i}",
                )
                for i, low in ((i, rng.randint(0, 300)) for i in range(80))
            ])
            tuples = [{"x": rng.randint(0, 350)} for _ in range(120)]
            snap = shard.snapshot
            pool = ProcessMatchPool(workers=2, min_chunk=16, deadline=5.0)
            expected = snap.canonical_rows(snap.match_batch(tuples))
            assert pool.match_batch(snap, tuples) == expected
            with injected(FaultInjector().arm("worker.kill_before_reply")):
                assert pool.match_batch(snap, tuples) == expected
            pool.close()
            # a second pool abandoned WITHOUT close(): the finalizer
            # must reclaim its segments at interpreter exit
            leaky = ProcessMatchPool(workers=1, min_chunk=16, deadline=5.0)
            assert leaky.match_batch(snap, tuples) == expected
            print("OK")
            """
        )
        env = dict(os.environ, PYTHONPATH="src")
        result = subprocess.run(
            [sys.executable, "-W", "error", "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            env=env,
        )
        assert result.returncode == 0, result.stderr
        assert "OK" in result.stdout
        assert result.stderr.strip() == "", result.stderr
