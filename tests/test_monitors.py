"""Tests for live continuous-query monitors."""

import pytest

from repro import Database, RuleEngine
from repro.errors import DuplicateRuleError, UnknownRelationError


@pytest.fixture
def setup():
    db = Database()
    db.create_relation("reading", ["sensor", "value"])
    engine = RuleEngine(db)
    return db, engine


class TestMonitorLifecycle:
    def test_tracks_inserts(self, setup):
        db, engine = setup
        hot = engine.monitor("hot", on="reading", condition="value > 90")
        a = db.insert("reading", {"sensor": "s1", "value": 95})
        db.insert("reading", {"sensor": "s2", "value": 10})
        assert hot.tids == [a]
        assert len(hot) == 1
        assert a in hot
        assert hot.rows() == [{"sensor": "s1", "value": 95}]

    def test_seeded_from_existing_data(self, setup):
        db, engine = setup
        a = db.insert("reading", {"sensor": "s1", "value": 95})
        db.insert("reading", {"sensor": "s2", "value": 10})
        hot = engine.monitor("hot", on="reading", condition="value > 90")
        assert hot.tids == [a]

    def test_updates_move_membership(self, setup):
        db, engine = setup
        hot = engine.monitor("hot", on="reading", condition="value > 90")
        tid = db.insert("reading", {"sensor": "s1", "value": 10})
        assert len(hot) == 0
        db.update("reading", tid, {"value": 95})
        assert tid in hot
        db.update("reading", tid, {"value": 50})
        assert tid not in hot

    def test_delete_leaves_view(self, setup):
        db, engine = setup
        hot = engine.monitor("hot", on="reading", condition="value > 90")
        tid = db.insert("reading", {"sensor": "s1", "value": 95})
        db.delete("reading", tid)
        assert len(hot) == 0

    def test_none_condition_tracks_all(self, setup):
        db, engine = setup
        everything = engine.monitor("all", on="reading")
        db.insert("reading", {"sensor": "s1", "value": 1})
        db.insert("reading", {"sensor": "s2", "value": 2})
        assert len(everything) == 2

    def test_close_freezes(self, setup):
        db, engine = setup
        hot = engine.monitor("hot", on="reading", condition="value > 90")
        db.insert("reading", {"sensor": "s1", "value": 95})
        hot.close()
        db.insert("reading", {"sensor": "s2", "value": 99})
        assert len(hot) == 1
        assert not hot.active
        assert engine.monitors() == []
        hot.close()  # idempotent

    def test_duplicate_name_rejected(self, setup):
        db, engine = setup
        engine.monitor("hot", on="reading", condition="value > 90")
        with pytest.raises(DuplicateRuleError):
            engine.monitor("hot", on="reading", condition="value > 50")

    def test_unknown_relation_rejected(self, setup):
        _, engine = setup
        with pytest.raises(UnknownRelationError):
            engine.monitor("m", on="ghost")

    def test_repr(self, setup):
        db, engine = setup
        hot = engine.monitor("hot", on="reading", condition="value > 90")
        assert "live" in repr(hot)
        hot.close()
        assert "closed" in repr(hot)


class TestEdgeHooks:
    def test_enter_and_leave_callbacks(self, setup):
        db, engine = setup
        hot = engine.monitor("hot", on="reading", condition="value > 90")
        log = []
        hot.on_enter = lambda tid, tup: log.append(("enter", tup["value"]))
        hot.on_leave = lambda tid, tup: log.append(("leave", tup["value"]))
        tid = db.insert("reading", {"sensor": "s1", "value": 95})
        db.update("reading", tid, {"value": 99})   # stays in: no edge
        db.update("reading", tid, {"value": 10})   # leaves
        db.update("reading", tid, {"value": 92})   # re-enters
        db.delete("reading", tid)                  # leaves
        assert log == [
            ("enter", 95),
            ("leave", 99),
            ("enter", 92),
            ("leave", 92),
        ]

    def test_staying_inside_updates_snapshot(self, setup):
        db, engine = setup
        hot = engine.monitor("hot", on="reading", condition="value > 90")
        tid = db.insert("reading", {"sensor": "s1", "value": 95})
        db.update("reading", tid, {"value": 99})
        assert hot.rows()[0]["value"] == 99

    def test_monitor_alongside_rules(self, setup):
        db, engine = setup
        fired = []
        engine.create_rule(
            "alert", on="reading", condition="value > 90",
            action=lambda ctx: fired.append(ctx.tid),
        )
        hot = engine.monitor("hot", on="reading", condition="value > 90")
        tid = db.insert("reading", {"sensor": "s1", "value": 95})
        assert fired == [tid]
        assert hot.tids == [tid]
