"""Conformance suite for every registered interval-index backend.

Parametrized over the full :data:`~repro.match.registry.DEFAULT_REGISTRY`
tree-backend table, so the four IBS-tree variants and every baseline
structure are held to one contract — the
:class:`~repro.baselines.base.IntervalIndex` protocol the predicate
index builds on.  Capability flags (``supports_dynamic_insert``,
``supports_open_bounds``, …) gate the parts of the contract a backend
legitimately opts out of; everything else must agree exactly with a
brute-force oracle.
"""

import random

import pytest

from repro.core.intervals import Interval
from repro.errors import TreeError
from repro.match.registry import DEFAULT_REGISTRY

BACKENDS = DEFAULT_REGISTRY.tree_backends()

SEED = 1302
N_INTERVALS = 60
POINT_SPAN = 120


def caps(factory):
    return {
        flag: bool(getattr(factory, flag, True))
        for flag in (
            "supports_dynamic_insert",
            "supports_dynamic_delete",
            "supports_open_bounds",
            "supports_unbounded",
        )
    }


def closed_intervals(rng, n=N_INTERVALS):
    """Closed finite intervals — the portion every backend answers exactly."""
    items = []
    for ident in range(n):
        low = rng.randint(0, POINT_SPAN - 1)
        high = low + rng.randint(0, 15)
        items.append((Interval.closed(low, high), ident))
    return items


def build(factory, items):
    """Construct a backend over *items*, honouring its construction mode."""
    if caps(factory)["supports_dynamic_insert"]:
        index = factory()
        for interval, ident in items:
            index.insert(interval, ident)
        return index
    return factory(items)


def oracle(items, x):
    return {ident for interval, ident in items if interval.contains(x)}


def probe_points(items):
    points = set()
    for interval, _ in items:
        for value in (interval.low, interval.high):
            points.update((value - 1, value, value + 1))
    return sorted(points)


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param, DEFAULT_REGISTRY.tree_factory(request.param)


class TestStabContract:
    def test_stab_matches_oracle(self, backend):
        name, factory = backend
        items = closed_intervals(random.Random(SEED))
        index = build(factory, items)
        for x in probe_points(items):
            assert set(index.stab(x)) == oracle(items, x), (name, x)

    def test_len_counts_intervals(self, backend):
        _, factory = backend
        items = closed_intervals(random.Random(SEED), n=17)
        assert len(build(factory, items)) == 17

    def test_empty_index_stabs_empty(self, backend):
        _, factory = backend
        index = build(factory, [])
        assert set(index.stab(42)) == set()

    def test_stab_into_accumulates(self, backend):
        name, factory = backend
        items = closed_intervals(random.Random(SEED))
        index = build(factory, items)
        out = {"sentinel"}
        result = index.stab_into(items[0][0].low, out)
        assert result is out
        assert out == {"sentinel"} | oracle(items, items[0][0].low), name

    def test_stab_many_agrees_with_stab(self, backend):
        name, factory = backend
        items = closed_intervals(random.Random(SEED))
        index = build(factory, items)
        points = probe_points(items)[:40]
        table = index.stab_many(points)
        assert set(table) == set(points)
        for x in points:
            assert table[x] == set(index.stab(x)), (name, x)

    def test_stab_many_maps_incomparable_to_none(self, backend):
        _, factory = backend
        items = closed_intervals(random.Random(SEED), n=5)
        index = build(factory, items)
        table = index.stab_many(["not-a-number"])
        assert table["not-a-number"] is None


class TestDynamicContract:
    def test_insert_then_stab(self, backend):
        name, factory = backend
        if not caps(factory)["supports_dynamic_insert"]:
            with pytest.raises(TreeError):
                factory([]).insert(Interval.closed(1, 2), "x")
            return
        index = factory()
        index.insert(Interval.closed(10, 20), "a")
        index.insert(Interval.closed(15, 30), "b")
        assert set(index.stab(17)) == {"a", "b"}, name

    def test_delete_removes_interval(self, backend):
        name, factory = backend
        flags = caps(factory)
        if not flags["supports_dynamic_delete"]:
            with pytest.raises(TreeError):
                build(factory, closed_intervals(random.Random(SEED), n=4)).delete(0)
            return
        items = closed_intervals(random.Random(SEED))
        index = build(factory, items)
        removed = {ident for _, ident in items[::3]}
        for ident in removed:
            index.delete(ident)
        survivors = [(iv, i) for iv, i in items if i not in removed]
        assert len(index) == len(survivors)
        for x in probe_points(items):
            assert set(index.stab(x)) == oracle(survivors, x), (name, x)

    def test_interleaved_insert_delete(self, backend):
        name, factory = backend
        flags = caps(factory)
        if not (flags["supports_dynamic_insert"] and flags["supports_dynamic_delete"]):
            pytest.skip(f"{name} is a static structure")
        rng = random.Random(SEED + 1)
        index = factory()
        live = {}
        for step in range(120):
            if live and rng.random() < 0.4:
                ident = rng.choice(sorted(live))
                index.delete(ident)
                del live[ident]
            else:
                low = rng.randint(0, POINT_SPAN)
                interval = Interval.closed(low, low + rng.randint(0, 10))
                index.insert(interval, step)
                live[step] = interval
        reference = [(iv, i) for i, iv in live.items()]
        for x in probe_points(reference) or [0]:
            assert set(index.stab(x)) == oracle(reference, x), (name, x)


class TestBoundsContract:
    def test_open_bounds_exact(self, backend):
        name, factory = backend
        if not caps(factory)["supports_open_bounds"]:
            pytest.skip(f"{name} treats open bounds as closed")
        if not caps(factory)["supports_dynamic_insert"]:
            index = factory([(Interval.open(10, 20), "o"),
                             (Interval.closed_open(10, 20), "co"),
                             (Interval.open_closed(10, 20), "oc")])
        else:
            index = factory()
            index.insert(Interval.open(10, 20), "o")
            index.insert(Interval.closed_open(10, 20), "co")
            index.insert(Interval.open_closed(10, 20), "oc")
        assert set(index.stab(10)) == {"co"}
        assert set(index.stab(15)) == {"o", "co", "oc"}
        assert set(index.stab(20)) == {"oc"}

    def test_unbounded_exact(self, backend):
        name, factory = backend
        if not caps(factory)["supports_unbounded"]:
            pytest.skip(f"{name} does not honour infinite endpoints")
        items = [(Interval.at_most(10), "low"), (Interval.at_least(50), "high")]
        index = build(factory, items)
        assert set(index.stab(-1_000_000)) == {"low"}
        assert set(index.stab(10)) == {"low"}
        assert set(index.stab(30)) == set()
        assert set(index.stab(1_000_000)) == {"high"}


class TestBulkLoadContract:
    def test_bulk_load_agrees_with_incremental(self, backend):
        name, factory = backend
        loader = getattr(factory, "bulk_load", None)
        if loader is None:
            pytest.skip(f"{name} has no bulk_load")
        items = closed_intervals(random.Random(SEED + 2))
        bulk = factory()
        bulk.bulk_load(items)
        incremental = build(factory, items)
        assert len(bulk) == len(incremental)
        for x in probe_points(items):
            assert set(bulk.stab(x)) == set(incremental.stab(x)), (name, x)


class TestHealthContract:
    def test_invariants_hold_after_build(self, backend):
        name, factory = backend
        items = closed_intervals(random.Random(SEED + 3))
        index = build(factory, items)
        auditor = getattr(index, "audit", None)
        if auditor is not None:
            assert list(auditor()) == [], name
        validator = getattr(index, "validate", None)
        if validator is not None:
            validator()

    def test_invariants_hold_after_deletes(self, backend):
        name, factory = backend
        if not caps(factory)["supports_dynamic_delete"]:
            pytest.skip(f"{name} is static")
        items = closed_intervals(random.Random(SEED + 4))
        index = build(factory, items)
        for _, ident in items[::2]:
            index.delete(ident)
        auditor = getattr(index, "audit", None)
        if auditor is not None:
            assert list(auditor()) == [], name
        validator = getattr(index, "validate", None)
        if validator is not None:
            validator()


class TestFreezeContract:
    def test_freeze_preserves_answers_and_blocks_writes(self, backend):
        name, factory = backend
        if getattr(factory, "freeze", None) is None:
            pytest.skip(f"{name} has no freeze")
        items = closed_intervals(random.Random(SEED + 5))
        index = build(factory, items)
        expected = {x: set(index.stab(x)) for x in probe_points(items)}
        index.freeze()
        for x, answer in expected.items():
            assert set(index.stab(x)) == answer, (name, x)
        with pytest.raises(TreeError):
            index.insert(Interval.closed(0, 1), "late")


class TestRegistryIntrospection:
    def test_every_backend_describes(self):
        for name in BACKENDS:
            info = DEFAULT_REGISTRY.describe_backend(name)
            assert info["name"] == name
            assert isinstance(info["description"], str)
            for flag in (
                "supports_dynamic_insert",
                "supports_dynamic_delete",
                "supports_open_bounds",
                "supports_unbounded",
            ):
                assert isinstance(info[flag], bool)

    def test_disk_backed_is_opt_in(self):
        # `disk_backed` defaults to False: a backend that doesn't
        # declare it must not read as disk-capable
        assert DEFAULT_REGISTRY.describe_backend("disk")["disk_backed"] is True
        for name in BACKENDS:
            if name != "disk":
                assert DEFAULT_REGISTRY.describe_backend(name)["disk_backed"] is False, name

    def test_unknown_backend_raises(self):
        from repro.errors import RegistryError

        with pytest.raises(RegistryError):
            DEFAULT_REGISTRY.tree_factory("no-such-backend")

    def test_duplicate_registration_rejected_without_replace(self):
        from repro.errors import RegistryError

        with pytest.raises(RegistryError):
            DEFAULT_REGISTRY.register_backend("ibs", lambda: None)
        # replace=True is the escape hatch; re-register the original
        original = DEFAULT_REGISTRY.tree_factory("ibs")
        DEFAULT_REGISTRY.register_backend(
            "ibs",
            original,
            "unbalanced IBS-tree (Section 4.2, the paper's measurements)",
            replace=True,
        )
        assert DEFAULT_REGISTRY.tree_factory("ibs") is original
