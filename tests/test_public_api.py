"""Public API surface tests: everything advertised resolves and works."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.core.intervals",
            "repro.core.ibs_tree",
            "repro.core.avl_ibs_tree",
            "repro.core.rotations",
            "repro.core.predicate_index",
            "repro.core.selectivity",
            "repro.match",
            "repro.match.catalog",
            "repro.match.columnar",
            "repro.match.observer",
            "repro.match.pipeline",
            "repro.match.registry",
            "repro.match.store",
            "repro.match.health",
            "repro.predicates",
            "repro.lang",
            "repro.db",
            "repro.rules",
            "repro.baselines",
            "repro.workloads",
            "repro.bench",
            "repro.errors",
        ],
    )
    def test_submodule_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_error_hierarchy(self):
        from repro.errors import (
            ClauseError,
            DatabaseError,
            IntervalError,
            ParseError,
            PredicateError,
            RegistryError,
            ReproError,
            RuleError,
            SchemaError,
            TreeError,
            TupleError,
        )

        for exc in (
            IntervalError,
            TreeError,
            PredicateError,
            ClauseError,
            ParseError,
            DatabaseError,
            SchemaError,
            TupleError,
            RuleError,
            RegistryError,
        ):
            assert issubclass(exc, ReproError), exc

    def test_docstrings_on_public_classes(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, type):
                assert obj.__doc__, f"{name} is missing a docstring"

    def test_readme_quickstart_works(self):
        """The README's quickstart snippet, verbatim."""
        from repro import IBSTree, Interval

        tree = IBSTree()
        tree.insert(Interval.closed(9, 19), "A")
        tree.insert(Interval.closed_open(2, 7), "B")
        tree.insert(Interval.at_most(17), "G")
        assert tree.stab(12) == {"A", "G"}
        tree.delete("B")

    def test_readme_rule_snippet_works(self):
        from repro import Database, RuleEngine

        db = Database()
        db.create_relation("emp", ["name", "age", "salary", "dept"])
        hits = []
        engine = RuleEngine(db)
        engine.create_rule(
            "well_paid",
            on="emp",
            condition="20000 <= salary <= 30000",
            action=lambda ctx: hits.append(ctx.tuple["name"]),
        )
        db.insert(
            "emp", {"name": "Lee", "age": 41, "salary": 25000, "dept": "Shoe"}
        )
        assert hits == ["Lee"]
