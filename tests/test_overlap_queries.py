"""Tests for interval-overlap queries (the overlapping() extension)."""

import random

import pytest
from hypothesis import given, strategies as st

from repro import AVLIBSTree, IBSTree, Interval, RBIBSTree
from tests.conftest import intervals


TREES = [IBSTree, AVLIBSTree, RBIBSTree]


class TestOverlappingBasics:
    def make(self):
        tree = IBSTree()
        tree.insert(Interval.closed(1, 5), "a")
        tree.insert(Interval.closed(4, 9), "b")
        tree.insert(Interval.point(7), "p")
        tree.insert(Interval.at_most(0), "low")
        tree.insert(Interval.greater_than(100), "high")
        return tree

    def test_window_query(self):
        tree = self.make()
        assert tree.overlapping(Interval.closed(3, 8)) == {"a", "b", "p"}

    def test_point_window(self):
        tree = self.make()
        assert tree.overlapping(Interval.point(7)) == {"b", "p"}
        assert tree.overlapping(Interval.point(6)) == {"b"}

    def test_unbounded_window(self):
        tree = self.make()
        assert tree.overlapping(Interval.unbounded()) == {"a", "b", "p", "low", "high"}
        assert tree.overlapping(Interval.at_most(2)) == {"a", "low"}
        assert tree.overlapping(Interval.at_least(10)) == {"high"}

    def test_open_bound_adjacency(self):
        tree = IBSTree()
        tree.insert(Interval.closed_open(1, 5), "half")
        assert tree.overlapping(Interval.closed(5, 9)) == set()
        assert tree.overlapping(Interval.closed(4, 9)) == {"half"}
        assert tree.overlapping(Interval.open(5, 9)) == set()

    def test_contained_and_containing(self):
        tree = IBSTree()
        tree.insert(Interval.closed(0, 100), "big")
        tree.insert(Interval.closed(40, 60), "mid")
        # window strictly inside "big", disjoint from everything else
        assert tree.overlapping(Interval.closed(10, 20)) == {"big"}
        # window containing everything
        assert tree.overlapping(Interval.closed(-5, 200)) == {"big", "mid"}

    def test_fully_unbounded_stored_interval(self):
        tree = IBSTree()
        tree.insert(Interval.unbounded(), "all")
        assert tree.overlapping(Interval.closed(3, 5)) == {"all"}
        assert tree.overlapping(Interval.unbounded()) == {"all"}
        assert tree.overlapping(Interval.less_than(0)) == {"all"}

    def test_empty_tree(self):
        assert IBSTree().overlapping(Interval.closed(1, 2)) == set()

    def test_alias(self):
        tree = self.make()
        query = Interval.closed(3, 8)
        assert tree.stab_interval(query) == tree.overlapping(query)


class TestOverlappingProperties:
    @given(
        stored=st.lists(intervals(), min_size=0, max_size=20),
        query=intervals(),
    )
    def test_matches_brute_force(self, stored, query):
        for cls in TREES:
            tree = cls()
            for k, iv in enumerate(stored):
                tree.insert(iv, k)
            expected = {k for k, iv in enumerate(stored) if iv.overlaps(query)}
            assert tree.overlapping(query) == expected

    @given(
        stored=st.lists(intervals(), min_size=1, max_size=15),
        query=intervals(),
        drop=st.integers(min_value=0, max_value=10**6),
    )
    def test_after_deletions(self, stored, query, drop):
        tree = IBSTree()
        for k, iv in enumerate(stored):
            tree.insert(iv, k)
        victim = drop % len(stored)
        tree.delete(victim)
        expected = {
            k for k, iv in enumerate(stored) if k != victim and iv.overlaps(query)
        }
        assert tree.overlapping(query) == expected

    def test_randomized_large(self):
        rng = random.Random(8)
        tree = AVLIBSTree()
        live = {}
        for k in range(300):
            a, b = rng.randint(0, 500), rng.randint(0, 500)
            lo, hi = min(a, b), max(a, b)
            iv = Interval(lo, hi, rng.random() < 0.5 or lo == hi,
                          rng.random() < 0.5 or lo == hi)
            tree.insert(iv, k)
            live[k] = iv
        for _ in range(100):
            a, b = rng.randint(0, 500), rng.randint(0, 500)
            lo, hi = min(a, b), max(a, b)
            query = Interval.closed(lo, hi)
            expected = {k for k, iv in live.items() if iv.overlaps(query)}
            assert tree.overlapping(query) == expected
