"""Tests for relation statistics and selectivity estimation."""

import pytest

from repro import Database, EqualityClause, FunctionClause, Interval, IntervalClause
from repro.core.selectivity import (
    DefaultEstimator,
    StatisticsEstimator,
    choose_index_clause,
)
from repro.db.statistics import AttributeStatistics, RelationStatistics
from repro.predicates import Predicate


def is_odd(x):
    return x % 2 == 1


class TestAttributeStatistics:
    def test_exact_equality_selectivity(self):
        stats = AttributeStatistics()
        for v in [1, 1, 2, 3]:
            stats.observe_insert(v)
        assert stats.equality_selectivity(1) == pytest.approx(0.5)
        assert stats.equality_selectivity(9) == 0.0

    def test_interval_selectivity_exact(self):
        stats = AttributeStatistics()
        for v in range(10):
            stats.observe_insert(v)
        sel = stats.interval_selectivity(Interval.closed(0, 4))
        assert sel == pytest.approx(0.5)

    def test_null_handling(self):
        stats = AttributeStatistics()
        stats.observe_insert(None)
        stats.observe_insert(5)
        assert stats.count == 2
        assert stats.null_count == 1
        assert stats.non_null_count == 1
        stats.observe_delete(None)
        assert stats.null_count == 0

    def test_overflow_degrades_gracefully(self):
        stats = AttributeStatistics(max_tracked_values=10)
        for v in range(100):
            stats.observe_insert(v)
        assert stats.value_counts is None
        assert stats.distinct >= 10
        # falls back to uniform interpolation
        sel = stats.interval_selectivity(Interval.closed(0, 49))
        assert 0.3 < sel < 0.7
        assert 0 < stats.equality_selectivity(5) < 1

    def test_empty_uses_defaults(self):
        stats = AttributeStatistics()
        assert stats.equality_selectivity(1) > 0
        assert stats.interval_selectivity(Interval.closed(1, 2)) > 0

    def test_uniform_fraction_non_numeric(self):
        stats = AttributeStatistics(max_tracked_values=2)
        for v in ["a", "b", "c", "d"]:
            stats.observe_insert(v)
        sel = stats.interval_selectivity(Interval.closed("a", "b"))
        assert 0 < sel <= 1  # falls back to shape default


class TestRelationStatistics:
    def test_clause_selectivities(self):
        stats = RelationStatistics()
        for v in range(100):
            stats.observe_insert({"x": v, "dept": "Shoe" if v < 20 else "Toy"})
        assert stats.clause_selectivity(EqualityClause("dept", "Shoe")) == pytest.approx(0.2)
        assert stats.clause_selectivity(
            IntervalClause("x", Interval.closed(0, 24))
        ) == pytest.approx(0.25)
        assert stats.clause_selectivity(FunctionClause("x", is_odd)) == 1.0

    def test_update_path(self):
        stats = RelationStatistics()
        stats.observe_insert({"x": 1})
        stats.observe_update({"x": 1}, {"x": 2})
        assert stats.clause_selectivity(EqualityClause("x", 2)) == 1.0
        assert stats.clause_selectivity(EqualityClause("x", 1)) == 0.0


class TestDefaultEstimator:
    def test_shape_ordering(self):
        est = DefaultEstimator()
        eq = est.estimate("r", EqualityClause("x", 5))
        bounded = est.estimate("r", IntervalClause("x", Interval.closed(1, 9)))
        half = est.estimate("r", IntervalClause("x", Interval.at_least(1)))
        fn = est.estimate("r", FunctionClause("x", is_odd))
        unbounded = est.estimate("r", IntervalClause("x", Interval.unbounded()))
        assert eq < bounded < half < fn
        assert unbounded == 1.0


class TestStatisticsEstimator:
    def test_uses_data_when_available(self):
        db = Database()
        db.create_relation("r", ["x"])
        for v in range(10):
            db.insert("r", {"x": v})
        est = StatisticsEstimator(db)
        sel = est.estimate("r", EqualityClause("x", 3))
        assert sel == pytest.approx(0.1)

    def test_falls_back_without_data(self):
        db = Database()
        db.create_relation("r", ["x"])
        est = StatisticsEstimator(db)
        assert est.estimate("r", EqualityClause("x", 3)) == DefaultEstimator.EQUALITY
        assert est.estimate("missing", EqualityClause("x", 3)) == DefaultEstimator.EQUALITY


class TestChooseIndexClause:
    def test_most_selective_wins(self):
        pred = Predicate(
            "r",
            [
                IntervalClause("wide", Interval.at_least(1)),
                EqualityClause("narrow", 5),
            ],
        )
        chosen = choose_index_clause(pred)
        assert chosen.attribute == "narrow"

    def test_function_only_returns_none(self):
        pred = Predicate("r", [FunctionClause("x", is_odd)])
        assert choose_index_clause(pred) is None

    def test_tie_break_first_clause(self):
        pred = Predicate("r", [EqualityClause("a", 1), EqualityClause("b", 2)])
        assert choose_index_clause(pred).attribute == "a"

    def test_data_driven_choice_differs_from_default(self):
        db = Database()
        db.create_relation("r", ["common", "rare"])
        # "common = 1" matches everything; "rare >= 50" matches half
        for v in range(100):
            db.insert("r", {"common": 1, "rare": v})
        pred = Predicate(
            "r",
            [
                EqualityClause("common", 1),
                IntervalClause("rare", Interval.at_least(50)),
            ],
        )
        # default constants would pick the equality...
        assert choose_index_clause(pred).attribute == "common"
        # ...but the statistics know better
        est = StatisticsEstimator(db)
        assert choose_index_clause(pred, est).attribute == "rare"
