"""FIG7 — average IBS-tree insertion time vs N and point fraction a.

Paper Figure 7: insertion cost grows logarithmically with N, with only
a small spread between a = 0 (all ranges), a = 0.5, and a = 1 (all
points).  The paper measures the unbalanced tree under random
insertion order; so do we.

Regenerate the full series table with:  python benchmarks/run_all.py
"""

import pytest

from repro import IBSTree


@pytest.mark.parametrize("n", [100, 500, 1000])
@pytest.mark.parametrize("a", [0.0, 0.5, 1.0])
def test_fig7_insertion(benchmark, interval_workload, n, a):
    workload = interval_workload(point_fraction=a)
    intervals = workload.intervals(n)

    def build():
        tree = IBSTree()
        for k, interval in enumerate(intervals):
            tree.insert(interval, k)
        return tree

    tree = benchmark(build)
    assert len(tree) == n
    benchmark.extra_info["per_insert_us"] = (
        benchmark.stats["mean"] / n * 1e6 if benchmark.stats else None
    )


def test_fig7_shape_logarithmic(interval_workload):
    """Per-insert cost must grow far slower than linearly in N."""
    import time

    def per_insert(n: int) -> float:
        workload = interval_workload(point_fraction=0.5)
        intervals = workload.intervals(n)
        best = float("inf")
        for _ in range(3):
            tree = IBSTree()
            start = time.perf_counter()
            for k, interval in enumerate(intervals):
                tree.insert(interval, k)
            best = min(best, (time.perf_counter() - start) / n)
        return best

    small, large = per_insert(100), per_insert(1600)
    # 16x the predicates must cost far less than 16x per insert
    # (logarithmic: expect ~1.5-2.5x; allow generous slack for noise)
    assert large < small * 6
