"""AUTOSELECT — the self-tuning loop vs every fixed backend choice.

The auto-selector (``repro.match.autoselect``) closes the loop the
paper leaves open: Section 6 suggests balanced trees "would be useful
for some workloads" without saying *which* — this sweep measures it.
Each scenario family from ``repro.workloads.scenarios`` runs against
five fixed backends and against ``PredicateIndex(auto_backend=True)``,
which observes a warm-up pass, prices the candidates with the
calibrated cost model, migrates, and is then timed on whatever it
chose.

Acceptance criteria (asserted at full scale):

* the auto row reaches at least 85 % of the best fixed backend's
  throughput on every scenario (``test_auto_close_to_best``);
* the auto row beats the worst fixed row by at least 1.3x on the
  scenarios with a meaningful spread (``test_auto_beats_worst``) — on
  the adversarial family the committed numbers show >20x, because the
  live micro-probe detects the degenerated unbalanced tree and
  rebuilds it;
* every configuration's match answers agree before timing, and the
  auto row's answers are re-checked after its migration pass (enforced
  inside ``run_autoselect`` itself — a disagreement raises).

Running this module rewrites ``BENCH_autoselect.json`` at the repo
root.  Auto's per-scenario picks land in the file's ``tuning`` section,
not in ``rows`` — picks depend on the host's measured constants and
must not participate in ``compare_bench`` row matching.

Set ``AUTOSELECT_SCALE`` (e.g. ``0.25``) for a quick smoke run: the
sweep shrinks and the acceptance bars are skipped (a smoke is not a
measurement), and the JSON is left untouched.
"""

import json
import os
import platform
from pathlib import Path

import pytest

from repro.bench.runner import AUTOSELECT_FIXED_BACKENDS, run_autoselect
from repro.workloads.scenarios import scenario_names

SEED = 33
SCALE = float(os.environ.get("AUTOSELECT_SCALE", "1.0"))
FULL_SCALE = SCALE == 1.0
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_autoselect.json"


@pytest.fixture(scope="module")
def sweep():
    report = {}
    rows = run_autoselect(seed=SEED, scale=SCALE, report_out=report)
    if FULL_SCALE:
        RESULT_PATH.write_text(
            json.dumps(
                {
                    "experiment": "autoselect_sweep",
                    "scenario": {
                        "seed": SEED,
                        "scale": SCALE,
                        "families": scenario_names(),
                    },
                    "baseline": "best/worst fixed backend per scenario",
                    "python": platform.python_version(),
                    "rows": [
                        {
                            key: round(value, 3)
                            if isinstance(value, float)
                            else value
                            for key, value in row.items()
                        }
                        for row in rows
                    ],
                    "tuning": report,
                },
                indent=2,
            )
            + "\n"
        )
    return rows, report


def test_matrix_complete(sweep):
    rows, _ = sweep
    seen = {(row["scenario"], row["backend"]) for row in rows}
    expected = {
        (family, backend)
        for family in scenario_names()
        for backend in AUTOSELECT_FIXED_BACKENDS + ("auto",)
    }
    assert seen == expected


def test_auto_close_to_best(sweep):
    """Auto reaches >= 85 % of the best fixed backend, every scenario."""
    if not FULL_SCALE:
        pytest.skip("acceptance bars apply at full scale only")
    rows, _ = sweep
    for row in rows:
        if row["backend"] != "auto":
            continue
        assert row["rel_best"] >= 0.85, (
            f"{row['scenario']}: auto at {row['rel_best']:.2f} of best fixed"
        )


def test_auto_beats_worst(sweep):
    """Auto beats the worst fixed backend by >= 1.3x on every scenario."""
    if not FULL_SCALE:
        pytest.skip("acceptance bars apply at full scale only")
    rows, _ = sweep
    for row in rows:
        if row["backend"] != "auto":
            continue
        assert row["rel_worst"] >= 1.3, (
            f"{row['scenario']}: auto only {row['rel_worst']:.2f}x of worst"
        )


def test_adversarial_migration_recorded(sweep):
    """The adversarial family must trigger a migration (or rebuild)."""
    _, report = sweep
    picks = report["picks"]["adversarial-unbalanced"]
    migrated = [
        decision
        for decision in picks["decisions"]
        if decision["migrate"] and decision["migrated"]
    ]
    assert migrated, "adversarial scenario produced no migration"
