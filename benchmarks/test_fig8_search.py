"""FIG8 — average IBS-tree search time vs N and point fraction a.

Paper Figure 8: stabbing-query cost grows logarithmically in the number
of indexed predicates, and the difference between the a curves is
small, "particularly for search time".
"""

import pytest

from repro import IBSTree


def build_tree(workload, n):
    tree = IBSTree()
    for k, interval in enumerate(workload.intervals(n)):
        tree.insert(interval, k)
    return tree


@pytest.mark.parametrize("n", [100, 500, 1000])
@pytest.mark.parametrize("a", [0.0, 0.5, 1.0])
def test_fig8_search(benchmark, interval_workload, n, a):
    workload = interval_workload(point_fraction=a)
    tree = build_tree(workload, n)
    points = workload.query_points(256)

    def search_batch():
        total = 0
        for x in points:
            total += len(tree.stab(x))
        return total

    benchmark(search_batch)


def test_fig8_shape_logarithmic(interval_workload):
    """Search cost grows ~log N, not linearly."""
    import time

    def per_query(n: int) -> float:
        workload = interval_workload(point_fraction=0.5)
        tree = build_tree(workload, n)
        points = workload.query_points(2000)
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for x in points:
                tree.stab(x)
            best = min(best, (time.perf_counter() - start) / len(points))
        return best

    small, large = per_query(100), per_query(1600)
    assert large < small * 8  # 16x data, far less than 16x time


def test_fig8_point_fraction_spread_small(interval_workload):
    """The a=0 and a=1 curves stay within a small factor (paper: 'the
    difference between the curves ... are small')."""
    import time

    times = {}
    for a in (0.0, 1.0):
        workload = interval_workload(point_fraction=a)
        tree = build_tree(workload, 800)
        points = workload.query_points(2000)
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for x in points:
                tree.stab(x)
            best = min(best, time.perf_counter() - start)
        times[a] = best
    ratio = max(times.values()) / min(times.values())
    assert ratio < 6
