"""ABL2 — balancing ablation: sorted insertion order.

The paper's measured trees rely on random insertion order for balance
(Section 5.2) and propose AVL rotations with marker rewrites for the
general case (Section 4.3).  This ablation inserts intervals in sorted
endpoint order — the adversarial case — and compares the unbalanced
tree against the AVL variant.
"""

import math

import pytest

from repro import AVLIBSTree, IBSTree

N = 400


def sorted_intervals(interval_workload):
    workload = interval_workload(point_fraction=0.0)
    ordered = sorted(workload.intervals(N), key=lambda iv: (iv.low, iv.high))
    return workload, ordered


@pytest.mark.parametrize("variant", ["unbalanced", "avl"])
def test_abl2_sorted_insert(benchmark, interval_workload, variant):
    _, ordered = sorted_intervals(interval_workload)
    factory = IBSTree if variant == "unbalanced" else AVLIBSTree

    def build():
        tree = factory()
        for k, interval in enumerate(ordered):
            tree.insert(interval, k)
        return tree

    tree = benchmark(build)
    benchmark.extra_info["height"] = tree.height


@pytest.mark.parametrize("variant", ["unbalanced", "avl"])
def test_abl2_search_after_sorted_insert(benchmark, interval_workload, variant):
    workload, ordered = sorted_intervals(interval_workload)
    factory = IBSTree if variant == "unbalanced" else AVLIBSTree
    tree = factory()
    for k, interval in enumerate(ordered):
        tree.insert(interval, k)
    points = workload.query_points(256)

    def search_batch():
        for x in points:
            tree.stab(x)

    benchmark(search_batch)


def test_abl2_avl_height_logarithmic(interval_workload):
    _, ordered = sorted_intervals(interval_workload)
    unbalanced, avl = IBSTree(), AVLIBSTree()
    for k, interval in enumerate(ordered):
        unbalanced.insert(interval, k)
        avl.insert(interval, k)
    assert avl.height <= 1.4405 * math.log2(avl.node_count + 2) + 1
    assert unbalanced.height > 3 * avl.height

    # both answer identically despite the height gap
    workload = interval_workload(point_fraction=0.5, seed=77)
    for x in workload.query_points(200):
        assert unbalanced.stab(x) == avl.stab(x)
