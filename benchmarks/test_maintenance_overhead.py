"""MAINT — the unified maintenance plane must be (nearly) free.

The maintenance plane (``repro.maintenance``, see ``docs/maintenance.md``)
puts one op-count tick on every hot path — `match`, `match_batch`, and
the predicate writes.  That tick buys deterministic retuning,
auto-selection, compaction, checkpointing, and eviction, but it must
not buy them with matching throughput.  This module runs
``repro.bench.runner.run_maintenance`` and holds it to:

* **tick overhead** — the ``scheduler-idle`` row (policy installed,
  no task ever due: pure clock-and-due-scan cost) loses at most 5 %
  throughput against the ``scheduler-off`` row
  (``test_idle_overhead_within_bar``);
* **pause spreading** — the ``ckpt-background`` row (scheduler-driven
  checkpoints with ``budget_ops=1``) must not stall a single round
  longer than the ``ckpt-stop-world`` row's inline full checkpoint
  does (``test_background_checkpoint_spreads_pauses``);
* every configuration's match answers agree with the scheduler-free
  index before timing (enforced inside ``run_maintenance`` itself — a
  disagreement raises).

Running this module rewrites ``BENCH_maint.json`` at the repo root.

Set ``MAINT_BENCH_SCALE`` (e.g. ``0.1``) for a quick smoke run: the
workload shrinks, the acceptance bars are skipped (a smoke is not a
measurement), and the JSON is left untouched.
"""

import json
import os
import platform
from pathlib import Path

import pytest

from repro.bench.runner import run_maintenance

SEED = 53
SCALE = float(os.environ.get("MAINT_BENCH_SCALE", "1.0"))
FULL_SCALE = SCALE == 1.0
SCENARIO = {
    "predicates": max(50, int(5_000 * SCALE)),
    "distinct_values": max(32, int(1_000 * SCALE)),
    "batch_size": max(20, int(400 * SCALE)),
    "rounds": max(4, int(24 * SCALE)),
    "checkpoint_every": 6 if FULL_SCALE else 2,
}
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_maint.json"

MODES = (
    "scheduler-off",
    "scheduler-idle",
    "scheduler-active",
    "ckpt-stop-world",
    "ckpt-background",
)


@pytest.fixture(scope="module")
def bench():
    rows = run_maintenance(
        seed=SEED, repeats=3 if FULL_SCALE else 1, **SCENARIO
    )
    if FULL_SCALE:
        RESULT_PATH.write_text(
            json.dumps(
                {
                    "experiment": "maintenance_overhead",
                    "scenario": {"seed": SEED, **SCENARIO},
                    "baseline": "scheduler-off (no maintenance plane)",
                    "python": platform.python_version(),
                    "rows": [
                        {
                            key: round(value, 3)
                            if isinstance(value, float)
                            else value
                            for key, value in row.items()
                        }
                        for row in rows
                    ],
                },
                indent=2,
            )
            + "\n"
        )
    return rows


def by_mode(rows):
    return {row["mode"]: row for row in rows}


def test_every_mode_measured(bench):
    assert tuple(row["mode"] for row in bench) == MODES
    for row in bench:
        assert row["tuples_per_s"] > 0


def test_idle_overhead_within_bar(bench):
    """An idle scheduler costs <= 5 % of matching throughput."""
    if not FULL_SCALE:
        pytest.skip("acceptance bars apply at full scale only")
    idle = by_mode(bench)["scheduler-idle"]
    assert idle["overhead_pct"] <= 5.0, (
        f"idle maintenance plane costs {idle['overhead_pct']:.1f}% "
        f"(bar is 5%)"
    )


def test_background_checkpoint_spreads_pauses(bench):
    """Budgeted background checkpoints never stall longer than
    stop-the-world ones (that is their entire reason to exist)."""
    if not FULL_SCALE:
        pytest.skip("acceptance bars apply at full scale only")
    modes = by_mode(bench)
    stop = modes["ckpt-stop-world"]["max_pause_ms"]
    background = modes["ckpt-background"]["max_pause_ms"]
    assert background <= stop, (
        f"background checkpoint worst pause {background:.1f}ms exceeds "
        f"stop-the-world's {stop:.1f}ms"
    )
