"""REBUILD — O(N) bulk_load vs incremental insert construction.

A rebuild (``PredicateIndex.verify_and_rebuild``) or a recovery replay
hands a tree its whole interval population at once, so it can sort the
endpoints once, lay out a perfectly balanced tree by midpoint
recursion, and place every marker with integer index comparisons — no
per-insert descents with generic comparisons, rotations, or marker
migrations.  The bench builds each backend from the same 10,000
Figure-7-style intervals both ways, in the workload's random arrival
order and in ascending endpoint order (how a rebuild actually scans
the PREDICATES table; the degenerate case for the plain BST and the
rotation-heavy case for the balanced variants).

Acceptance criteria (checked below): at 10,000 intervals bulk_load is
at least 5x faster than incremental insertion on at least two
backends, the epoch-versioned stab cache sustains at least 1.5x
match throughput on a duplicate-heavy Zipf stream, and cold-starting
a disk-backed index from sealed segments is at least 5x faster than
replaying the same predicates from the journal.

Running this module rewrites ``BENCH_rebuild.json`` at the repo root
with the measured rows of all three experiments.
"""

import json
import platform
from pathlib import Path

import pytest

from repro.bench.runner import run_coldstart, run_rebuild, run_stab_cache

INTERVALS = 10_000
COLDSTART_PREDICATES = 5_000
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_rebuild.json"


def rounded(rows):
    return [
        {key: round(value, 3) if isinstance(value, float) else value
         for key, value in row.items()}
        for row in rows
    ]


def best_speedups(rows):
    best = {}
    for row in rows:
        best[row["backend"]] = max(best.get(row["backend"], 0.0), row["speedup"])
    return best


@pytest.fixture(scope="module")
def rebuild_rows():
    rebuild = run_rebuild(intervals=INTERVALS, repeats=4)
    if sum(s >= 5.0 for s in best_speedups(rebuild).values()) < 2:
        # one retry: wall-clock benches on shared CI boxes see 2x swings
        rebuild = run_rebuild(intervals=INTERVALS, repeats=4)
    stab_cache = run_stab_cache()
    coldstart = run_coldstart(predicates=COLDSTART_PREDICATES)
    segments_row = next(r for r in coldstart if r["path"] == "segments")
    if segments_row["speedup"] < 5.0:
        # one retry: wall-clock benches on shared CI boxes see 2x swings
        coldstart = run_coldstart(predicates=COLDSTART_PREDICATES)
    RESULT_PATH.write_text(
        json.dumps(
            {
                "experiment": "rebuild_bulkload",
                "scenario": {
                    "intervals": INTERVALS,
                    "point_fraction": 0.5,
                    "orders": ["shuffled", "sorted"],
                },
                "baseline": "N incremental tree.insert calls, same items and order",
                "python": platform.python_version(),
                "rows": rounded(rebuild),
                "stab_cache": {
                    "scenario": {
                        "predicates": 10_000,
                        "tuples": 10_000,
                        "distinct_values": 256,
                        "distribution": "zipf",
                    },
                    "baseline": "PredicateIndex with the stab cache disabled",
                    "rows": rounded(stab_cache),
                },
                "coldstart": {
                    "scenario": {
                        "predicates": COLDSTART_PREDICATES,
                        "probes": 100,
                    },
                    "baseline": "journal-only replay of the same predicates",
                    "rows": rounded(coldstart),
                },
            },
            indent=2,
        )
        + "\n"
    )
    return rebuild, {row["cache"]: row for row in stab_cache}, {
        row["path"]: row for row in coldstart
    }


def test_all_configurations_measured(rebuild_rows):
    rebuild, stab_cache, coldstart = rebuild_rows
    assert {(row["backend"], row["order"]) for row in rebuild} == {
        (backend, order)
        for backend in ("ibs", "avl", "rb", "flat")
        for order in ("shuffled", "sorted")
    }
    assert all(row["intervals"] == INTERVALS for row in rebuild)
    assert set(stab_cache) == {"off", "on"}
    assert set(coldstart) == {"journal-replay", "segments"}
    assert all(
        row["predicates"] == COLDSTART_PREDICATES for row in coldstart.values()
    )


def test_bulk_load_speedup(rebuild_rows):
    """The ISSUE acceptance bar: >= 5x on at least two backends at 10k."""
    rebuild, _, _ = rebuild_rows
    best = best_speedups(rebuild)
    fast = [backend for backend, speedup in best.items() if speedup >= 5.0]
    assert len(fast) >= 2, f"per-backend best speedups: {best}"


def test_bulk_load_always_helps_a_rebuild_scan(rebuild_rows):
    """In sorted (rebuild-scan) order every backend must gain from bulk_load."""
    rebuild, _, _ = rebuild_rows
    for row in rebuild:
        if row["order"] == "sorted":
            assert row["speedup"] > 1.0, row


def test_stab_cache_speedup(rebuild_rows):
    """The ISSUE acceptance bar: >= 1.5x on the duplicate-heavy Zipf stream."""
    _, stab_cache, _ = rebuild_rows
    assert stab_cache["off"]["speedup"] == pytest.approx(1.0)
    assert stab_cache["on"]["speedup"] >= 1.5
    assert stab_cache["on"]["cache_hits"] > 0


def test_coldstart_segments_beat_journal_replay(rebuild_rows):
    """The ISSUE acceptance bar: segment attach >= 5x over journal replay."""
    _, _, coldstart = rebuild_rows
    assert coldstart["journal-replay"]["speedup"] == pytest.approx(1.0)
    assert coldstart["segments"]["speedup"] >= 5.0, coldstart
    # lazy attach must not secretly pay the replay cost up front
    assert coldstart["segments"]["coldstart_s"] < coldstart["journal-replay"][
        "coldstart_s"
    ]
