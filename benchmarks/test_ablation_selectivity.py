"""ABL3 — entry-clause selectivity estimation ablation.

The paper indexes each predicate under "the most selective" of its
indexable clauses, with "selectivity estimates ... obtained from the
query optimizer".  This ablation quantifies that design choice on a
skewed domain where shape-based constants (System R style) pick wrong.
"""

import pytest

from repro.bench.runner import run_ablation_selectivity


@pytest.fixture(scope="module")
def ablation_rows():
    return run_ablation_selectivity(predicates=200, tuples=200)


def test_abl3_statistics_reduce_partial_matches(ablation_rows):
    by_name = {row["estimator"]: row for row in ablation_rows}
    default = by_name["default constants"]
    stats = by_name["statistics"]
    # the skewed equality clause partially matches ~95% of tuples;
    # the range clause ~10%: expect a large gap
    assert stats["partials_per_tuple"] < default["partials_per_tuple"] / 3


def test_abl3_tree_layout_differs(ablation_rows):
    by_name = {row["estimator"]: row for row in ablation_rows}
    assert by_name["default constants"]["status_tree"] == 200
    assert by_name["statistics"]["value_tree"] == 200


def test_abl3_both_layouts_answer_identically():
    import random

    from repro import Interval, PredicateIndex
    from repro.core.selectivity import DefaultEstimator
    from repro.predicates.clauses import EqualityClause, IntervalClause
    from repro.predicates.predicate import Predicate

    rng = random.Random(3)

    class FlippedEstimator(DefaultEstimator):
        """Deliberately prefers intervals over equalities."""

        EQUALITY = 0.9
        BOUNDED = 0.1

    predicates = []
    for k in range(100):
        start = rng.randint(0, 900)
        predicates.append(
            Predicate(
                "log",
                [
                    EqualityClause("status", rng.choice(["a", "b"])),
                    IntervalClause("value", Interval.closed(start, start + 99)),
                ],
                ident=k,
            )
        )
    first = PredicateIndex(estimator=DefaultEstimator())
    second = PredicateIndex(estimator=FlippedEstimator())
    for predicate in predicates:
        first.add(predicate)
        second.add(
            Predicate(
                predicate.relation, predicate.clauses, ident=predicate.ident
            )
        )
    for _ in range(200):
        tup = {"status": rng.choice(["a", "b", "c"]), "value": rng.randint(0, 1100)}
        assert first.match_idents("log", tup) == second.match_idents("log", tup)


@pytest.mark.parametrize("estimator", ["default", "statistics"])
def test_abl3_match_cost(benchmark, estimator):
    import random

    from repro import Interval, PredicateIndex
    from repro.core.selectivity import DefaultEstimator, StatisticsEstimator
    from repro.db import Database
    from repro.predicates.clauses import EqualityClause, IntervalClause
    from repro.predicates.predicate import Predicate

    rng = random.Random(5)
    db = Database()
    db.create_relation("log", ["status", "value"])
    for _ in range(1_000):
        db.insert(
            "log",
            {
                "status": "active" if rng.random() < 0.95 else "closed",
                "value": rng.randint(1, 10_000),
            },
        )
    chosen = (
        DefaultEstimator() if estimator == "default" else StatisticsEstimator(db)
    )
    index = PredicateIndex(estimator=chosen)
    for k in range(200):
        start = rng.randint(1, 9_000)
        index.add(
            Predicate(
                "log",
                [
                    EqualityClause("status", "active"),
                    IntervalClause("value", Interval.closed(start, start + 999)),
                ],
            )
        )
    tuples = [
        {"status": "active", "value": rng.randint(1, 10_000)} for _ in range(64)
    ]
    state = {"i": 0}

    def match_one():
        tup = tuples[state["i"] % len(tuples)]
        state["i"] += 1
        index.match("log", tup)

    benchmark(match_one)
