"""BATCH — batched matching vs the paper's per-tuple design point.

The paper's algorithm matches one tuple at a time (Section 3).  The
``match_batch`` extension amortises the per-tuple index probes across a
batch — distinct values per indexed attribute are stabbed once and the
results fanned back out — and ``FlatIBSTree`` packs the tree into
parallel arrays with bitset marker sets.  The ``columnar`` matcher goes
further: every stab outcome is precomputed into packed bit rows and a
batch is matched with NumPy ``searchsorted`` gathers
(``repro.match.columnar``).

Acceptance criteria: on the Section 5.2 scenario at 10,000 predicates
with 1,000-tuple batches, batched matching over the flat backend
sustains at least 2x the throughput of single-tuple matching over the
nested ``IBSTree`` (``test_batched_flat_speedup``), and the columnar
plane sustains at least 8x the scalar flat batch path when NumPy is
available (``test_columnar_speedup``; the committed ``BENCH_batch.json``
row documents the full measured margin).

Running this module rewrites ``BENCH_batch.json`` at the repo root with
the measured rows.
"""

import json
import platform
from pathlib import Path

import pytest

from repro.bench.runner import run_batch
from repro.match.columnar import HAVE_NUMPY

PREDICATES = 10_000
BATCH_SIZE = 1_000
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_batch.json"


@pytest.fixture(scope="module")
def batch_rows():
    rows = run_batch(predicates=PREDICATES, batch_size=BATCH_SIZE)
    RESULT_PATH.write_text(
        json.dumps(
            {
                "experiment": "batch_throughput",
                "scenario": {
                    "predicates": PREDICATES,
                    "batch_size": BATCH_SIZE,
                    "relation": "r0",
                },
                "baseline": "per-tuple PredicateIndex.match over IBSTree",
                "python": platform.python_version(),
                "rows": [
                    {key: round(value, 3) if isinstance(value, float) else value
                     for key, value in row.items()}
                    for row in rows
                ],
            },
            indent=2,
        )
        + "\n"
    )
    return {(row["backend"], row["mode"]): row for row in rows}


def test_all_configurations_measured(batch_rows):
    assert set(batch_rows) == {
        ("ibs", "single"),
        ("ibs", "batch"),
        ("flat", "single"),
        ("flat", "batch"),
        ("columnar", "single"),
        ("columnar", "batch"),
    }
    assert batch_rows[("ibs", "single")]["speedup"] == pytest.approx(1.0)


def test_batched_flat_speedup(batch_rows):
    """The ISSUE acceptance bar: batched + flat tree >= 2x per-tuple IBS."""
    assert batch_rows[("flat", "batch")]["speedup"] >= 2.0


def test_batching_helps_both_backends(batch_rows):
    """Batching alone must beat per-tuple matching on either backend."""
    assert batch_rows[("ibs", "batch")]["speedup"] > 1.5
    assert (
        batch_rows[("flat", "batch")]["tuples_per_s"]
        > batch_rows[("flat", "single")]["tuples_per_s"]
    )


@pytest.mark.skipif(not HAVE_NUMPY, reason="columnar plane needs NumPy")
def test_columnar_speedup(batch_rows):
    """The vectorized plane must stay an order of magnitude ahead.

    Measured ~11-13x over the scalar flat batch path; 8x is the CI bar
    (same headroom-vs-measurement style as the 2x bar above).
    """
    assert (
        batch_rows[("columnar", "batch")]["tuples_per_s"]
        >= 8.0 * batch_rows[("flat", "batch")]["tuples_per_s"]
    )
