#!/usr/bin/env python3
"""Print every experiment's paper-style series table.

Equivalent to ``python -m repro.bench.runner``.  Individual figures::

    python benchmarks/run_all.py fig7 fig8 fig9 cost space abl1 abl2 e2e
"""

import sys

from repro.bench.runner import (
    main,
    print_ablation_balancing,
    print_ablation_indexes,
    print_ablation_multiclause,
    print_ablation_selectivity,
    print_cost_model,
    print_e2e,
    print_fig7,
    print_fig8,
    print_fig9,
    print_space,
)

RUNNERS = {
    "fig7": print_fig7,
    "fig8": print_fig8,
    "fig9": print_fig9,
    "cost": print_cost_model,
    "space": print_space,
    "abl1": print_ablation_indexes,
    "abl2": print_ablation_balancing,
    "abl3": print_ablation_selectivity,
    "abl4": print_ablation_multiclause,
    "e2e": print_e2e,
}

if __name__ == "__main__":
    selected = sys.argv[1:]
    if not selected:
        main()
    else:
        for name in selected:
            try:
                runner = RUNNERS[name]
            except KeyError:
                raise SystemExit(
                    f"unknown experiment {name!r}; choose from {', '.join(RUNNERS)}"
                )
            runner()
