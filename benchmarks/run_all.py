#!/usr/bin/env python3
"""Print every experiment's paper-style series table.

Equivalent to ``python -m repro.bench.runner``.  Individual figures::

    python benchmarks/run_all.py fig7 fig8 fig9 cost space abl1 abl2 e2e batch rebuild coldstart stabcache concurrency maint

``--smoke`` runs every selected experiment (default: all) at a reduced
scale — a fast sanity pass for CI, not a measurement.
"""

import sys

from repro.bench.runner import (
    main,
    print_autoselect,
    print_ablation_balancing,
    print_ablation_indexes,
    print_ablation_multiclause,
    print_ablation_selectivity,
    print_batch,
    print_coldstart,
    print_concurrency,
    print_cost_model,
    print_e2e,
    print_fig7,
    print_fig8,
    print_fig9,
    print_maintenance,
    print_rebuild,
    print_space,
    print_stab_cache,
    run_ablation_balancing,
    run_ablation_indexes,
    run_autoselect,
    run_ablation_multiclause,
    run_ablation_selectivity,
    run_batch,
    run_coldstart,
    run_concurrency,
    run_e2e,
    run_fig7,
    run_fig8,
    run_fig9,
    run_maintenance,
    run_rebuild,
    run_space,
    run_stab_cache,
)

RUNNERS = {
    "fig7": print_fig7,
    "fig8": print_fig8,
    "fig9": print_fig9,
    "cost": print_cost_model,
    "space": print_space,
    "abl1": print_ablation_indexes,
    "abl2": print_ablation_balancing,
    "abl3": print_ablation_selectivity,
    "abl4": print_ablation_multiclause,
    "e2e": print_e2e,
    "batch": print_batch,
    "rebuild": print_rebuild,
    "coldstart": print_coldstart,
    "stabcache": print_stab_cache,
    "concurrency": print_concurrency,
    "autoselect": print_autoselect,
    "maint": print_maintenance,
}

#: Reduced-scale arguments per experiment for ``--smoke``.  Each entry
#: is ``(run_fn, kwargs, print_fn)``; experiments without an entry run
#: their print function with defaults (already fast).
SMOKE = {
    "fig7": (run_fig7, {"ns": (50, 100)}, print_fig7),
    "fig8": (run_fig8, {"ns": (50, 100)}, print_fig8),
    "fig9": (run_fig9, {"ns": (10, 50)}, print_fig9),
    "space": (run_space, {"ns": (50, 100)}, print_space),
    "abl1": (run_ablation_indexes, {"n": 100, "queries": 100}, print_ablation_indexes),
    "abl2": (run_ablation_balancing, {"n": 200}, print_ablation_balancing),
    "abl3": (run_ablation_selectivity, {"predicates": 100, "tuples": 50},
             print_ablation_selectivity),
    "abl4": (run_ablation_multiclause, {"predicates": 100, "tuples": 50},
             print_ablation_multiclause),
    "e2e": (run_e2e, {"predicate_counts": (50, 100), "tuples": 50}, print_e2e),
    "batch": (run_batch, {"predicates": 500, "batch_size": 100, "repeats": 1},
              print_batch),
    "rebuild": (run_rebuild, {"intervals": 300, "repeats": 1}, print_rebuild),
    "coldstart": (run_coldstart, {"predicates": 300, "probes": 20, "repeats": 1},
                  print_coldstart),
    "stabcache": (run_stab_cache,
                  {"predicates": 200, "tuples": 500, "distinct_values": 32,
                   "cache_size": 256, "repeats": 1},
                  print_stab_cache),
    "concurrency": (run_concurrency,
                    {"predicates": 300, "distinct_values": 100,
                     "batch_size": 50, "rounds": 4, "repeats": 1},
                    print_concurrency),
    "autoselect": (run_autoselect,
                   {"scale": 0.25, "repeats": 1, "calibration_samples": 60,
                    "calibration_sizes": (16, 128)},
                   print_autoselect),
    "maint": (run_maintenance,
              {"predicates": 300, "distinct_values": 100, "batch_size": 50,
               "rounds": 6, "repeats": 1, "checkpoint_every": 2},
              print_maintenance),
}


def run_smoke(names):
    for name in names:
        entry = SMOKE.get(name)
        if entry is None:
            RUNNERS[name]()
            continue
        run_fn, kwargs, print_fn = entry
        print_fn(run_fn(**kwargs))


if __name__ == "__main__":
    arguments = sys.argv[1:]
    smoke = "--smoke" in arguments
    selected = [argument for argument in arguments if argument != "--smoke"]
    unknown = [name for name in selected if name not in RUNNERS]
    if unknown:
        raise SystemExit(
            f"unknown experiment(s) {', '.join(map(repr, unknown))}; "
            f"choose from {', '.join(RUNNERS)}"
        )
    if smoke:
        run_smoke(selected or list(RUNNERS))
    elif not selected:
        main()
    else:
        for name in selected:
            RUNNERS[name]()
