"""CONCURRENCY — epoch-snapshot matching vs the mutable index.

``ConcurrentPredicateIndex`` publishes immutable epoch snapshots:
writes build a small overlay and never touch the frozen base, so the
base's stab cache — demoted to an append-only, GIL-safe discipline by
``freeze()`` — stays warm across writes.  The mutable ``PredicateIndex``
invalidates its whole cache on every write (each mutation bumps a tree
epoch, which is the cache key), so a mixed read/write workload re-stabs
every batch.

Acceptance criterion (checked in ``test_snapshot_speedup_at_workers``):
on a 10,000-predicate mixed read/write workload (one add + one
500-tuple batch + one remove per round, values repeating across
rounds), the concurrent facade at 4 workers sustains at least 2x the
match throughput of single-threaded ``match_batch`` over the mutable
index.

Honesty note: this container has one CPU and the GIL, so the speedup is
*not* parallelism — it is write isolation (snapshot cache retention),
which the workers=0 row isolates.  See ``docs/concurrency_model.md``.

Running this module rewrites ``BENCH_concurrency.json`` at the repo
root with the measured rows.
"""

import json
import platform
from pathlib import Path

import pytest

from repro.bench.runner import run_concurrency

PREDICATES = 10_000
BATCH_SIZE = 500
ROUNDS = 20
WORKERS = 4
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_concurrency.json"


@pytest.fixture(scope="module")
def concurrency_rows():
    rows = run_concurrency(
        predicates=PREDICATES,
        batch_size=BATCH_SIZE,
        rounds=ROUNDS,
        workers=WORKERS,
    )
    RESULT_PATH.write_text(
        json.dumps(
            {
                "experiment": "concurrent_throughput",
                "scenario": {
                    "predicates": PREDICATES,
                    "batch_size": BATCH_SIZE,
                    "rounds": ROUNDS,
                    "workers": WORKERS,
                    "workload": "per round: add 1 predicate, match one "
                                "batch, remove it; batch values repeat "
                                "across rounds",
                },
                "baseline": "mutable PredicateIndex (FlatIBSTree, stab cache "
                            "on) driven single-threaded",
                "note": "single-CPU host: speedup measures snapshot write "
                        "isolation (cache retention), not parallelism",
                "python": platform.python_version(),
                "rows": [
                    {key: round(value, 3) if isinstance(value, float) else value
                     for key, value in row.items()}
                    for row in rows
                ],
            },
            indent=2,
        )
        + "\n"
    )
    return {(row["mode"], row["workers"]): row for row in rows}


def test_all_configurations_measured(concurrency_rows):
    assert set(concurrency_rows) == {
        ("serial", 0),
        ("snapshot", 0),
        ("snapshot", WORKERS),
    }
    assert concurrency_rows[("serial", 0)]["speedup"] == pytest.approx(1.0)


def test_snapshot_speedup_at_workers(concurrency_rows):
    """The ISSUE acceptance bar: facade @ 4 workers >= 2x serial."""
    assert concurrency_rows[("snapshot", WORKERS)]["speedup"] >= 2.0


def test_speedup_is_isolation_not_parallelism(concurrency_rows):
    """The inline (workers=0) facade already clears the bar: the win is
    write isolation, and claiming otherwise on a 1-CPU GIL host would
    be dishonest."""
    assert concurrency_rows[("snapshot", 0)]["speedup"] >= 2.0
