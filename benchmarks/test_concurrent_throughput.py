"""CONCURRENCY — epoch-snapshot matching vs the mutable index.

``ConcurrentPredicateIndex`` publishes immutable epoch snapshots:
writes build a small overlay and never touch the frozen base, so the
base's stab cache — demoted to an append-only, GIL-safe discipline by
``freeze()`` — stays warm across writes.  The mutable ``PredicateIndex``
invalidates its whole cache on every write (each mutation bumps a tree
epoch, which is the cache key), so a mixed read/write workload re-stabs
every batch.

Beyond the thread tier, the supervised multiprocess tier
(``pool="process"``) is measured across a workers curve, plus one row
with the process tier forced into degraded mode (restart budget
exhausted → in-process fallback) to price the graceful-degradation
latency floor.

Acceptance criteria:

* ``test_snapshot_speedup_at_workers`` — on a 10,000-predicate mixed
  read/write workload (one add + one 500-tuple batch + one remove per
  round, values repeating across rounds), the thread facade at 4
  workers sustains at least 2x the match throughput of single-threaded
  ``match_batch`` over the mutable index.
* ``test_process_tier_scales`` — the process tier at 4 workers beats
  its own 1-worker row by >= 1.5x.  Gated on a >= 4-core host: on this
  single-CPU container the workers only time-slice one core, so the
  curve is flat by construction and asserting scaling would be noise.

Honesty note: this container has one CPU and the GIL, so the snapshot
speedup is *not* parallelism — it is write isolation (snapshot cache
retention), which the workers=0 row isolates — and the process rows
pay pickling + IPC per batch with no cores to amortise it.  See
``docs/concurrency_model.md``.

Running this module rewrites ``BENCH_concurrency.json`` at the repo
root with the measured rows.
"""

import json
import os
import platform
from pathlib import Path

import pytest

from repro.bench.runner import run_concurrency

PREDICATES = 10_000
BATCH_SIZE = 500
ROUNDS = 20
WORKERS = 4
# Pinned (not cpu_count-derived) so the committed baseline JSON has a
# machine-independent row set for compare_bench's row_key matching.
WORKERS_CURVE = (1, 2, 4)
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_concurrency.json"


@pytest.fixture(scope="module")
def concurrency_rows():
    rows = run_concurrency(
        predicates=PREDICATES,
        batch_size=BATCH_SIZE,
        rounds=ROUNDS,
        workers=WORKERS,
        workers_curve=WORKERS_CURVE,
    )
    RESULT_PATH.write_text(
        json.dumps(
            {
                "experiment": "concurrent_throughput",
                "scenario": {
                    "predicates": PREDICATES,
                    "batch_size": BATCH_SIZE,
                    "rounds": ROUNDS,
                    "workers": WORKERS,
                    "workers_curve": list(WORKERS_CURVE),
                    "workload": "per round: add 1 predicate, match one "
                                "batch, remove it; batch values repeat "
                                "across rounds",
                },
                "baseline": "mutable PredicateIndex (FlatIBSTree, stab cache "
                            "on) driven single-threaded",
                "note": "single-CPU host: speedup measures snapshot write "
                        "isolation (cache retention), not parallelism; "
                        "process rows pay pickling + IPC per batch",
                "python": platform.python_version(),
                "rows": [
                    {key: round(value, 3) if isinstance(value, float) else value
                     for key, value in row.items()}
                    for row in rows
                ],
            },
            indent=2,
        )
        + "\n"
    )
    return {(row["mode"], row["pool"], row["workers"]): row for row in rows}


def test_all_configurations_measured(concurrency_rows):
    expected = {("serial", "none", 0), ("snapshot", "inline", 0)}
    expected |= {("snapshot", "thread", count) for count in WORKERS_CURVE}
    expected |= {("snapshot", "process", count) for count in WORKERS_CURVE}
    expected.add(("snapshot", "process-degraded", max(WORKERS_CURVE)))
    assert set(concurrency_rows) == expected
    assert concurrency_rows[("serial", "none", 0)]["speedup"] == pytest.approx(1.0)


def test_snapshot_speedup_at_workers(concurrency_rows):
    """The ISSUE acceptance bar: thread facade @ 4 workers >= 2x serial."""
    assert concurrency_rows[("snapshot", "thread", WORKERS)]["speedup"] >= 2.0


def test_speedup_is_isolation_not_parallelism(concurrency_rows):
    """The inline (workers=0) facade already clears the bar: the win is
    write isolation, and claiming otherwise on a 1-CPU GIL host would
    be dishonest."""
    assert concurrency_rows[("snapshot", "inline", 0)]["speedup"] >= 2.0


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="process-tier scaling needs >= 4 cores; this host time-slices one",
)
def test_process_tier_scales(concurrency_rows):
    """ISSUE acceptance bar, multi-core hosts only: the process tier at
    4 workers beats its own 1-worker row by >= 1.5x."""
    at_four = concurrency_rows[("snapshot", "process", 4)]["tuples_per_s"]
    at_one = concurrency_rows[("snapshot", "process", 1)]["tuples_per_s"]
    assert at_four / at_one >= 1.5


def test_degraded_mode_still_answers(concurrency_rows):
    """Degraded mode trades latency only — the row exists and measured a
    finite, non-zero throughput (every batch was answered in-process)."""
    row = concurrency_rows[("snapshot", "process-degraded", max(WORKERS_CURVE))]
    assert row["tuples_per_s"] > 0
