"""SPACE — Section 5.1: O(N log N) markers worst case, O(N) disjoint.

"Each interval places O(log N) markers in the tree, for a worst-case
storage requirement of O(N log N) ... when intervals in the tree do
not overlap, only O(N) markers are placed in the tree."
"""

import math

import pytest

from repro import IBSTree


def build(intervals):
    tree = IBSTree()
    for k, interval in enumerate(intervals):
        tree.insert(interval, k)
    return tree


@pytest.mark.parametrize("kind", ["overlapping", "disjoint"])
def test_space_build(benchmark, interval_workload, kind):
    workload = interval_workload(point_fraction=0.0)
    n = 800
    intervals = (
        workload.intervals(n) if kind == "overlapping" else workload.disjoint_intervals(n)
    )
    tree = benchmark(build, intervals)
    benchmark.extra_info["marker_count"] = tree.marker_count
    benchmark.extra_info["markers_per_interval"] = tree.marker_count / n


def test_disjoint_markers_linear(interval_workload):
    workload = interval_workload(point_fraction=0.0)
    for n in (200, 800):
        tree = build(workload.disjoint_intervals(n))
        assert tree.marker_count <= 4 * n


def test_overlapping_markers_logarithmic_per_interval(interval_workload):
    workload = interval_workload(point_fraction=0.0)
    for n in (200, 800):
        tree = build(workload.intervals(n))
        per_interval = tree.marker_count / n
        # per-interval markers ~ c * log2(N), with c modest
        assert per_interval <= 4 * math.log2(n)
        # and clearly super-constant compared to the disjoint case
        assert per_interval > 4


def test_marker_growth_rate_between_linear_and_nlogn(interval_workload):
    workload = interval_workload(point_fraction=0.0)
    small = build(workload.intervals(200)).marker_count
    large = build(workload.intervals(1600)).marker_count
    ratio = large / small
    # 8x the intervals: super-linear growth (> 8, the log factor at
    # work — denser overlap on the fixed [1, 10000] domain also raises
    # the constant) but nowhere near quadratic (8*8 = 64).
    assert 8 <= ratio <= 24
