"""E2E — end-to-end matcher throughput across strategies.

Extends the paper's evaluation with the full pipeline: the Figure 1
scheme against the Section 2 baselines on the Section 5.2 scenario, at
growing predicate counts.  Expected shape: the baselines scale
linearly in the number of predicates per relation, the IBS scheme
logarithmically plus output cost, so the gap widens with scale.
"""

import pytest

from repro import PredicateIndex
from repro.baselines import (
    HashSequentialMatcher,
    PhysicalLockingMatcher,
    RTreeMatcher,
    SequentialMatcher,
)

STRATEGIES = {
    "ibs": lambda workload: PredicateIndex(),
    "hash": lambda workload: HashSequentialMatcher(),
    "sequential": lambda workload: SequentialMatcher(),
    "locking": lambda workload: PhysicalLockingMatcher(
        {rel: set(workload.predicate_attributes) for rel in workload.relation_names}
    ),
    "rtree": lambda workload: RTreeMatcher(),
}


def build_matcher(strategy, workload, predicates):
    matcher = STRATEGIES[strategy](workload)
    for predicate in predicates:
        matcher.add(predicate)
    return matcher


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
@pytest.mark.parametrize("count", [100, 400])
def test_e2e_match(benchmark, scenario_workload, strategy, count):
    workload = scenario_workload(predicates=count)
    predicates = workload.predicates()["r0"]
    matcher = build_matcher(strategy, workload, predicates)
    tuples = workload.tuples(64)
    state = {"i": 0}

    def match_one():
        tup = tuples[state["i"] % len(tuples)]
        state["i"] += 1
        return matcher.match("r0", tup)

    benchmark(match_one)


def test_e2e_strategies_agree(scenario_workload):
    workload = scenario_workload(predicates=150)
    predicates = workload.predicates()["r0"]
    matchers = {
        name: build_matcher(name, workload, predicates) for name in STRATEGIES
    }
    for tup in workload.tuples(40):
        reference = {p.ident for p in matchers["ibs"].match("r0", tup)}
        for name, matcher in matchers.items():
            got = {p.ident for p in matcher.match("r0", tup)}
            assert got == reference, name


def test_e2e_ibs_beats_linear_baselines_at_scale(scenario_workload):
    import time

    workload = scenario_workload(predicates=800)
    predicates = workload.predicates()["r0"]
    tuples = workload.tuples(150)
    times = {}
    for name in ("ibs", "hash", "sequential"):
        matcher = build_matcher(name, workload, predicates)
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for tup in tuples:
                matcher.match("r0", tup)
            best = min(best, time.perf_counter() - start)
        times[name] = best
    assert times["ibs"] < times["hash"]
    assert times["ibs"] < times["sequential"]
