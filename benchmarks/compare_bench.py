#!/usr/bin/env python3
"""Benchmark regression guard: fresh measurements vs the committed BENCH files.

For each committed ``BENCH_*.json`` the tool re-measures the same
experiment at the same scenario scale (read from the file's own
``scenario`` block, so the committed file is the single source of
truth), matches rows by their configuration fields, and compares the
throughput metric of each pair.  A fresh row more than ``--threshold``
(default 25 %) slower than its committed counterpart fails the run —
this is the CI tripwire for "the refactor quietly destroyed the batch
path".

Usage::

    python benchmarks/compare_bench.py                 # every experiment
    python benchmarks/compare_bench.py batch           # just BENCH_batch.json
    python benchmarks/compare_bench.py --threshold 0.1
    python benchmarks/compare_bench.py --against DIR   # diff two file sets,
                                                       # no re-measurement

``--against DIR`` compares the repo-root files (treated as fresh)
against the copies in *DIR* (treated as baseline) — useful after a
manual re-measure, or in CI where the committed files are copied aside
before the benchmark modules overwrite them.

Throughput metrics: rows carrying ``tuples_per_s`` compare on it
directly (higher is better); rebuild rows compare on ``1 / bulk_ms``
(bulk-load latency, lower is better); disk-tier cold-start rows
compare on ``1 / coldstart_s``.  Rows are matched on every
non-float field (backend, mode, order, workers, …); a fresh/baseline
row without a partner is an error, not a skip — silent shape drift is
how regressions hide.
"""

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: experiment key -> (file name, callable(scenario) -> fresh rows)
EXPERIMENTS = {}


def _measure_batch(scenario):
    from repro.bench.runner import run_batch

    return run_batch(
        predicates=scenario["predicates"], batch_size=scenario["batch_size"]
    )


def _measure_rebuild(scenario):
    from repro.bench.runner import run_rebuild

    return run_rebuild(
        intervals=scenario["intervals"],
        point_fraction=scenario.get("point_fraction", 0.5),
    )


def _measure_coldstart(scenario):
    from repro.bench.runner import run_coldstart

    return run_coldstart(
        predicates=scenario["predicates"], probes=scenario.get("probes", 100)
    )


def _measure_concurrency(scenario):
    from repro.bench.runner import run_concurrency

    return run_concurrency(
        predicates=scenario["predicates"],
        batch_size=scenario["batch_size"],
        rounds=scenario["rounds"],
        workers=scenario["workers"],
        workers_curve=scenario.get("workers_curve"),
    )


def _measure_autoselect(scenario):
    from repro.bench.runner import run_autoselect

    return run_autoselect(
        scenarios=scenario.get("families"),
        seed=scenario["seed"],
        scale=scenario.get("scale", 1.0),
    )


#: experiment key -> (file name, measure, optional sub-document key).
#: A sub-document key means the experiment's scenario/rows live under
#: that key of the file instead of at top level (BENCH_rebuild.json
#: carries the rebuild rows at top level and the cold-start experiment
#: under "coldstart").
EXPERIMENTS["batch"] = ("BENCH_batch.json", _measure_batch, None)
EXPERIMENTS["rebuild"] = ("BENCH_rebuild.json", _measure_rebuild, None)
EXPERIMENTS["coldstart"] = ("BENCH_rebuild.json", _measure_coldstart, "coldstart")
EXPERIMENTS["concurrency"] = ("BENCH_concurrency.json", _measure_concurrency, None)
EXPERIMENTS["autoselect"] = ("BENCH_autoselect.json", _measure_autoselect, None)


def _measure_maint(scenario):
    from repro.bench.runner import run_maintenance

    return run_maintenance(
        predicates=scenario["predicates"],
        distinct_values=scenario["distinct_values"],
        batch_size=scenario["batch_size"],
        rounds=scenario["rounds"],
        checkpoint_every=scenario.get("checkpoint_every", 6),
        seed=scenario.get("seed", 53),
    )


EXPERIMENTS["maint"] = ("BENCH_maint.json", _measure_maint, None)


def row_key(row):
    """Configuration identity: every non-float field of the row."""
    return tuple(
        sorted((k, v) for k, v in row.items() if not isinstance(v, float))
    )


def throughput(row):
    """(metric name, higher-is-better value) for one row."""
    if "tuples_per_s" in row:
        return "tuples_per_s", float(row["tuples_per_s"])
    if "ops_per_s" in row:
        return "ops_per_s", float(row["ops_per_s"])
    if "bulk_ms" in row:
        return "1/bulk_ms", 1.0 / float(row["bulk_ms"])
    if "coldstart_s" in row:
        # cold-start latency, lower is better — guards the lazy
        # segment-attach path against quietly re-growing a rebuild
        return "1/coldstart_s", 1.0 / float(row["coldstart_s"])
    raise SystemExit(f"row has no throughput metric: {row!r}")


def compare_rows(name, baseline_rows, fresh_rows, threshold):
    """Return a list of (line, regressed) report entries."""
    baseline = {row_key(r): r for r in baseline_rows}
    fresh = {row_key(r): r for r in fresh_rows}
    missing = [k for k in baseline if k not in fresh]
    if missing:
        # a committed row without a fresh counterpart means coverage
        # was silently dropped — that is exactly the drift this guard
        # exists to catch, so it stays fatal
        raise SystemExit(
            f"{name}: baseline rows missing from fresh measurements\n"
            f"  only in baseline: {missing}"
        )
    report = []
    for key in fresh:
        if key not in baseline:
            # a freshly added configuration has no baseline yet: report
            # it (so additions are visible) without failing the guard —
            # it becomes load-bearing once its row is committed
            label = ", ".join(
                f"{k}={v}" for k, v in key if k not in ("intervals",)
            )
            metric, value = throughput(fresh[key])
            report.append(
                (
                    f"  {label:<42} {metric:>12}  "
                    f"{value:10.2f} (new row, no baseline)  ok",
                    False,
                )
            )
    for key in baseline:
        metric, base_value = throughput(baseline[key])
        _, fresh_value = throughput(fresh[key])
        ratio = fresh_value / base_value if base_value else float("inf")
        regressed = ratio < 1.0 - threshold
        label = ", ".join(f"{k}={v}" for k, v in key if k not in ("intervals",))
        flag = "REGRESSED" if regressed else "ok"
        report.append(
            (
                f"  {label:<42} {metric:>12}  "
                f"{ratio:6.2f}x of baseline  {flag}",
                regressed,
            )
        )
    report.sort()
    return report


def load(path):
    try:
        return json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise SystemExit(f"missing benchmark file: {path}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"unparseable benchmark file {path}: {exc}")


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="compare fresh benchmark measurements against committed BENCH_*.json"
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=[*EXPERIMENTS, []],
        help="subset to check (default: all)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum tolerated fractional throughput loss (default 0.25)",
    )
    parser.add_argument(
        "--against",
        metavar="DIR",
        help="compare repo-root files against baseline copies in DIR "
        "instead of re-measuring",
    )
    args = parser.parse_args(argv)
    selected = args.experiments or list(EXPERIMENTS)

    failures = 0
    for key in selected:
        file_name, measure, section = EXPERIMENTS[key]
        label = file_name if section is None else f"{file_name}[{section}]"
        if args.against:
            baseline_doc = load(Path(args.against) / file_name)
            fresh_doc = load(REPO_ROOT / file_name)
            baseline_part = baseline_doc if section is None else baseline_doc[section]
            fresh_rows = (
                fresh_doc if section is None else fresh_doc[section]
            )["rows"]
        else:
            baseline_doc = load(REPO_ROOT / file_name)
            baseline_part = baseline_doc if section is None else baseline_doc[section]
            print(f"{label}: re-measuring at scenario scale "
                  f"{baseline_part['scenario']} ...")
            fresh_rows = measure(baseline_part["scenario"])
        print(f"{label} (threshold {args.threshold:.0%}):")
        for line, regressed in compare_rows(
            label, baseline_part["rows"], fresh_rows, args.threshold
        ):
            print(line)
            failures += regressed
    if failures:
        print(f"\n{failures} row(s) regressed beyond the threshold", file=sys.stderr)
        return 1
    print("\nno regressions beyond the threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
