"""COST — the Section 5.2 cost analysis, predicted and measured.

The paper plugs SPARCstation-1 constants into a closed-form model and
estimates ~2.1 msec to find all matching predicates for one tuple
under the Figure 1 scheme (200 predicates, 15 attributes, 5 indexed,
90 % indexable, selectivity 0.1).  We assert the model reproduces the
paper's arithmetic exactly, then measure the real matcher on the same
scenario.
"""

import pytest

from repro import PredicateIndex
from repro.bench.cost_model import CostParameters, predicate_match_cost


def test_paper_arithmetic_reproduced():
    breakdown = predicate_match_cost(CostParameters())
    # index probe: 0.1 + 5*0.13 + 20*0.02 (the paper prints 1.1)
    assert breakdown.index_probe_ms == pytest.approx(1.15)
    # residual: 20 full tests at 0.05
    assert breakdown.residual_ms == pytest.approx(1.0)
    # total ~ the paper's 2.1
    assert breakdown.total_ms == pytest.approx(2.15)


@pytest.mark.parametrize("predicates", [200])
def test_cost_scenario_match(benchmark, scenario_workload, predicates):
    """Per-tuple match on the exact Section 5.2 scenario."""
    workload = scenario_workload(predicates=predicates)
    index = PredicateIndex()
    for predicate in workload.predicates()["r0"]:
        index.add(predicate)
    tuples = workload.tuples(64)
    state = {"i": 0}

    def match_one():
        tup = tuples[state["i"] % len(tuples)]
        state["i"] += 1
        return index.match("r0", tup)

    benchmark(match_one)


def test_partial_match_rate_matches_model(scenario_workload):
    """The scenario's partial-match rate should track sel * N."""
    workload = scenario_workload(predicates=200)
    index = PredicateIndex()
    for predicate in workload.predicates()["r0"]:
        index.add(predicate)
    index.stats.reset()
    tuples = workload.tuples(300)
    for tup in tuples:
        index.match("r0", tup)
    per_tuple_partials = index.stats.partial_matches / len(tuples)
    # each of ~180 indexable predicates is hit through one clause of
    # selectivity ~0.1 -> ~18 partial matches expected per tuple
    assert 8 < per_tuple_partials < 36
    per_tuple_trees = index.stats.trees_searched / len(tuples)
    assert per_tuple_trees <= 5  # at most the 5 predicate attributes
