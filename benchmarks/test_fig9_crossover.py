"""FIG9 — IBS-tree vs sequential search at small predicate counts.

Paper Figure 9: even for N as small as 5, "the cost curve for
sequential search is always higher than for the IBS-tree, showing that
the IBS-tree has quite low overhead", and the sequential curve grows
linearly while the IBS curve stays nearly flat.
"""

import pytest

from repro import IBSTree
from repro.baselines import IntervalList


def build_pair(workload, n):
    tree, linked = IBSTree(), IntervalList()
    for k, interval in enumerate(workload.intervals(n)):
        tree.insert(interval, k)
        linked.insert(interval, k)
    return tree, linked


@pytest.mark.parametrize("n", [5, 20, 40])
@pytest.mark.parametrize("structure", ["ibs", "sequential"])
def test_fig9_stab(benchmark, interval_workload, n, structure):
    workload = interval_workload(point_fraction=0.5)
    tree, linked = build_pair(workload, n)
    index = tree if structure == "ibs" else linked
    points = workload.query_points(256)

    def search_batch():
        for x in points:
            index.stab(x)

    benchmark(search_batch)


def test_fig9_sequential_always_above(interval_workload):
    """The headline claim, asserted directly."""
    import time

    for n in (5, 10, 20, 40):
        workload = interval_workload(point_fraction=0.5)
        tree, linked = build_pair(workload, n)
        points = workload.query_points(4000)

        def timed(index):
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                for x in points:
                    index.stab(x)
                best = min(best, time.perf_counter() - start)
            return best

        assert timed(tree) < timed(linked), f"IBS slower than sequential at N={n}"


def test_fig9_sequential_linear_growth(interval_workload):
    import time

    def per_query(n: int) -> float:
        workload = interval_workload(point_fraction=0.5)
        _, linked = build_pair(workload, n)
        points = workload.query_points(3000)
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for x in points:
                linked.stab(x)
            best = min(best, (time.perf_counter() - start) / len(points))
        return best

    assert per_query(40) > per_query(5) * 2.5  # ~8x in theory
