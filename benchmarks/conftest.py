"""Shared fixtures for the benchmark suite.

Every benchmark regenerates a figure or analysis of the paper's
evaluation (Section 5); see DESIGN.md for the experiment index and
EXPERIMENTS.md for paper-vs-measured results.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.workloads import IntervalWorkload, ScenarioConfig, ScenarioWorkload


@pytest.fixture
def interval_workload():
    """Factory for the paper's Section 5.2 interval workload."""

    def make(point_fraction: float = 0.5, seed: int = 1) -> IntervalWorkload:
        return IntervalWorkload(point_fraction=point_fraction, seed=seed)

    return make


@pytest.fixture
def scenario_workload():
    """Factory for the Section 5.2 full-index scenario."""

    def make(predicates: int = 200, seed: int = 1) -> ScenarioWorkload:
        return ScenarioWorkload(
            ScenarioConfig(predicates_per_relation=predicates, seed=seed)
        )

    return make
