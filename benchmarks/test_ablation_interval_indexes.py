"""ABL1 — dynamic interval index comparison (Section 6 future work).

"An interesting area to investigate would be to implement several
different techniques for dynamically indexing intervals, including
1-dimensional R-trees, IBS-trees, and priority search trees, and then
compare their implementation complexity and time and space
requirements."  — paper, Section 6.

Closed intervals only, so every structure answers exactly; the static
segment/interval trees are charged a full rebuild per modification.
"""

import pytest

from repro import AVLIBSTree, IBSTree
from repro.baselines import (
    IntervalList,
    PrioritySearchTree,
    RTree1D,
    SegmentTree,
    StaticIntervalTree,
)

N = 400
DYNAMIC = {
    "list": IntervalList,
    "ibs": IBSTree,
    "ibs-avl": AVLIBSTree,
    "pst": PrioritySearchTree,
    "rtree-1d": RTree1D,
}


def closed_workload(interval_workload):
    workload = interval_workload(point_fraction=0.3)
    return workload, list(enumerate(workload.intervals(N)))


@pytest.mark.parametrize("structure", sorted(DYNAMIC))
def test_abl1_insert(benchmark, interval_workload, structure):
    _, intervals = closed_workload(interval_workload)

    def build():
        index = DYNAMIC[structure]()
        for ident, interval in intervals:
            index.insert(interval, ident)
        return index

    index = benchmark(build)
    assert len(index) == N


@pytest.mark.parametrize("structure", sorted(DYNAMIC) + ["segment", "interval"])
def test_abl1_search(benchmark, interval_workload, structure):
    workload, intervals = closed_workload(interval_workload)
    if structure == "segment":
        index = SegmentTree((iv, k) for k, iv in intervals)
    elif structure == "interval":
        index = StaticIntervalTree((iv, k) for k, iv in intervals)
    else:
        index = DYNAMIC[structure]()
        for ident, interval in intervals:
            index.insert(interval, ident)
    points = workload.query_points(256)

    def search_batch():
        for x in points:
            index.stab(x)

    benchmark(search_batch)


@pytest.mark.parametrize("structure", ["segment", "interval"])
def test_abl1_static_rebuild(benchmark, interval_workload, structure):
    """The price of using a static structure in a dynamic rule system."""
    _, intervals = closed_workload(interval_workload)
    builder = SegmentTree if structure == "segment" else StaticIntervalTree

    def rebuild():
        return builder((iv, k) for k, iv in intervals)

    benchmark(rebuild)


def test_abl1_all_structures_agree(interval_workload):
    workload, intervals = closed_workload(interval_workload)
    indexes = []
    for factory in DYNAMIC.values():
        index = factory()
        for ident, interval in intervals:
            index.insert(interval, ident)
        indexes.append(index)
    indexes.append(SegmentTree((iv, k) for k, iv in intervals))
    indexes.append(StaticIntervalTree((iv, k) for k, iv in intervals))
    for x in workload.query_points(100):
        reference = indexes[0].stab(x)
        for index in indexes[1:]:
            assert index.stab(x) == reference
