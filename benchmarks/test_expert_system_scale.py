"""EXT1 — expert-system scale: the abstract's "large expert systems" claim.

"We introduce an algorithm for finding the matching predicates that is
more efficient than the standard algorithm when the number of
predicates is large ... The algorithm could also be used to improve
the performance of forward-chaining inference engines for large expert
systems applications."  — paper, abstract.

This benchmark builds production systems with growing rule counts
(each rule guarding on numeric ranges of sensor facts) and measures
fact-assertion cost with the IBS-tree alpha network versus the
OPS5-style hash + sequential alpha network (baseline 2.2).
"""

import random

import pytest

from repro.baselines import HashSequentialMatcher
from repro.core.predicate_index import PredicateIndex
from repro.production import Pattern, ProductionSystem, Test

DOMAIN = 10_000
WIDTH = 500  # each guard matches ~5% of readings


def build_system(rule_count: int, alpha) -> ProductionSystem:
    rng = random.Random(rule_count)
    ps = ProductionSystem(alpha_index=alpha)
    for k in range(rule_count):
        low = rng.randint(0, DOMAIN - WIDTH)
        ps.add_rule(
            f"monitor-{k}",
            [
                Pattern(
                    "reading",
                    [Test("value", ">=", low), Test("value", "<=", low + WIDTH)],
                )
            ],
            lambda ctx: None,
        )
    return ps


def assert_readings(ps: ProductionSystem, count: int, seed: int = 7) -> None:
    rng = random.Random(seed)
    for _ in range(count):
        ps.assert_fact("reading", value=rng.randint(0, DOMAIN))


@pytest.mark.parametrize("alpha", ["ibs", "hash"])
@pytest.mark.parametrize("rules", [100, 500])
def test_ext1_assert_cost(benchmark, alpha, rules):
    factory = PredicateIndex if alpha == "ibs" else HashSequentialMatcher
    ps = build_system(rules, factory())
    rng = random.Random(1)
    readings = [rng.randint(0, DOMAIN) for _ in range(64)]
    state = {"i": 0}

    def assert_one():
        value = readings[state["i"] % len(readings)]
        state["i"] += 1
        ps.assert_fact("reading", value=value)

    benchmark(assert_one)


def test_ext1_alphas_agree():
    for rules in (50, 200):
        results = {}
        for name, factory in (("ibs", PredicateIndex), ("hash", HashSequentialMatcher)):
            ps = build_system(rules, factory())
            assert_readings(ps, 100)
            results[name] = sorted(inst.key for inst in ps.conflict_set())
        assert results["ibs"] == results["hash"]


def test_ext1_ibs_wins_at_scale():
    import time

    times = {}
    for name, factory in (("ibs", PredicateIndex), ("hash", HashSequentialMatcher)):
        ps = build_system(800, factory())
        best = float("inf")
        for trial in range(3):
            probe = ProductionSystem(alpha_index=factory())
            probe.network = ps.network  # reuse the built network
            start = time.perf_counter()
            rng = random.Random(42)
            for _ in range(150):
                value = rng.randint(0, DOMAIN)
                ps.network.alpha_index.match("reading", {"value": value})
            best = min(best, time.perf_counter() - start)
        times[name] = best
    assert times["ibs"] < times["hash"]
