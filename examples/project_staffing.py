#!/usr/bin/env python3
"""Three-way joins over live relational data: the DB-production bridge.

The trigger engine's join layer handles two relations; for richer
conditions — n-way joins, negation, variables — the production system
is the right tool.  :class:`DatabaseProductionBridge` mirrors chosen
relations into working memory so productions reason over live tuples.

Scenario: staffing compliance.  Employees belong to departments,
departments sit on floors, projects run on floors.  Rules:

* flag employees co-located with a project of their own department;
* flag departments with no employees at all (negation over data);
* keep a live headcount per department (aggregation via modify).

Run:  python examples/project_staffing.py
"""

import random

from repro import Database
from repro.production import ProductionSystem
from repro.rules import DatabaseProductionBridge

DEPTS = [("Shoe", 1), ("Toy", 2), ("Garden", 3), ("Pharmacy", 4)]


def main() -> None:
    db = Database()
    db.create_relation("emp", ["name", "dept"])
    db.create_relation("dept", ["dname", "floor"])
    db.create_relation("proj", ["pname", "dept", "floor"])

    ps = ProductionSystem()
    colocated = []
    ps.add_rule(
        "colocated-project",
        "(emp ^name ?n ^dept ?d)"
        " (dept ^dname ?d ^floor ?f)"
        " (proj ^pname ?p ^dept ?d ^floor ?f)",
        lambda ctx: colocated.append((ctx["n"], ctx["p"])),
    )
    understaffed = []
    ps.add_rule(
        "empty-department",
        "(dept ^dname ?d) -(emp ^dept ?d)",
        lambda ctx: understaffed.append(ctx["d"]),
    )

    # live per-department headcount, maintained as working-memory facts
    def bump(ctx):
        ctx.modify(2, n=ctx["c"] + 1)

    ps.add_rule(
        "headcount",
        "(emp ^dept ?d ^_tid ?t)"
        " (count ^dept ?d ^n ?c)"
        " -(counted ^tid ?t ^dept ?d)",
        lambda ctx: (ctx.make("counted", tid=ctx["t"], dept=ctx["d"]), bump(ctx)),
        priority=5,
    )
    for dname, _ in DEPTS:
        ps.assert_fact("count", dept=dname, n=0)

    bridge = DatabaseProductionBridge(db, ps, ["emp", "dept", "proj"])

    rng = random.Random(7)
    for k in range(12):
        db.insert(
            "emp",
            {"name": f"emp-{k:02d}", "dept": rng.choice(["Shoe", "Toy", "Garden"])},
        )
    # departments arrive after their staff, so the negation rule only
    # flags the genuinely empty one
    for dname, floor in DEPTS:
        db.insert("dept", {"dname": dname, "floor": floor})
    for k, (dname, floor) in enumerate(DEPTS[:3]):
        db.insert("proj", {"pname": f"proj-{k}", "dept": dname, "floor": floor})

    print(f"bridge: {bridge!r}")
    print(f"\nco-located (employee, project) pairs: {len(colocated)}")
    for name, proj in sorted(colocated)[:6]:
        print(f"  {name} <-> {proj}")
    print(f"\ndepartments flagged empty on arrival: {understaffed}")

    counts = sorted((w['dept'], w['n']) for w in ps.facts('count'))
    print("\nlive headcounts:")
    for dept, n in counts:
        print(f"  {dept:9s} {n}")

    # mutation flows through: move an employee and watch counts shift
    emp_rel = db.relation("emp")
    tid, tup = next(iter(emp_rel.scan()))
    print(f"\nmoving {tup['name']} from {tup['dept']} to Pharmacy...")
    db.update("emp", tid, {"dept": "Pharmacy"})
    counts = sorted((w['dept'], w['n']) for w in ps.facts('count'))
    print("headcounts after the move (per-(employee, dept) sightings):")
    for dept, n in counts:
        print(f"  {dept:9s} {n}")


if __name__ == "__main__":
    main()
