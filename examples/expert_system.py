#!/usr/bin/env python3
"""A forward-chaining expert system on the IBS-tree alpha network.

The paper's abstract: "the algorithm could also be used to improve the
performance of forward-chaining inference engines for large expert
systems applications."  This example is that application — the classic
animal-identification knowledge base (after Winston), written as
productions over typed working-memory elements:

* observations enter working memory as facts;
* intermediate-category rules (mammal, bird, carnivore, ungulate)
  chain forward from them;
* identification rules conclude the species, and a negation-guarded
  reporting rule emits each conclusion exactly once.

Every fact asserted is matched against all rule conditions through the
paper's two-level predicate index; the matcher telemetry printed at
the end shows how much work that saved.

Run:  python examples/expert_system.py
"""

from repro.production import ProductionSystem

KNOWLEDGE = [
    # -- intermediate categories ---------------------------------------
    ("mammal-from-hair",
     "(observed ^animal ?a ^trait hair) -(category ^animal ?a ^kind mammal)",
     lambda ctx: ctx.make("category", animal=ctx["a"], kind="mammal")),
    ("mammal-from-milk",
     "(observed ^animal ?a ^trait milk) -(category ^animal ?a ^kind mammal)",
     lambda ctx: ctx.make("category", animal=ctx["a"], kind="mammal")),
    ("bird-from-feathers",
     "(observed ^animal ?a ^trait feathers) -(category ^animal ?a ^kind bird)",
     lambda ctx: ctx.make("category", animal=ctx["a"], kind="bird")),
    ("carnivore-from-meat",
     "(category ^animal ?a ^kind mammal) (observed ^animal ?a ^trait eats-meat)"
     " -(category ^animal ?a ^kind carnivore)",
     lambda ctx: ctx.make("category", animal=ctx["a"], kind="carnivore")),
    ("carnivore-from-teeth",
     "(category ^animal ?a ^kind mammal) (observed ^animal ?a ^trait pointed-teeth)"
     " (observed ^animal ?a ^trait claws)"
     " -(category ^animal ?a ^kind carnivore)",
     lambda ctx: ctx.make("category", animal=ctx["a"], kind="carnivore")),
    ("ungulate-from-hooves",
     "(category ^animal ?a ^kind mammal) (observed ^animal ?a ^trait hooves)"
     " -(category ^animal ?a ^kind ungulate)",
     lambda ctx: ctx.make("category", animal=ctx["a"], kind="ungulate")),
    # -- species identification ------------------------------------------
    ("cheetah",
     "(category ^animal ?a ^kind carnivore)"
     " (observed ^animal ?a ^trait tawny)"
     " (observed ^animal ?a ^trait dark-spots)",
     lambda ctx: ctx.make("conclusion", animal=ctx["a"], species="cheetah")),
    ("tiger",
     "(category ^animal ?a ^kind carnivore)"
     " (observed ^animal ?a ^trait tawny)"
     " (observed ^animal ?a ^trait black-stripes)",
     lambda ctx: ctx.make("conclusion", animal=ctx["a"], species="tiger")),
    ("giraffe",
     "(category ^animal ?a ^kind ungulate)"
     " (observed ^animal ?a ^trait long-neck)"
     " (observed ^animal ?a ^trait dark-spots)",
     lambda ctx: ctx.make("conclusion", animal=ctx["a"], species="giraffe")),
    ("zebra",
     "(category ^animal ?a ^kind ungulate)"
     " (observed ^animal ?a ^trait black-stripes)",
     lambda ctx: ctx.make("conclusion", animal=ctx["a"], species="zebra")),
    ("penguin",
     "(category ^animal ?a ^kind bird)"
     " (observed ^animal ?a ^trait cannot-fly)"
     " (observed ^animal ?a ^trait swims)",
     lambda ctx: ctx.make("conclusion", animal=ctx["a"], species="penguin")),
    ("albatross",
     "(category ^animal ?a ^kind bird)"
     " (observed ^animal ?a ^trait flies-well)",
     lambda ctx: ctx.make("conclusion", animal=ctx["a"], species="albatross")),
]

CASES = {
    "subject-1": ["hair", "eats-meat", "tawny", "dark-spots"],
    "subject-2": ["milk", "hooves", "black-stripes"],
    "subject-3": ["feathers", "cannot-fly", "swims"],
    "subject-4": ["hair", "pointed-teeth", "claws", "tawny", "black-stripes"],
    "subject-5": ["feathers", "flies-well"],
    "subject-6": ["hair", "hooves", "long-neck", "dark-spots"],
}


def build_system(report):
    ps = ProductionSystem()
    for name, lhs, action in KNOWLEDGE:
        ps.add_rule(name, lhs, action)
    ps.add_rule(
        "report",
        "(conclusion ^animal ?a ^species ?s) -(reported ^animal ?a ^species ?s)",
        lambda ctx: (
            report.append((ctx["a"], ctx["s"])),
            ctx.make("reported", animal=ctx["a"], species=ctx["s"]),
        ),
        priority=10,
    )
    return ps


def main() -> None:
    report = []
    ps = build_system(report)

    print("asserting observations...")
    for animal, traits in CASES.items():
        for trait in traits:
            ps.assert_fact("observed", animal=animal, trait=trait)

    fired = ps.run()
    print(f"recognize-act cycle: {fired} rule firings\n")

    print("conclusions:")
    for animal, species in sorted(report):
        print(f"  {animal}: {species}")

    categories = sorted(
        (w["animal"], w["kind"]) for w in ps.facts("category")
    )
    print(f"\nintermediate categories derived: {len(categories)}")
    for animal, category in categories:
        print(f"  {animal} is a {category}")

    stats = ps.network.alpha_index.stats
    print(f"\nalpha-network telemetry (the Figure 1 index at work):")
    print(f"  facts matched        : {stats.tuples_matched}")
    print(f"  IBS-trees probed     : {stats.trees_searched}")
    print(f"  partial matches      : {stats.partial_matches}")
    print(f"  residual brute tests : {stats.non_indexable_tested}")
    layout = ps.network.alpha_index.describe()
    print(f"  index layout         : { {k: v['predicates'] for k, v in layout.items()} }")


if __name__ == "__main__":
    main()
