#!/usr/bin/env python3
"""Employee monitoring: the paper's EMP schema with a full rule mix.

Shows the rule-system features working together on the paper's running
EMP(name, age, salary, dept) example:

* selection rules using every clause shape of the paper's grammar
  (ranges, equalities, opaque functions);
* an **integrity rule** that vetoes bad mutations (AbortAction);
* a **join rule** over EMP and DEPT (the Section 6 two-layer network);
* **deferred mode** for set-oriented batch loading.

Run:  python examples/employee_monitoring.py
"""

import random

from repro import (
    AbortAction,
    AbortMutation,
    CollectAction,
    Database,
    InsertAction,
    RuleEngine,
)
from repro.workloads import DEPARTMENTS, emp_schema, random_emp


def build() -> tuple:
    db = Database()
    emp_schema(db)
    db.create_relation("dept", ["dname", "budget"])
    db.create_relation("audit", ["kind", "who"])

    engine = RuleEngine(db, functions={"isodd": lambda x: x % 2 == 1})

    # -- selection rules (the paper's Section 1 example predicates) ----
    watched = CollectAction()
    engine.create_rule(
        "senior_low_pay",
        on="emp",
        condition="salary < 20000 and age > 50",
        action=watched,
    )
    engine.create_rule(
        "mid_band",
        on="emp",
        condition="20000 <= salary <= 30000",
        action=watched,
    )
    engine.create_rule(
        "salesperson",
        on="emp",
        condition='job = "Salesperson"',
        action=watched,
    )
    engine.create_rule(
        "odd_shoe",
        on="emp",
        condition='isodd(age) and dept = "Shoe"',
        action=watched,
    )

    # -- derived-data rule: audit high salaries -------------------------
    engine.create_rule(
        "audit_high",
        on="emp",
        condition="salary >= 80000",
        action=InsertAction(
            "audit", lambda ctx: {"kind": "high-salary", "who": ctx.tuple["name"]}
        ),
        priority=5,
    )

    # -- integrity rule: veto impossible salaries ------------------------
    engine.create_rule(
        "no_negative_salary",
        on="emp",
        condition="salary < 0",
        action=AbortAction("salary must be non-negative"),
        priority=100,
    )

    # -- join rule: employees out-earning their department budget -------
    over_budget = []
    engine.create_join_rule(
        "over_budget",
        "emp",
        "dept",
        "emp.dept = dept.dname and emp.salary > dept.budget",
        action=lambda ctx: over_budget.append(
            (ctx.bindings["emp"]["name"], ctx.bindings["dept"]["dname"])
        ),
    )
    return db, engine, watched, over_budget


def main() -> None:
    db, engine, watched, over_budget = build()
    rng = random.Random(11)

    # department table: budgets are per-head salary caps
    for name in DEPARTMENTS:
        db.insert("dept", {"dname": name, "budget": rng.randint(40_000, 70_000)})

    # -- live inserts trigger immediately -------------------------------
    for _ in range(200):
        db.insert("emp", random_emp(rng))
    print(f"employees: {db.count('emp')}, rules: {len(engine)} + 1 join rule")
    print(f"selection-rule matches : {len(watched.records)}")
    print(f"audit records          : {db.count('audit')}")
    print(f"over-budget pairs      : {len(over_budget)}")

    # -- the integrity rule vetoes bad data -----------------------------
    try:
        db.insert("emp", {"name": "Oops", "age": 20, "salary": -5,
                          "dept": "Toy", "job": "Cashier"})
    except AbortMutation as exc:
        print(f"integrity veto         : {exc}")
    print(f"employees after veto   : {db.count('emp')} (unchanged)")

    # -- batch loading in deferred mode ----------------------------------
    batch_db = Database()
    emp_schema(batch_db)
    batch_engine = RuleEngine(batch_db, mode="deferred")
    batch_hits = CollectAction()
    batch_engine.create_rule(
        "cheap", on="emp", condition="salary < 10000", action=batch_hits
    )
    for _ in range(500):
        batch_db.insert("emp", random_emp(rng))
    print(f"\ndeferred mode: agenda holds {len(batch_engine.agenda)} instantiations")
    fired = batch_engine.run()
    print(f"deferred run fired {fired} rules -> {len(batch_hits.records)} matches")

    # -- matcher telemetry (the Figure 1 index at work) -------------------
    stats = engine.matcher.stats
    print(f"\nmatcher telemetry: {stats!r}")
    print(f"index layout: {engine.matcher.describe()['emp']}")


if __name__ == "__main__":
    main()
