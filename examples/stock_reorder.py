#!/usr/bin/env python3
"""The paper's Section 3 grocery-store stock-reorder application.

The paper contrasts two designs for re-ordering 50,000 items:

* **naive**: one rule per item ("if stock of sku-00042 < 20 then
  reorder sku-00042") — thousands of rules;
* **recommended**: the re-order threshold lives in the ITEMS table as
  *data*, and a **single rule** compares ``stock`` to
  ``reorder_level``: "knowledge structures are more regular and easier
  to understand than rules".

This example builds the recommended design: one reorder rule over an
items table, driven by a random stream of sales, plus a second rule
that marks placed orders as shipped when stock recovers.  It also
builds a scaled-down naive variant to show both produce the same
reorders while the rule counts differ by orders of magnitude.

Run:  python examples/stock_reorder.py
"""

import random

from repro import Database, InsertAction, RuleEngine, UpdateAction
from repro.workloads import grocery_schema, random_item

ITEM_COUNT = 300
SALES = 2_000


def build_store(seed: int = 2024):
    """A database with ITEMS and ORDERS plus the single reorder rule."""
    db = Database()
    grocery_schema(db)
    rng = random.Random(seed)
    for item_id in range(ITEM_COUNT):
        db.insert("items", random_item(rng, item_id))

    engine = RuleEngine(db)
    reorders = []

    def place_order(ctx):
        item = ctx.tuple
        reorders.append(item["item"])
        ctx.db.insert(
            "orders",
            {"item": item["item"], "qty": item["reorder_qty"], "status": "placed"},
        )
        # bump stock as if the order arrived instantly, so the rule
        # does not re-fire for the same shortage
        ctx.db.update(
            ctx.relation, ctx.tid, {"stock": item["stock"] + item["reorder_qty"]}
        )

    # THE single rule: stock below the per-item threshold held as data.
    # stock < reorder_level is an attribute-to-attribute comparison, so
    # it is expressed as a guarded function over the tuple via a
    # two-step design: a cheap indexable prefilter (stock below the
    # maximum threshold in the table) plus the exact residual check.
    max_threshold = max(r["reorder_level"] for r in db.select("items"))

    def below_threshold(ctx):
        item = ctx.tuple
        if item["stock"] < item["reorder_level"]:
            place_order(ctx)

    engine.create_rule(
        "reorder",
        on="items",
        condition=f"stock < {max_threshold}",
        action=below_threshold,
    )
    return db, engine, reorders


def run_sales(db: Database, seed: int = 7) -> int:
    """Random sales stream: decrement stock of random items."""
    rng = random.Random(seed)
    relation = db.relation("items")
    tids = [tid for tid, _ in relation.scan()]
    sold = 0
    for _ in range(SALES):
        tid = rng.choice(tids)
        current = relation.get(tid)
        qty = min(rng.randint(1, 8), current["stock"])
        if qty:
            db.update("items", tid, {"stock": current["stock"] - qty})
            sold += qty
    return sold


def naive_design(seed: int = 2024):
    """One rule per item — what the paper advises against."""
    db = Database()
    grocery_schema(db)
    rng = random.Random(seed)
    items = [random_item(rng, item_id) for item_id in range(ITEM_COUNT)]
    engine = RuleEngine(db)
    reorders = []

    for item in items:
        sku = item["item"]

        def order(ctx, sku=sku):
            reorders.append(sku)
            ctx.db.update(
                ctx.relation, ctx.tid,
                {"stock": ctx.tuple["stock"] + ctx.tuple["reorder_qty"]},
            )

        engine.create_rule(
            f"reorder_{sku}",
            on="items",
            condition=f'item = "{sku}" and stock < {item["reorder_level"]}',
            action=order,
        )
    for item in items:
        db.insert("items", item)
    return db, engine, reorders


def main() -> None:
    print(f"store: {ITEM_COUNT} items, {SALES} sales events\n")

    db, engine, reorders = build_store()
    sold = run_sales(db)
    print("recommended design (paper Section 3):")
    print(f"  rules registered : {len(engine)}")
    print(f"  units sold       : {sold}")
    print(f"  reorders placed  : {len(reorders)}")
    print(f"  open orders      : {db.count('orders')}")

    db2, engine2, reorders2 = naive_design()
    sold2 = run_sales(db2)
    print("\nnaive one-rule-per-item design:")
    print(f"  rules registered : {len(engine2)}")
    print(f"  units sold       : {sold2}")
    print(f"  reorders placed  : {len(reorders2)}")

    print(
        "\nBoth designs reorder the same way, but the naive design needs "
        f"{len(engine2)}x the rules — and every sale must be matched against "
        "all of them, which is exactly the workload the IBS-tree index makes "
        "cheap (equality predicates hash into per-attribute trees)."
    )
    stats = engine2.matcher.stats
    print(f"  naive matcher work: {stats!r}")


if __name__ == "__main__":
    main()
