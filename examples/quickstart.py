#!/usr/bin/env python3
"""Quickstart: the IBS-tree, the predicate index, and the rule engine.

Walks the three layers of the library bottom-up:

1. the interval binary search tree (stabbing queries over intervals);
2. the Figure 1 predicate index (which predicates match a tuple?);
3. the forward-chaining rule engine (triggers over a database).

Run:  python examples/quickstart.py
"""

from repro import (
    CollectAction,
    Database,
    IBSTree,
    Interval,
    PredicateIndex,
    RuleEngine,
    compile_condition,
)


def demo_ibs_tree() -> None:
    """Layer 1: the paper's Figure 2 interval set."""
    print("=== 1. IBS-tree: dynamic stabbing queries ===")
    tree = IBSTree()
    tree.insert(Interval.closed(9, 19), "A")        # 9 <= x <= 19
    tree.insert(Interval.closed_open(2, 7), "B")    # 2 <= x < 7
    tree.insert(Interval.closed_open(1, 3), "C")
    tree.insert(Interval.open_closed(17, 20), "D")
    tree.insert(Interval.closed_open(2, 12), "E")
    tree.insert(Interval.point(18), "F")            # x = 18
    tree.insert(Interval.at_most(17), "G")          # x <= 17

    for x in (2, 12, 18):
        print(f"  intervals containing {x}: {sorted(tree.stab(x))}")
    tree.delete("E")
    print(f"  after deleting E, containing 2: {sorted(tree.stab(2))}")
    print(f"  nodes={tree.node_count} markers={tree.marker_count} height={tree.height}")
    print()


def demo_predicate_index() -> None:
    """Layer 2: which rule predicates match a tuple?"""
    print("=== 2. Predicate index (paper Figure 1) ===")
    index = PredicateIndex()
    functions = {"isodd": lambda x: x % 2 == 1}
    conditions = [
        "salary < 20000 and age > 50",
        "20000 <= salary <= 30000",
        'job = "Salesperson"',
        'isodd(age) and dept = "Shoe"',
    ]
    idents = {}
    for text in conditions:
        for predicate in compile_condition("emp", text, functions).group:
            index.add(predicate)
            idents[predicate.ident] = text

    tuples = [
        {"name": "Lee", "age": 51, "salary": 15000, "dept": "Toy", "job": "Cashier"},
        {"name": "Kim", "age": 33, "salary": 25000, "dept": "Shoe", "job": "Salesperson"},
    ]
    for tup in tuples:
        matched = index.match("emp", tup)
        print(f"  {tup['name']}: {len(matched)} matching predicate(s)")
        for predicate in matched:
            print(f"      {idents[predicate.ident]}")
    print(f"  index layout: {index.describe()['emp']}")
    print()


def demo_rule_engine() -> None:
    """Layer 3: triggers firing on database mutations."""
    print("=== 3. Rule engine (forward-chaining triggers) ===")
    db = Database()
    db.create_relation("emp", ["name", "age", "salary", "dept"])

    engine = RuleEngine(db)
    collected = CollectAction()
    engine.create_rule(
        "well_paid",
        on="emp",
        condition="20000 <= salary <= 30000",
        action=collected,
    )
    engine.create_rule(
        "senior_low_pay",
        on="emp",
        condition="salary < 20000 and age > 50",
        action=lambda ctx: print(f"  ALERT: {ctx.tuple['name']} is senior and underpaid"),
    )

    db.insert("emp", {"name": "Lee", "age": 51, "salary": 15000, "dept": "Toy"})
    tid = db.insert("emp", {"name": "Kim", "age": 33, "salary": 5000, "dept": "Shoe"})
    db.update("emp", tid, {"salary": 25000})  # now matches well_paid

    print(f"  well_paid matched: {[name for _, t in collected.records for name in [t['name']]]}")
    print(f"  engine: {engine!r}")


if __name__ == "__main__":
    demo_ibs_tree()
    demo_predicate_index()
    demo_rule_engine()
