#!/usr/bin/env python3
"""A tour of the interval indexes: IBS-tree vs the alternatives.

Reproduces, at demo scale, the comparisons the paper draws in
Sections 2, 4.1 and 6: the IBS-tree against the linear list, the
static segment/interval trees, the priority search tree, and the 1-d
R-tree — on capability (dynamic? open bounds? unbounded?) and on
measured per-operation cost.

Run:  python examples/interval_index_tour.py
"""

import time

from repro import AVLIBSTree, IBSTree, Interval, RBIBSTree
from repro.baselines import (
    IntervalList,
    PrioritySearchTree,
    RPlusTree1D,
    RTree1D,
    SegmentTree,
    StaticIntervalTree,
)
from repro.bench.reporting import format_table
from repro.errors import TreeError
from repro.workloads import IntervalWorkload

N = 2_000
QUERIES = 2_000


def capability_matrix() -> None:
    print("=== capability matrix (paper Sections 2, 4.1) ===")
    structures = [
        IntervalList(),
        IBSTree(),
        AVLIBSTree(),
        RBIBSTree(),
        PrioritySearchTree(),
        RTree1D(),
        RPlusTree1D(),
        SegmentTree(),
        StaticIntervalTree(),
    ]
    rows = []
    for s in structures:
        name = getattr(s, "name", type(s).__name__.lower())
        if isinstance(s, (IBSTree,)):
            name = type(s).__name__
        rows.append(
            [
                name,
                "yes" if getattr(s, "supports_dynamic_insert", True) else "NO",
                "yes" if getattr(s, "supports_dynamic_delete", True) else "NO",
                "yes" if getattr(s, "supports_open_bounds", True) else "approx",
                "yes" if getattr(s, "supports_unbounded", True) else "clamped",
            ]
        )
    print(format_table(
        ["structure", "dyn insert", "dyn delete", "open bounds", "unbounded"], rows
    ))
    print()


def open_bounds_demo() -> None:
    print("=== exact open/unbounded semantics (IBS-tree only, dynamically) ===")
    tree = IBSTree()
    tree.insert(Interval.closed_open(10, 20), "half")   # [10, 20)
    tree.insert(Interval.greater_than(15), "ray")       # (15, +inf)
    print(f"  stab(20) = {sorted(tree.stab(20))}   (20 excluded from [10,20))")
    print(f"  stab(15) = {sorted(tree.stab(15))}   (15 excluded from (15,+inf))")
    print(f"  stab(16) = {sorted(tree.stab(16))}")

    pst = PrioritySearchTree()
    pst.insert(Interval.closed_open(10, 20), "half")
    print(f"  PST (closed-only semantics) stab(20) = {sorted(pst.stab(20))} "
          "<- false positive, needs post-filter")
    print()


def timing_comparison() -> None:
    print(f"=== per-operation cost, N={N}, closed intervals ===")
    workload = IntervalWorkload(point_fraction=0.3, seed=1)
    intervals = list(enumerate(workload.intervals(N)))
    points = workload.query_points(QUERIES)

    rows = []
    for name, factory in [
        ("list", IntervalList),
        ("IBSTree", IBSTree),
        ("AVLIBSTree", AVLIBSTree),
        ("RBIBSTree", RBIBSTree),
        ("PST", PrioritySearchTree),
        ("RTree1D", RTree1D),
        ("RPlusTree1D", RPlusTree1D),
    ]:
        index = factory()
        start = time.perf_counter()
        for ident, interval in intervals:
            index.insert(interval, ident)
        insert_us = (time.perf_counter() - start) / N * 1e6
        start = time.perf_counter()
        for x in points:
            index.stab(x)
        search_us = (time.perf_counter() - start) / QUERIES * 1e6
        rows.append([name, f"{insert_us:.2f}", f"{search_us:.2f}"])

    start = time.perf_counter()
    static = SegmentTree((iv, k) for k, iv in intervals)
    build = time.perf_counter() - start
    start = time.perf_counter()
    for x in points:
        static.stab(x)
    search_us = (time.perf_counter() - start) / QUERIES * 1e6
    rows.append(["segment (static)", f"rebuild {build*1e3:.1f}ms", f"{search_us:.2f}"])
    try:
        static.insert(Interval.point(1), "new")
    except TreeError as exc:
        note = str(exc).split(":")[0]
    print(format_table(["structure", "insert us/op", "search us/query"], rows))
    print(f"  (segment tree on insert: '{note}')")
    print()


def marker_economy() -> None:
    print("=== Section 5.1: marker economy ===")
    workload = IntervalWorkload(point_fraction=0.0, seed=2)
    overlapping = IBSTree()
    for k, iv in enumerate(workload.intervals(1000)):
        overlapping.insert(iv, k)
    disjoint = IBSTree()
    for k, iv in enumerate(workload.disjoint_intervals(1000)):
        disjoint.insert(iv, k)
    print(f"  1000 overlapping intervals: {overlapping.marker_count} markers "
          f"({overlapping.marker_count/1000:.1f}/interval ~ log N)")
    print(f"  1000 disjoint intervals:    {disjoint.marker_count} markers "
          f"({disjoint.marker_count/1000:.1f}/interval ~ constant)")


if __name__ == "__main__":
    capability_matrix()
    open_bounds_demo()
    timing_comparison()
    marker_economy()
