#!/usr/bin/env python3
"""Sensor-fleet monitoring: the library's extension features together.

A monitoring application over a fleet of sensors, exercising features
layered on top of the paper's core algorithm:

* ``like`` conditions — prefix patterns compile to *indexable string
  intervals* (the IBS-tree works on any ordered domain);
* firing traces (``engine.on_fire``) — an audit log of every trigger;
* ``engine.explain`` — why a reading did or did not match;
* predicate subsumption analysis — flagging redundant rules at
  registration time;
* JSON persistence — checkpoint and reload the database.

Run:  python examples/sensor_monitoring.py
"""

import io
import random

from repro import CollectAction, Database, RuleEngine
from repro.core.subsumption import find_subsumed
from repro.db import load_database, save_database

SITES = ["lab-north", "lab-south", "plant-a", "plant-b"]


def build() -> tuple:
    db = Database()
    db.create_relation("reading", ["sensor", "site", "kind", "value"])
    db.create_relation("alerts", ["sensor", "reason"])

    engine = RuleEngine(db)
    alerts = CollectAction()

    # prefix LIKE: all lab sites, via an indexable string interval
    engine.create_rule(
        "lab_overheat",
        on="reading",
        condition='site like "lab-%" and kind = "temp" and value > 80',
        action=alerts,
        priority=5,
    )
    # general LIKE pattern: falls back to an opaque clause
    engine.create_rule(
        "plant_b_sensors",
        on="reading",
        condition='sensor like "%-b-%" and value > 95',
        action=alerts,
    )
    engine.create_rule(
        "pressure_band",
        on="reading",
        condition='kind = "pressure" and not (30 <= value <= 70)',
        action=alerts,
    )
    return db, engine, alerts


def main() -> None:
    db, engine, alerts = build()

    # -- firing trace -----------------------------------------------------
    audit = []
    engine.on_fire = lambda rule, ctx: audit.append(
        f"{rule.name}: sensor={ctx.tuple['sensor']} value={ctx.tuple['value']}"
    )

    # -- feed readings ------------------------------------------------------
    rng = random.Random(99)
    for k in range(400):
        site = rng.choice(SITES)
        db.insert(
            "reading",
            {
                "sensor": f"s-{site.split('-')[1]}-{k % 37:02d}",
                "site": site,
                "kind": rng.choice(["temp", "pressure", "humidity"]),
                "value": rng.randint(0, 120),
            },
        )
    print(f"readings ingested : {db.count('reading')}")
    print(f"alerts raised     : {len(alerts.records)}")
    print("first audit lines :")
    for line in audit[:4]:
        print(f"  {line}")

    # -- explain ------------------------------------------------------------
    probe = {"sensor": "s-a-01", "site": "lab-north", "kind": "temp", "value": 85}
    print("\nexplain(lab-north temp 85):")
    for record in engine.explain("reading", probe):
        mark = "MATCH" if record["matched"] else "  -  "
        print(f"  [{mark}] {record['rule']}: {record['condition']}")

    # -- subsumption analysis ------------------------------------------------
    print("\nsubsumption check over registered predicates:")
    predicates = engine.matcher.predicates_for("reading")
    pairs = find_subsumed(predicates)
    if pairs:
        for general, specific in pairs:
            print(f"  {general} subsumes {specific}")
    else:
        print("  no redundant predicates (good)")

    # a deliberately redundant rule now shows up:
    engine.create_rule(
        "lab_very_hot",  # implied by lab_overheat
        on="reading",
        condition='site like "lab-%" and kind = "temp" and value > 100',
        action=alerts,
    )
    pairs = find_subsumed(engine.matcher.predicates_for("reading"))
    print(f"  after adding a narrower rule: {len(pairs)} subsumed pair(s)")
    for general, specific in pairs:
        print(f"    {general}\n      subsumes {specific}")

    # -- persistence ------------------------------------------------------------
    buffer = io.StringIO()
    save_database(db, buffer)
    buffer.seek(0)
    restored = load_database(buffer)
    print(
        f"\npersistence round-trip: {restored.count('reading')} readings, "
        f"{restored.count('alerts')} alerts restored "
        f"({len(buffer.getvalue()) // 1024} KiB of JSON)"
    )

    # the index layout shows the string interval for the LIKE prefix
    print(f"\nindex layout: {engine.matcher.describe()['reading']}")


if __name__ == "__main__":
    main()
